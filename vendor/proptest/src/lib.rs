//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the real `proptest` cannot be downloaded. This vendored stub
//! implements exactly the API subset the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`,
//! * integer-range, tuple, [`strategy::Just`], and [`collection::vec`]
//!   strategies,
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Generation is a deterministic splitmix64 stream seeded from the test name
//! and case index, so failures are reproducible. There is no shrinking: a
//! failing case fails with the ordinary `assert!` panic message.

// Offline API stub: keep it lint-free for the workspace-wide clippy gate.
#![allow(clippy::all)]

/// Strategies: value generators composable with `prop_map` etc.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Produces one value from the deterministic RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (the result is cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Builds a recursive strategy: `self` is the leaf, and `expand`
        /// wraps an inner strategy into a composite one. `depth` bounds the
        /// nesting; the remaining two parameters (target size hints in real
        /// proptest) are accepted for signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let composite = expand(current).boxed();
                current = Union::new(vec![leaf.clone(), composite]).boxed();
            }
            current
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among several strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given (type-erased) alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one case");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Two's-complement wrapping makes this correct for both
                    // signed and unsigned element types.
                    let width = (self.end as u128).wrapping_sub(self.start as u128);
                    let offset = rng.next_u128() % width;
                    self.start.wrapping_add(offset as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as u128)
                        .wrapping_sub(*self.start() as u128)
                        .wrapping_add(1);
                    let offset = if width == 0 { rng.next_u128() } else { rng.next_u128() % width };
                    self.start().wrapping_add(offset as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + (rng.next_u64() as usize) % span.max(1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property is run for.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config with everything default except the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name and case
    /// index, so every run of a property replays the same inputs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream for case `case` of the property named `name`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        /// Next 64 bits of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 bits of the stream.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }
    }
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by one or more
/// `fn name(pat in strategy, ...) { body }` items (each usually carrying its
/// own `#[test]` attribute, as in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_eq!($l, $r, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges", 0);
        for _ in 0..200 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (0u32..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec", 1);
        let strat = collection::vec(0i64..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("same", 3);
        let mut b = crate::test_runner::TestRng::deterministic("same", 3);
        assert_eq!(a.next_u128(), b.next_u128());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_expands_and_runs(x in 0i64..100, y in 0i64..100) {
            prop_assert!(x + y >= x);
            prop_assert_eq!(x + y, y + x);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map_work(v in prop_oneof![Just(1i64), (2i64..5).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || (20..50).contains(&v));
        }
    }
}
