//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this stub provides the
//! API subset the workspace benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size` / `measurement_time` /
//! `finish`), [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical machinery
//! it runs a short warm-up plus a fixed number of timed samples and prints
//! the median, which is enough to eyeball relative performance.

// Offline API stub: keep it lint-free for the workspace-wide clippy gate.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (after one warm-up run).
const SAMPLES: usize = 5;

/// Drives closure timing for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then [`SAMPLES`] timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..SAMPLES {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        println!("{:<40} median {:?}", name.as_ref(), b.median());
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group {}", name.as_ref());
        BenchmarkGroup { _criterion: self }
    }
}

/// A group of related benchmarks (configuration methods are accepted for
/// source compatibility and ignored).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this stub always takes [`SAMPLES`] samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this stub's measurement time is driven by
    /// the fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        println!("  {:<38} median {:?}", name.as_ref(), b.median());
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        assert!(runs >= 1 + SAMPLES as u32);
    }
}
