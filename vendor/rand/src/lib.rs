//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace declares `rand` as a dev-dependency but the tests use their
//! own deterministic generators, so this stub only needs to exist for the
//! dependency graph to resolve without network access. A tiny splitmix64
//! generator is provided in case future tests want one.

// Offline API stub: keep it lint-free for the workspace-wide clippy gate.
#![allow(clippy::all)]

/// A deterministic splitmix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
