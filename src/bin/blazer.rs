//! The `blazer` command-line tool: analyze a surface-language file for
//! timing channels.
//!
//! ```console
//! $ blazer program.blz check            # analyze function `check`
//! $ blazer --observer stac program.blz check
//! $ blazer --domain zone program.blz check
//! $ blazer --timeout 10 --max-lp-calls 100000 program.blz check
//! $ blazer --threads 4 program.blz check
//! $ blazer --concretize program.blz check
//! ```
//!
//! Trail evaluation is parallel by default (machine parallelism); pin the
//! width with `--threads N` or the `BLAZER_THREADS` environment variable
//! (`--threads 1` is strictly sequential). Verdicts are identical at every
//! width.
//!
//! Exit codes: 0 = safe, 1 = attack found, 2 = unknown (including budget
//! exhaustion or an internal crash), 3 = usage, I/O, or compile error.

use blazer::core::{concretize_outcome, Blazer, Config, DomainKind, Verdict};
use std::process::ExitCode;
use std::time::Duration;

/// Usage, I/O, and compile errors.
const EXIT_USAGE: u8 = 3;
/// Inconclusive analysis (budget exhaustion, give-up, crash).
const EXIT_UNKNOWN: u8 = 2;

struct Options {
    file: String,
    function: Option<String>,
    config: Config,
    concretize: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut config = Config::microbench();
    let mut concretize = false;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--observer" => match args.next().as_deref() {
                Some("stac") => config.observer = blazer::bounds::Observer::stac(),
                Some("degree") => config.observer = blazer::bounds::Observer::degree(),
                other => return Err(format!("--observer expects stac|degree, got {other:?}")),
            },
            "--domain" => {
                config.domain = match args.next().as_deref() {
                    Some("interval") => DomainKind::Interval,
                    Some("zone") => DomainKind::Zone,
                    Some("octagon") => DomainKind::Octagon,
                    Some("polyhedra") => DomainKind::Polyhedra,
                    other => {
                        return Err(format!(
                            "--domain expects interval|zone|octagon|polyhedra, got {other:?}"
                        ))
                    }
                };
            }
            "--timeout" => {
                let secs = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|s| *s > 0.0)
                    .ok_or("--timeout expects a positive number of seconds")?;
                config = config.with_timeout(Duration::from_secs_f64(secs));
            }
            "--max-lp-calls" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or("--max-lp-calls expects a non-negative integer")?;
                config = config.with_max_lp_calls(n);
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--threads expects a positive integer")?;
                config.threads = Some(n);
            }
            "--no-attack" => config.synthesize_attack = false,
            "--concretize" => concretize = true,
            "--help" | "-h" => {
                return Err("usage: blazer [--observer stac|degree] [--domain D] \
                            [--timeout SECS] [--max-lp-calls N] [--threads N] \
                            [--no-attack] [--concretize] <file> [function]"
                    .to_string())
            }
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    let file = positional.next().ok_or("missing input file (try --help)")?;
    Ok(Options { file, function: positional.next(), config, concretize })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let program = match blazer::lang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}:{e}", opts.file);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let function = match &opts.function {
        Some(f) => f.clone(),
        None => match program.functions().next() {
            Some(f) => f.name().to_string(),
            None => {
                eprintln!("{}: no functions", opts.file);
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    // Isolate the analysis: a crash (e.g. an injected fault) is reported as
    // an inconclusive run, not a process abort.
    let analyzed = std::panic::catch_unwind({
        let program = program.clone();
        let config = opts.config.clone();
        let function = function.clone();
        move || Blazer::new(config).analyze(&program, &function)
    });
    let outcome = match analyzed {
        Ok(Ok(o)) => o,
        Ok(Err(e)) => {
            eprintln!("analysis error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            eprintln!("{function}: analysis crashed: {msg}");
            return ExitCode::from(EXIT_UNKNOWN);
        }
    };
    println!(
        "{function}: {} ({} basic blocks, safety {:.2}s{})",
        outcome.verdict,
        outcome.n_blocks,
        outcome.safety_time.as_secs_f64(),
        outcome
            .attack_time
            .map(|d| format!(", attack search {:.2}s", d.as_secs_f64()))
            .unwrap_or_default()
    );
    if !outcome.degradations.is_empty() {
        println!("degradations:");
        for d in &outcome.degradations {
            println!("  {d}");
        }
    }
    let report = &outcome.budget_report;
    if report.exhausted.is_some() || !report.degradations.is_empty() {
        println!(
            "budget: {} LP calls, {} fixpoint passes, {} refinement steps, \
             {} overflow events, {:.2}s elapsed",
            report.lp_calls,
            report.fixpoint_passes,
            report.refinement_steps,
            report.overflow_events,
            report.elapsed.as_secs_f64()
        );
        for note in &report.degradations {
            println!("  note: {note}");
        }
    }
    println!("{}", outcome.render_tree(&program));
    match &outcome.verdict {
        Verdict::Safe => ExitCode::SUCCESS,
        Verdict::Attack(spec) => {
            println!("{spec}");
            if opts.concretize {
                match concretize_outcome(&program, &outcome, 500) {
                    Some((a, b)) => {
                        println!("witness inputs (equal lows, differing cost):");
                        println!("  run A: {a:?}");
                        println!("  run B: {b:?}");
                    }
                    None => println!("no concrete witness found within the attempt budget"),
                }
            }
            ExitCode::from(1)
        }
        Verdict::Unknown(_) => ExitCode::from(EXIT_UNKNOWN),
    }
}
