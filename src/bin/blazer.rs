//! The `blazer` command-line tool: analyze a surface-language file for
//! timing channels — directly, as a service, or against a service.
//!
//! ```console
//! $ blazer program.blz check            # analyze function `check`
//! $ blazer --observer stac program.blz check
//! $ blazer --domain zone program.blz check
//! $ blazer --cost-model cache program.blz check
//! $ blazer --timeout 10 --max-lp-calls 100000 program.blz check
//! $ blazer --threads 4 program.blz check
//! $ blazer --json program.blz check     # machine-readable outcome
//! $ blazer --concretize program.blz check
//! $ blazer serve --addr 127.0.0.1:8645 --cache-file verdicts.jsonl
//! $ blazer route --addr 127.0.0.1:8650 --backend 127.0.0.1:8645 --backend 127.0.0.1:8646
//! $ blazer client --addr 127.0.0.1:8645 program.blz check
//! $ blazer client --health
//! $ blazer bench-serve --threads 1 --threads 4 --mix 100 --mix 90 --out BENCH_serve.json
//! ```
//!
//! Trail evaluation is parallel by default (machine parallelism); pin the
//! width with `--threads N` or the `BLAZER_THREADS` environment variable
//! (`--threads 1` is strictly sequential). Verdicts are identical at every
//! width.
//!
//! Exit codes: 0 = safe, 1 = attack found, 2 = unknown (including budget
//! exhaustion or an internal crash), 3 = usage, I/O, or compile error.
//! `client` maps server responses onto the same codes.

use blazer::core::{concretize_outcome, Blazer, Config, DomainKind, Verdict};
use blazer::ir::json::Json;
use blazer::portfolio::{analyze_portfolio, epsilon_for, Backend};
use blazer::route::{RouteOptions, Router};
use blazer::serve::{api::AnalyzeRequest, bench, client, report, ServeOptions, Server};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Usage, I/O, and compile errors.
const EXIT_USAGE: u8 = 3;
/// Inconclusive analysis (budget exhaustion, give-up, crash).
const EXIT_UNKNOWN: u8 = 2;

struct Options {
    file: String,
    function: Option<String>,
    config: Config,
    backend: Backend,
    concretize: bool,
    json: bool,
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut config = Config::microbench();
    let mut backend = Backend::Decomp;
    let mut concretize = false;
    let mut json = false;
    let mut positional = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--backend" => match args.next() {
                Some(b) => backend = b.parse()?,
                None => return Err("--backend expects decomp|selfcomp|portfolio".to_string()),
            },
            "--observer" => match args.next().as_deref() {
                Some("stac") => config.observer = blazer::bounds::Observer::stac(),
                Some("degree") => config.observer = blazer::bounds::Observer::degree(),
                other => return Err(format!("--observer expects stac|degree, got {other:?}")),
            },
            "--domain" => {
                config.domain = parse_domain(args.next().as_deref())?;
            }
            "--cost-model" => {
                config.cost_model = parse_cost_model(args.next().as_deref())?;
            }
            "--timeout" => {
                config = config.with_timeout(parse_timeout(args.next().as_deref())?);
            }
            "--max-lp-calls" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or("--max-lp-calls expects a non-negative integer")?;
                config = config.with_max_lp_calls(n);
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--threads expects a positive integer")?;
                config.threads = Some(n);
            }
            "--no-attack" => config.synthesize_attack = false,
            "--concretize" => concretize = true,
            "--json" => json = true,
            "--help" | "-h" => {
                return Err("usage: blazer [--observer stac|degree] [--domain D] \
                            [--backend decomp|selfcomp|portfolio] \
                            [--cost-model unit|weighted|cache] \
                            [--timeout SECS] [--max-lp-calls N] [--threads N] \
                            [--no-attack] [--concretize] [--json] <file> [function]\n\
                            \x20      blazer serve [--addr A] [--workers N] [--queue N] \
                            [--timeout SECS] [--cache-file PATH] [--analysis-threads N] \
                            [--max-requests-per-connection N] [--admin-token TOKEN]\n\
                            \x20      blazer route --backend HOST:PORT [--backend ...] \
                            [--addr A] [--workers N] [--queue N] [--health-interval SECS] \
                            [--health-timeout SECS] [--eject-after N] [--reinstate-after N] \
                            [--retry-base-ms N] [--retry-cap-ms N]\n\
                            \x20      blazer client [--addr A] (--health | --stats | \
                            <file> [function]) [--json] [analysis options]\n\
                            \x20      blazer client --session <file...>   one keep-alive \
                            connection, one request per file\n\
                            \x20      blazer client --batch <file...>     one POST, one \
                            JSON array of results\n\
                            \x20      blazer bench-serve [--threads N]... [--mix PCT]... \
                            [--duration-s S] [--hit-keys N] [--out PATH]   measure serve \
                            throughput over hit/miss mixes"
                    .to_string())
            }
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    let file = positional.next().ok_or("missing input file (try --help)")?;
    Ok(Options { file, function: positional.next(), config, backend, concretize, json })
}

fn parse_domain(arg: Option<&str>) -> Result<DomainKind, String> {
    match arg {
        Some("interval") => Ok(DomainKind::Interval),
        Some("zone") => Ok(DomainKind::Zone),
        Some("octagon") => Ok(DomainKind::Octagon),
        Some("polyhedra") => Ok(DomainKind::Polyhedra),
        other => Err(format!("--domain expects interval|zone|octagon|polyhedra, got {other:?}")),
    }
}

fn parse_cost_model(arg: Option<&str>) -> Result<blazer::ir::cost::CostModel, String> {
    match arg {
        Some(name) => name
            .parse()
            .map_err(|_| format!("--cost-model expects unit|weighted|cache, got {name:?}")),
        None => Err("--cost-model expects unit|weighted|cache".to_string()),
    }
}

fn parse_timeout(arg: Option<&str>) -> Result<Duration, String> {
    arg.and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .map(Duration::from_secs_f64)
        .ok_or_else(|| "--timeout expects a positive number of seconds".to_string())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            args.remove(0);
            serve_main(args)
        }
        Some("route") => {
            args.remove(0);
            route_main(args)
        }
        Some("client") => {
            args.remove(0);
            client_main(args)
        }
        Some("bench-serve") => {
            args.remove(0);
            bench_serve_main(args)
        }
        _ => analyze_main(args),
    }
}

// ---------------------------------------------------------------- analyze

fn analyze_main(args: Vec<String>) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let started = Instant::now();
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let program = match blazer::lang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}:{e}", opts.file);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let function = match &opts.function {
        Some(f) => f.clone(),
        None => match program.functions().next() {
            Some(f) => f.name().to_string(),
            None => {
                eprintln!("{}: no functions", opts.file);
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    match opts.backend {
        Backend::Decomp => {}
        Backend::Selfcomp => return selfcomp_main(&opts, &program, &function, started),
        Backend::Portfolio => return portfolio_main(&opts, &program, &function, started),
    }
    // Isolate the analysis: a crash (e.g. an injected fault) is reported as
    // an inconclusive run, not a process abort.
    let analyzed = std::panic::catch_unwind({
        let program = program.clone();
        let config = opts.config.clone();
        let function = function.clone();
        move || Blazer::new(config).analyze(&program, &function)
    });
    let outcome = match analyzed {
        Ok(Ok(o)) => o,
        Ok(Err(e)) => {
            eprintln!("analysis error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            eprintln!("{function}: analysis crashed: {msg}");
            return ExitCode::from(EXIT_UNKNOWN);
        }
    };
    if opts.json {
        print!(
            "{}",
            report::outcome_json(&program, &outcome, started.elapsed().as_secs_f64()).pretty()
        );
        return verdict_exit(&outcome.verdict);
    }
    println!(
        "{function}: {} ({} basic blocks, safety {:.2}s{})",
        outcome.verdict,
        outcome.n_blocks,
        outcome.safety_time.as_secs_f64(),
        outcome
            .attack_time
            .map(|d| format!(", attack search {:.2}s", d.as_secs_f64()))
            .unwrap_or_default()
    );
    if !outcome.degradations.is_empty() {
        println!("degradations:");
        for d in &outcome.degradations {
            println!("  {d}");
        }
    }
    let report = &outcome.budget_report;
    if report.exhausted.is_some() || !report.degradations.is_empty() {
        println!(
            "budget: {} LP calls, {} fixpoint passes, {} refinement steps, \
             {} overflow events, {:.2}s elapsed",
            report.lp_calls,
            report.fixpoint_passes,
            report.refinement_steps,
            report.overflow_events,
            report.elapsed.as_secs_f64()
        );
        for note in &report.degradations {
            println!("  note: {note}");
        }
    }
    println!("{}", outcome.render_tree(&program));
    if let Verdict::Attack(spec) = &outcome.verdict {
        println!("{spec}");
        if opts.concretize {
            match concretize_outcome(&program, &outcome, 500) {
                Some((a, b)) => {
                    println!("witness inputs (equal lows, differing cost):");
                    println!("  run A: {a:?}");
                    println!("  run B: {b:?}");
                }
                None => println!("no concrete witness found within the attempt budget"),
            }
        }
    }
    verdict_exit(&outcome.verdict)
}

fn verdict_exit(verdict: &Verdict) -> ExitCode {
    match verdict {
        Verdict::Safe => ExitCode::SUCCESS,
        Verdict::Attack(_) => ExitCode::from(1),
        Verdict::Unknown(_) => ExitCode::from(EXIT_UNKNOWN),
    }
}

/// `--backend selfcomp`: the self-composition baseline alone. Sound when
/// it verifies; an honest `unknown` (never an attack claim) otherwise.
fn selfcomp_main(
    opts: &Options,
    program: &blazer::ir::Program,
    function: &str,
    started: Instant,
) -> ExitCode {
    if program.function(function).is_none() {
        eprintln!("analysis error: no such function: {function}");
        return ExitCode::from(EXIT_USAGE);
    }
    let epsilon = epsilon_for(&opts.config.observer);
    let _guard = opts.config.budget.install();
    let verified = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        blazer::selfcomp::verify(program, function, epsilon, &opts.config.cost_model)
    }));
    let result = match verified {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            eprintln!("{function}: self-composition crashed: {msg}");
            return ExitCode::from(EXIT_UNKNOWN);
        }
    };
    if opts.json {
        let doc = Json::obj([
            ("function", Json::from(function)),
            ("backend", Json::from(Backend::Selfcomp.as_str())),
            ("verdict", Json::from(if result.verified { "safe" } else { "unknown" })),
            ("verified", Json::Bool(result.verified)),
            ("epsilon", Json::from(epsilon)),
            ("cost_model", opts.config.cost_model.to_json()),
            ("composed_blocks", Json::from(result.composed_blocks)),
            ("wall_s", Json::secs(started.elapsed().as_secs_f64())),
        ]);
        print!("{}", doc.pretty());
    } else {
        println!(
            "{function}: {} (self-composition, epsilon {epsilon}, {} composed blocks, {:.2}s)",
            if result.verified { "safe" } else { "unknown: composed analysis did not verify" },
            result.composed_blocks,
            result.time.as_secs_f64(),
        );
    }
    if result.verified {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_UNKNOWN)
    }
}

/// `--backend portfolio`: race both engines under one shared budget and
/// report the winner plus the quantified leakage of the verdict.
fn portfolio_main(
    opts: &Options,
    program: &blazer::ir::Program,
    function: &str,
    started: Instant,
) -> ExitCode {
    let report = match analyze_portfolio(program, function, &opts.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if opts.json {
        print!(
            "{}",
            report::portfolio_json(program, function, &report, started.elapsed().as_secs_f64())
                .pretty()
        );
        return verdict_exit(&report.verdict);
    }
    let winner = report.winner.map(Backend::as_str).unwrap_or("none");
    println!(
        "{function}: {} (portfolio winner: {winner}{}, race {:.2}s; \
         decomp {:.2}s, selfcomp {:.2}s)",
        report.verdict,
        if report.revoked { ", loser revoked" } else { "" },
        report.wall.as_secs_f64(),
        report.decomp.wall.as_secs_f64(),
        report.selfcomp.wall.as_secs_f64(),
    );
    let l = &report.leakage;
    println!(
        "leakage: {:.2} bits ({} distinguishable classes over {} feasible trails, \
         {} wide{})",
        l.bits,
        l.classes,
        l.feasible_leaves,
        l.wide_leaves,
        l.max_gap.map(|g| format!(", max gap {g:.1}")).unwrap_or_default(),
    );
    if let Some(outcome) = &report.outcome {
        println!("{}", outcome.render_tree(program));
    }
    if let Verdict::Attack(spec) = &report.verdict {
        println!("{spec}");
    }
    if let Some(crash) = &report.crash {
        eprintln!("note: decomposition worker crashed ({crash}); verdict from self-composition");
    }
    verdict_exit(&report.verdict)
}

// ------------------------------------------------------------------ serve

fn serve_main(args: Vec<String>) -> ExitCode {
    let mut opts = ServeOptions::default();
    let mut args = args.into_iter();
    let parsed = loop {
        let Some(a) = args.next() else { break Ok(()) };
        let result = match a.as_str() {
            "--addr" => args.next().map(|v| opts.addr = v).ok_or("--addr expects HOST:PORT"),
            "--workers" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.workers = Some(n))
                .ok_or("--workers expects a positive integer"),
            "--queue" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.queue_depth = n)
                .ok_or("--queue expects a positive integer"),
            "--timeout" => match parse_timeout(args.next().as_deref()) {
                Ok(d) => {
                    opts.max_timeout = Some(d);
                    Ok(())
                }
                Err(_) => Err("--timeout expects a positive number of seconds"),
            },
            "--cache-file" => args
                .next()
                .map(|v| opts.cache_file = Some(v.into()))
                .ok_or("--cache-file expects a path"),
            "--analysis-threads" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.analysis_threads = n)
                .ok_or("--analysis-threads expects a positive integer"),
            "--max-requests-per-connection" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.max_requests_per_connection = n)
                .ok_or("--max-requests-per-connection expects a positive integer"),
            "--admin-token" => args
                .next()
                .filter(|t| !t.is_empty())
                .map(|t| opts.admin_token = Some(t))
                .ok_or("--admin-token expects a non-empty token"),
            other => break Err(format!("serve: unknown flag {other} (try --help)")),
        };
        if let Err(e) = result {
            break Err(e.to_string());
        }
    };
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::from(EXIT_USAGE);
    }
    let server = match Server::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    println!("blazer-serve listening on {}", server.addr());
    // Returns only after a graceful drain (an authorized POST /shutdown):
    // queued jobs finished, verdict cache flushed.
    server.wait();
    println!("blazer-serve drained; exiting");
    ExitCode::SUCCESS
}

// ------------------------------------------------------------------ route

fn route_main(args: Vec<String>) -> ExitCode {
    let mut opts = RouteOptions::default();
    let mut args = args.into_iter();
    let parsed = loop {
        let Some(a) = args.next() else { break Ok(()) };
        let result = match a.as_str() {
            "--addr" => args.next().map(|v| opts.addr = v).ok_or("--addr expects HOST:PORT"),
            "--backend" | "--backends" => match args.next() {
                Some(list) => {
                    // --backend may repeat, and each value may be a
                    // comma-separated list.
                    opts.backends.extend(
                        list.split(',').map(str::trim).filter(|b| !b.is_empty()).map(String::from),
                    );
                    Ok(())
                }
                None => Err("--backend expects HOST:PORT"),
            },
            "--workers" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.workers = Some(n))
                .ok_or("--workers expects a positive integer"),
            "--queue" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.queue_depth = n)
                .ok_or("--queue expects a positive integer"),
            "--health-interval" => match parse_timeout(args.next().as_deref()) {
                Ok(d) => {
                    opts.health.interval = d;
                    Ok(())
                }
                Err(_) => Err("--health-interval expects a positive number of seconds"),
            },
            "--health-timeout" => match parse_timeout(args.next().as_deref()) {
                Ok(d) => {
                    opts.health.timeout = d;
                    Ok(())
                }
                Err(_) => Err("--health-timeout expects a positive number of seconds"),
            },
            "--eject-after" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.health.eject_after = n)
                .ok_or("--eject-after expects a positive integer"),
            "--reinstate-after" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.health.reinstate_after = n)
                .ok_or("--reinstate-after expects a positive integer"),
            "--retry-base-ms" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.retry.base = Duration::from_millis(n))
                .ok_or("--retry-base-ms expects a positive integer"),
            "--retry-cap-ms" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.retry.cap = Duration::from_millis(n))
                .ok_or("--retry-cap-ms expects a positive integer"),
            "--max-requests-per-connection" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.max_requests_per_connection = n)
                .ok_or("--max-requests-per-connection expects a positive integer"),
            other => break Err(format!("route: unknown flag {other} (try --help)")),
        };
        if let Err(e) = result {
            break Err(e.to_string());
        }
    };
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::from(EXIT_USAGE);
    }
    let router = match Router::start(opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("route: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    println!(
        "blazer-route listening on {} over {} backends",
        router.addr(),
        router.health().snapshot().len()
    );
    router.wait();
    ExitCode::SUCCESS
}

// ------------------------------------------------------------ bench-serve

/// `blazer bench-serve`: the serve-throughput benchmark behind
/// `BENCH_serve.json`. Boots a fresh in-process server per `(threads,
/// mix)` configuration, prints one summary line per run, and writes the
/// JSON report to `--out` (or stdout).
fn bench_serve_main(args: Vec<String>) -> ExitCode {
    let mut threads: Vec<usize> = Vec::new();
    let mut mixes: Vec<u8> = Vec::new();
    let mut opts = bench::BenchOptions::default();
    let mut out: Option<String> = None;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let parsed: Result<(), String> = match a.as_str() {
            "--threads" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| threads.push(n))
                .ok_or("--threads expects a positive integer".into()),
            "--mix" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n <= 100)
                .map(|n| mixes.push(n))
                .ok_or("--mix expects a hit percentage in 0..=100".into()),
            "--duration-s" => parse_timeout(args.next().as_deref()).map(|d| opts.duration = d),
            "--hit-keys" => args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
                .map(|n| opts.hit_keys = n)
                .ok_or("--hit-keys expects a positive integer".into()),
            "--out" => args.next().map(|v| out = Some(v)).ok_or("--out expects a path".into()),
            other => Err(format!("bench-serve: unknown flag {other} (try --help)")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    // Repeatable flags override the default sweep only when given.
    if !threads.is_empty() {
        opts.threads = threads;
    }
    if !mixes.is_empty() {
        opts.hit_percents = mixes;
    }
    let doc = match bench::run(&opts, |line| eprintln!("{line}")) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-serve: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let rendered = doc.pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("bench-serve: {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
            eprintln!("bench-serve: wrote {path}");
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

// ----------------------------------------------------------------- client

fn client_main(args: Vec<String>) -> ExitCode {
    let mut addr = "127.0.0.1:8645".to_string();
    let mut mode_health = false;
    let mut mode_stats = false;
    let mut mode_batch = false;
    let mut mode_session = false;
    let mut json = false;
    let mut req = AnalyzeRequest::new(String::new());
    let mut positional = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let parsed: Result<(), String> = match a.as_str() {
            "--addr" => args.next().map(|v| addr = v).ok_or("--addr expects HOST:PORT".into()),
            "--health" => {
                mode_health = true;
                Ok(())
            }
            "--stats" => {
                mode_stats = true;
                Ok(())
            }
            "--batch" => {
                mode_batch = true;
                Ok(())
            }
            "--session" => {
                mode_session = true;
                Ok(())
            }
            "--json" => {
                json = true;
                Ok(())
            }
            "--domain" => parse_domain(args.next().as_deref()).map(|d| req.domain = d),
            "--cost-model" => parse_cost_model(args.next().as_deref()).map(|m| req.cost_model = m),
            "--observer" => match args.next().as_deref() {
                Some(o @ ("stac" | "degree")) => {
                    req.observer = o.to_string();
                    Ok(())
                }
                other => Err(format!("--observer expects stac|degree, got {other:?}")),
            },
            "--timeout" => {
                parse_timeout(args.next().as_deref()).map(|d| req.timeout_s = Some(d.as_secs_f64()))
            }
            "--max-lp-calls" => args
                .next()
                .and_then(|v| v.parse().ok())
                .map(|n| req.max_lp_calls = Some(n))
                .ok_or("--max-lp-calls expects a non-negative integer".into()),
            "--no-attack" => {
                req.no_attack = true;
                Ok(())
            }
            "--backend" => match args.next() {
                Some(b) => b.parse().map(|parsed| req.backend = parsed),
                None => Err("--backend expects decomp|selfcomp|portfolio".to_string()),
            },
            other => {
                positional.push(other.to_string());
                Ok(())
            }
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    if mode_health || mode_stats {
        let sent = if mode_health { client::health(&addr) } else { client::stats(&addr) };
        return match sent {
            Ok((200, doc)) => {
                print!("{}", doc.pretty());
                ExitCode::SUCCESS
            }
            Ok((status, doc)) => {
                eprintln!("server answered {status}: {doc}");
                ExitCode::from(EXIT_UNKNOWN)
            }
            Err(e) => {
                eprintln!("client: {addr}: {e}");
                ExitCode::from(EXIT_USAGE)
            }
        };
    }
    if mode_batch || mode_session {
        return multi_file_main(&addr, &positional, &req, json, mode_batch);
    }
    let mut positional = positional.into_iter();
    let Some(file) = positional.next() else {
        eprintln!("client: missing input file (or --health/--stats; try --help)");
        return ExitCode::from(EXIT_USAGE);
    };
    req.source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    req.function = positional.next();
    let (status, doc) = match client::analyze(&addr, &req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("client: {addr}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if json {
        print!("{}", doc.pretty());
    } else {
        print_analysis("", status, &doc);
    }
    ExitCode::from(outcome_code(status, &doc))
}

/// The human-readable one-line (plus trail tree) rendering of one analyze
/// response, to stdout for successes and stderr for failures. `label`
/// prefixes the line (the source file in multi-file modes).
fn print_analysis(label: &str, status: u16, doc: &Json) {
    if status == 200 {
        println!(
            "{label}{}: {}{} ({} basic blocks, {}s on the server, key {})",
            doc.get("function").and_then(Json::as_str).unwrap_or("?"),
            doc.get("verdict").and_then(Json::as_str).unwrap_or("?"),
            if doc.get("cached").and_then(Json::as_bool) == Some(true) { " [cached]" } else { "" },
            doc.get("n_blocks").and_then(Json::as_u64).unwrap_or(0),
            doc.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
            doc.get("key").and_then(Json::as_str).unwrap_or("?"),
        );
        if let Some(winner) = doc.get("winner").and_then(Json::as_str) {
            let bits = doc.get("leakage_bits").and_then(Json::as_f64).unwrap_or(0.0);
            println!("{label}portfolio winner: {winner}; leakage: {bits:.2} bits");
        }
        if let Some(tree) = doc.get("tree").and_then(Json::as_str) {
            println!("{tree}");
        }
    } else {
        eprintln!(
            "{label}server answered {status}: {}",
            doc.get("error").and_then(Json::as_str).unwrap_or("(no error message)")
        );
    }
}

/// The local exit code one analyze response maps to.
fn outcome_code(status: u16, doc: &Json) -> u8 {
    match (status, doc.get("verdict").and_then(Json::as_str)) {
        (200, Some("safe")) => 0,
        (200, Some("attack")) => 1,
        (400, _) => EXIT_USAGE,
        _ => EXIT_UNKNOWN,
    }
}

/// `client --batch`/`--session`: every positional is a file; each is
/// analyzed with the shared per-request options (`function` defaults to
/// each file's first function). `--batch` submits one JSON array in one
/// POST; `--session` sends one request per file over a single keep-alive
/// connection. Exit code: the most severe per-file code.
fn multi_file_main(
    addr: &str,
    files: &[String],
    options: &AnalyzeRequest,
    json: bool,
    batch: bool,
) -> ExitCode {
    if files.is_empty() {
        eprintln!("client: --batch/--session expect at least one file");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut requests = Vec::with_capacity(files.len());
    for file in files {
        let mut req = options.clone();
        req.source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        requests.push(req);
    }
    let mut worst = 0u8;
    if batch {
        let (status, doc) = match client::analyze_batch(addr, &requests) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("client: {addr}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if status != 200 {
            eprintln!(
                "server answered {status}: {}",
                doc.get("error").and_then(Json::as_str).unwrap_or("(no error message)")
            );
            return ExitCode::from(EXIT_UNKNOWN);
        }
        if json {
            print!("{}", doc.pretty());
        }
        let Some(items) = doc.as_arr() else {
            eprintln!("client: batch response is not an array");
            return ExitCode::from(EXIT_UNKNOWN);
        };
        for (file, item) in files.iter().zip(items) {
            let status = item.get("status").and_then(Json::as_u64).unwrap_or(500) as u16;
            if !json {
                print_analysis(&format!("{file} -> "), status, item);
            }
            worst = worst.max(outcome_code(status, item));
        }
    } else {
        let mut session = match client::Session::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("client: {addr}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        for (file, req) in files.iter().zip(&requests) {
            let (status, doc) = match session.analyze(req) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("client: {addr}: {file}: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            if json {
                print!("{}", doc.pretty());
            } else {
                print_analysis(&format!("{file} -> "), status, &doc);
            }
            worst = worst.max(outcome_code(status, &doc));
        }
    }
    ExitCode::from(worst)
}
