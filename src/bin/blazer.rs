//! The `blazer` command-line tool: analyze a surface-language file for
//! timing channels.
//!
//! ```console
//! $ blazer program.blz check            # analyze function `check`
//! $ blazer --observer stac program.blz check
//! $ blazer --domain zone program.blz check
//! $ blazer --concretize program.blz check
//! ```

use blazer::core::{concretize_outcome, Blazer, Config, DomainKind, Verdict};
use std::process::ExitCode;

struct Options {
    file: String,
    function: Option<String>,
    config: Config,
    concretize: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut config = Config::microbench();
    let mut concretize = false;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--observer" => match args.next().as_deref() {
                Some("stac") => config.observer = blazer::bounds::Observer::stac(),
                Some("degree") => config.observer = blazer::bounds::Observer::degree(),
                other => return Err(format!("--observer expects stac|degree, got {other:?}")),
            },
            "--domain" => {
                config.domain = match args.next().as_deref() {
                    Some("interval") => DomainKind::Interval,
                    Some("zone") => DomainKind::Zone,
                    Some("octagon") => DomainKind::Octagon,
                    Some("polyhedra") => DomainKind::Polyhedra,
                    other => {
                        return Err(format!(
                            "--domain expects interval|zone|octagon|polyhedra, got {other:?}"
                        ))
                    }
                };
            }
            "--no-attack" => config.synthesize_attack = false,
            "--concretize" => concretize = true,
            "--help" | "-h" => {
                return Err("usage: blazer [--observer stac|degree] [--domain D] \
                            [--no-attack] [--concretize] <file> [function]"
                    .to_string())
            }
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    let file = positional
        .next()
        .ok_or("missing input file (try --help)")?;
    Ok(Options { file, function: positional.next(), config, concretize })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let program = match blazer::lang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}:{e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let function = match &opts.function {
        Some(f) => f.clone(),
        None => match program.functions().next() {
            Some(f) => f.name().to_string(),
            None => {
                eprintln!("{}: no functions", opts.file);
                return ExitCode::from(2);
            }
        },
    };
    let outcome = match Blazer::new(opts.config).analyze(&program, &function) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analysis error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{function}: {} ({} basic blocks, safety {:.2}s{})",
        outcome.verdict,
        outcome.n_blocks,
        outcome.safety_time.as_secs_f64(),
        outcome
            .attack_time
            .map(|d| format!(", attack search {:.2}s", d.as_secs_f64()))
            .unwrap_or_default()
    );
    println!("{}", outcome.render_tree(&program));
    match &outcome.verdict {
        Verdict::Safe => ExitCode::SUCCESS,
        Verdict::Attack(spec) => {
            println!("{spec}");
            if opts.concretize {
                match concretize_outcome(&program, &outcome, 500) {
                    Some((a, b)) => {
                        println!("witness inputs (equal lows, differing cost):");
                        println!("  run A: {a:?}");
                        println!("  run B: {b:?}");
                    }
                    None => println!("no concrete witness found within the attempt budget"),
                }
            }
            ExitCode::from(1)
        }
        Verdict::Unknown => ExitCode::from(3),
    }
}
