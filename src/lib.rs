//! # blazer
//!
//! A from-scratch Rust reproduction of *Decomposition Instead of
//! Self-Composition for Proving the Absence of Timing Channels*
//! (Antonopoulos, Gazzillo, Hicks, Koskinen, Terauchi, Wei — PLDI 2017).
//!
//! This facade crate re-exports the whole workspace. The typical flow:
//!
//! ```
//! use blazer::core::{Blazer, Config, Verdict};
//!
//! // 1. Write (or load) a program in the surface language. Parameters
//! //    carry security labels: #high is secret, #low (default) is public.
//! let program = blazer::lang::compile(
//!     "fn check(high: int #high, low: int) { \
//!         if (high == 0) { \
//!             let i: int = 0; \
//!             while (i < low) { i = i + 1; } \
//!         } else { \
//!             let i: int = low; \
//!             while (i > 0) { i = i - 1; } \
//!         } \
//!     }",
//! )?;
//!
//! // 2. Analyze: prove timing-channel freedom, or synthesize an attack.
//! let outcome = Blazer::new(Config::microbench()).analyze(&program, "check")?;
//! assert!(matches!(outcome.verdict, Verdict::Safe));
//!
//! // 3. Inspect the tree of trails (the Fig. 1 visualization).
//! println!("{}", outcome.render_tree(&program));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Crate map:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `blazer-ir` | the CFG-based intermediate representation |
//! | [`lang`] | `blazer-lang` | lexer, parser, checker, lowering |
//! | [`automata`] | `blazer-automata` | regexes, NFA/DFA, language ops |
//! | [`domains`] | `blazer-domains` | rationals, simplex, polyhedra, octagons |
//! | [`taint`] | `blazer-taint` | information-flow analysis |
//! | [`interp`] | `blazer-interp` | concrete interpreter with cost counting |
//! | [`absint`] | `blazer-absint` | trail-restricted abstract interpreter |
//! | [`bounds`] | `blazer-bounds` | symbolic running-time bounds, observers |
//! | [`core`] | `blazer-core` | trails, quotient partitioning, the driver |
//! | [`selfcomp`] | `blazer-selfcomp` | the self-composition baseline |
//! | [`portfolio`] | `blazer-portfolio` | backend racing + quantified leakage |
//! | [`serve`] | `blazer-serve` | the concurrent HTTP analysis service |
//! | [`http`] | `blazer-http` | the shared HTTP/1.1 wire subset |
//! | [`route`] | `blazer-route` | the fault-tolerant fleet router |
//! | [`benchmarks`] | `blazer-benchmarks` | the 24 Table-1 programs |

#![forbid(unsafe_code)]

/// One-call convenience: compile a surface-language source and analyze one
/// function (the first one when `function` is `None`).
///
/// ```
/// let outcome = blazer::analyze_source(
///     "fn f(h: int #high) { if (h == 0) { tick(90); } else { tick(1); } }",
///     None,
///     blazer::core::Config::microbench(),
/// )?;
/// assert!(outcome.verdict.is_attack());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns compile errors from [`lang`] or analysis errors from [`core`].
pub fn analyze_source(
    source: &str,
    function: Option<&str>,
    config: blazer_core::Config,
) -> Result<blazer_core::AnalysisOutcome, Box<dyn std::error::Error>> {
    let program = blazer_lang::compile(source)?;
    let name = match function {
        Some(f) => f.to_string(),
        None => program.functions().next().ok_or("no functions in source")?.name().to_string(),
    };
    Ok(blazer_core::Blazer::new(config).analyze(&program, &name)?)
}

pub use blazer_absint as absint;
pub use blazer_automata as automata;
pub use blazer_benchmarks as benchmarks;
pub use blazer_bounds as bounds;
pub use blazer_core as core;
pub use blazer_domains as domains;
pub use blazer_http as http;
pub use blazer_interp as interp;
pub use blazer_ir as ir;
pub use blazer_lang as lang;
pub use blazer_portfolio as portfolio;
pub use blazer_route as route;
pub use blazer_selfcomp as selfcomp;
pub use blazer_serve as serve;
pub use blazer_taint as taint;
