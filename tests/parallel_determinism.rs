//! Parallel trail evaluation must be a pure wall-clock optimization: the
//! verdict, the tree of trails, every per-node bound, the degradation list,
//! and even the budget consumption totals are required to be identical at
//! every thread width. These tests pin that by replaying analyses at
//! `threads = 1` (strictly sequential, no workers spawned) and
//! `threads = 4` and comparing full outcome signatures.

use blazer::benchmarks::{by_name, Group};
use blazer::core::{AnalysisOutcome, Blazer, Config, Verdict};

/// A canonical, order-sensitive rendering of everything observable about an
/// outcome except wall-clock times.
fn signature(out: &AnalysisOutcome) -> String {
    let mut s = String::new();
    match &out.verdict {
        Verdict::Safe => s.push_str("verdict: safe\n"),
        Verdict::Attack(spec) => {
            s.push_str(&format!(
                "verdict: attack {} vs {} [{} ||| {}]\n",
                spec.node_a, spec.node_b, spec.trail_a, spec.trail_b
            ));
        }
        Verdict::Unknown(r) => s.push_str(&format!("verdict: unknown ({r})\n")),
    }
    s.push_str(&format!("blocks: {}\n", out.n_blocks));
    s.push_str(&format!("tree: {} nodes\n", out.tree.len()));
    for i in 0..out.tree.len() {
        let n = out.tree.node(i);
        let bounds = match &n.bounds {
            Some(b) => format!(
                "[{}, {}]",
                b.lower.as_ref().map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                b.upper.as_ref().map(|e| e.to_string()).unwrap_or_else(|| "inf".into())
            ),
            None => "-".to_string(),
        };
        s.push_str(&format!(
            "  node {i}: parent={:?} kind={:?} status={} bounds={bounds} trail={}\n",
            n.parent,
            n.split_kind.map(|k| k.to_string()),
            n.status,
            n.trail
        ));
    }
    s.push_str("degradations:\n");
    for d in &out.degradations {
        s.push_str(&format!("  {d}\n"));
    }
    let r = &out.budget_report;
    s.push_str(&format!(
        "budget: lp={} fixpoint={} refine={} overflow={} exhausted={:?}\n",
        r.lp_calls, r.fixpoint_passes, r.refinement_steps, r.overflow_events, r.exhausted
    ));
    s
}

fn config_for_group(group: Group) -> Config {
    match group {
        Group::MicroBench => Config::microbench(),
        Group::Stac | Group::Literature => Config::stac(),
    }
}

fn analyze_benchmark_at_width(name: &str, threads: usize) -> AnalysisOutcome {
    let b = by_name(name).unwrap_or_else(|| panic!("no benchmark named {name}"));
    let program = b.compile();
    Blazer::new(config_for_group(b.group).with_threads(threads))
        .analyze(&program, b.function)
        .expect("benchmark analyzes")
}

#[test]
fn benchmark_outcomes_identical_at_1_and_4_threads() {
    // A handful of cheap Table-1 programs covering all three verdict kinds
    // and both observer models.
    for name in ["sanity_safe", "sanity_unsafe", "notaint_unsafe", "straightline_unsafe"] {
        let seq = signature(&analyze_benchmark_at_width(name, 1));
        let par = signature(&analyze_benchmark_at_width(name, 4));
        assert_eq!(seq, par, "{name}: outcome diverged between 1 and 4 threads");
    }
}

#[test]
fn toy_programs_identical_at_1_and_4_threads() {
    // Exercise both driver loops: a safe case needing a taint split and an
    // attack case needing secret splits (multiple leaves per round, so the
    // 4-thread run genuinely fans out).
    let cases = [
        (
            "fn bar(high: int #high, low: int) { \
                if (low > 0) { \
                    let i: int = 0; \
                    while (i < low) { i = i + 1; } \
                    while (i > 0) { i = i - 1; } \
                } else { \
                    if (high == 0) { let i: int = 5; i = i; } \
                    else { let i: int = 0; i = i + 1; } \
                } \
            }",
            "bar",
        ),
        (
            "fn f(high: int #high, low: int) { \
                if (high == 0) { tick(1); } else { \
                    let i: int = 0; \
                    while (i < low) { i = i + 1; } \
                } \
            }",
            "f",
        ),
    ];
    for (src, func) in cases {
        let p = blazer::lang::compile(src).unwrap();
        let seq = signature(
            &Blazer::new(Config::microbench().with_threads(1)).analyze(&p, func).unwrap(),
        );
        let par = signature(
            &Blazer::new(Config::microbench().with_threads(4)).analyze(&p, func).unwrap(),
        );
        assert_eq!(seq, par, "{func}: outcome diverged between 1 and 4 threads");
    }
}

#[test]
fn width_resolution_prefers_explicit_config() {
    assert_eq!(Config::microbench().with_threads(3).effective_threads(), 3);
    // `with_threads` clamps to at least one worker.
    assert_eq!(Config::microbench().with_threads(1).effective_threads(), 1);
}
