//! End-to-end tests of the `blazer` command-line tool.

use std::process::Command;

fn blazer_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_blazer"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn cli_reports_attack_with_exit_code_1() {
    let f = write_temp(
        "blazer_cli_leak.blz",
        "fn check(high: int #high, low: int) {
            if (high == 0) { tick(100); } else { tick(1); }
        }",
    );
    let out = blazer_cmd().arg("--concretize").arg(&f).arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "attack exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("attack specification found"), "{stdout}");
    assert!(stdout.contains("witness inputs"), "{stdout}");
}

#[test]
fn cli_reports_safe_with_exit_code_0() {
    let f = write_temp(
        "blazer_cli_safe.blz",
        "fn check(high: int #high, low: int) {
            if (high == 0) { tick(5); } else { tick(5); }
        }",
    );
    let out = blazer_cmd().arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("safe"), "{stdout}");
    assert!(stdout.contains("trmg"), "tree rendering expected: {stdout}");
}

#[test]
fn cli_compile_errors_exit_3() {
    let f = write_temp("blazer_cli_bad.blz", "fn check( {");
    let out = blazer_cmd().arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(!out.stderr.is_empty());
}

#[test]
fn cli_domain_flag() {
    let f = write_temp(
        "blazer_cli_zone.blz",
        "fn check(high: int #high, low: int) {
            let i: int = 0;
            while (i < low) { i = i + 1; }
        }",
    );
    let out = blazer_cmd().args(["--domain", "zone"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn cli_help_and_bad_flags_exit_3() {
    let out = blazer_cmd().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = blazer_cmd().args(["--domain", "wat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let out = blazer_cmd().args(["--timeout", "nope"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let out = blazer_cmd().args(["--max-lp-calls", "-1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn cli_unknown_verdict_exits_2() {
    // Attack synthesis disabled on a leaky program: unknown, exit 2.
    let f = write_temp(
        "blazer_cli_unknown.blz",
        "fn check(high: int #high, low: int) {
            if (high == 0) { tick(100); } else { tick(1); }
        }",
    );
    let out = blazer_cmd().arg("--no-attack").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unknown"), "{stdout}");
}

#[test]
fn cli_timeout_budget_exhaustion_is_reported_within_bounds() {
    // The acceptance check: modPow2_unsafe under a tight deadline answers
    // Unknown with a budget-exhaustion reason, promptly — no hang, no
    // panic.
    let f = write_temp("blazer_cli_modpow2.blz", blazer::benchmarks::stac::MODPOW2_UNSAFE);
    let timeout_secs = 0.2f64;
    let start = std::time::Instant::now();
    let out = blazer_cmd().args(["--timeout", &timeout_secs.to_string()]).arg(&f).output().unwrap();
    let elapsed = start.elapsed();
    assert_eq!(out.status.code(), Some(2), "budget exhaustion exits 2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("budget exhausted") && stdout.contains("wall-clock"), "{stdout}");
    // Generous overshoot allowance: process startup + one straggling LP
    // poll period. The point is "promptly", not "exactly".
    assert!(
        elapsed.as_secs_f64() < 10.0 * timeout_secs + 2.0,
        "took {elapsed:?} for a {timeout_secs}s deadline"
    );
}

#[test]
fn cli_injected_panic_is_isolated() {
    let f = write_temp(
        "blazer_cli_panic.blz",
        "fn check(high: int #high, low: int) {
            if (high == 0) { tick(100); } else { tick(1); }
        }",
    );
    let out = blazer_cmd().env("BLAZER_FAULT", "panic:1").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "crash maps to unknown exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("analysis crashed"), "{stderr}");
}

#[test]
fn cli_max_lp_calls_never_panics_and_degrades() {
    let f = write_temp(
        "blazer_cli_lpcap.blz",
        "fn check(high: int #high, low: int) {
            let i: int = 0;
            while (i < low) { if (high == 0) { tick(1); } i = i + 1; }
        }",
    );
    let out = blazer_cmd().args(["--max-lp-calls", "3"]).arg(&f).output().unwrap();
    // Depending on rescue grants the analysis may still conclude; the
    // contract is: a verdict, cleanly, with exit code 0, 1, or 2.
    assert!(
        matches!(out.status.code(), Some(0) | Some(1) | Some(2)),
        "unexpected exit: {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_json_mode_emits_the_machine_readable_outcome() {
    let f = write_temp(
        "blazer_cli_json.blz",
        "fn check(high: int #high) {
            if (high == 0) { tick(100); } else { tick(1); }
        }",
    );
    let out = blazer_cmd().arg("--json").arg(&f).arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "exit codes are unchanged in --json mode");
    let doc = blazer::ir::json::Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("stdout is valid JSON");
    use blazer::ir::json::Json;
    assert_eq!(doc.get("function").and_then(Json::as_str), Some("check"));
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("attack"));
    assert!(!doc.get("attack").map(Json::is_null).unwrap_or(true), "attack pair attached");
    assert!(doc.get("budget").is_some());
}

#[test]
fn cli_serve_and_client_round_trip() {
    use std::io::BufRead;
    // Ephemeral port: the server prints the resolved address on stdout.
    let mut server = blazer_cmd()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut first_line = String::new();
    std::io::BufReader::new(server.stdout.take().unwrap()).read_line(&mut first_line).unwrap();
    let addr = first_line.trim().rsplit(' ').next().unwrap().to_string();
    let f = write_temp(
        "blazer_cli_client.blz",
        "fn check(high: int #high) {
            if (high == 0) { tick(100); } else { tick(1); }
        }",
    );
    let run = || blazer_cmd().args(["client", "--addr", &addr]).arg(&f).output().unwrap();
    let out = run();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("attack"));
    let out = run();
    assert!(String::from_utf8_lossy(&out.stdout).contains("[cached]"), "resubmission hits");
    let out = blazer_cmd().args(["client", "--addr", &addr, "--health"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    server.kill().unwrap();
    let _ = server.wait();
}
