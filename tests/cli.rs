//! End-to-end tests of the `blazer` command-line tool.

use std::process::Command;

fn blazer_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_blazer"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn cli_reports_attack_with_exit_code_1() {
    let f = write_temp(
        "blazer_cli_leak.blz",
        "fn check(high: int #high, low: int) {
            if (high == 0) { tick(100); } else { tick(1); }
        }",
    );
    let out = blazer_cmd()
        .arg("--concretize")
        .arg(&f)
        .arg("check")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "attack exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("attack specification found"), "{stdout}");
    assert!(stdout.contains("witness inputs"), "{stdout}");
}

#[test]
fn cli_reports_safe_with_exit_code_0() {
    let f = write_temp(
        "blazer_cli_safe.blz",
        "fn check(high: int #high, low: int) {
            if (high == 0) { tick(5); } else { tick(5); }
        }",
    );
    let out = blazer_cmd().arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("safe"), "{stdout}");
    assert!(stdout.contains("trmg"), "tree rendering expected: {stdout}");
}

#[test]
fn cli_compile_errors_exit_2() {
    let f = write_temp("blazer_cli_bad.blz", "fn check( {");
    let out = blazer_cmd().arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty());
}

#[test]
fn cli_domain_flag() {
    let f = write_temp(
        "blazer_cli_zone.blz",
        "fn check(high: int #high, low: int) {
            let i: int = 0;
            while (i < low) { i = i + 1; }
        }",
    );
    let out = blazer_cmd()
        .args(["--domain", "zone"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn cli_help_and_bad_flags() {
    let out = blazer_cmd().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = blazer_cmd().args(["--domain", "wat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
