//! Pipeline fuzzing: generate random (terminating, well-typed) programs,
//! run BOUNDANALYSIS, and check the concrete interpreter's measured cost
//! always lies within the symbolic bounds. This exercises the whole stack —
//! parser, lowering, taint, abstract interpretation, loop summarization,
//! cost algebra — against ground truth.

use blazer::absint::transfer::entry_state;
use blazer::absint::{DimMap, ProductGraph};
use blazer::bounds::graph_bounds;
use blazer::domains::{Polyhedron, Rat};
use blazer::interp::{Interp, SeededOracle, Value};
use blazer::ir::cost::CostModel;
use blazer::ir::Cfg;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A deterministic mini-RNG for program synthesis.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits a random statement list over the variable pool. Loops are always
/// of the shape `while (fresh < bound) { ...; fresh = fresh + k; }` with
/// `k ≥ 1` and a body that never reassigns the counter, so termination is
/// guaranteed by construction.
fn gen_stmts(g: &mut Gen, depth: u32, fresh: &mut u32, vars: &[String], out: &mut String) {
    let n = 1 + g.pick(3);
    for _ in 0..n {
        match g.pick(if depth == 0 { 2 } else { 4 }) {
            // Linear assignment to a mutable local (never to the loop
            // bound `l` or the secret `h`, so loop termination and input
            // seeds stay intact).
            0 | 1 => {
                let dst = ["x", "y"][g.pick(2) as usize];
                let a = &vars[g.pick(vars.len() as u64) as usize];
                let op = ["+", "-"][g.pick(2) as usize];
                let k = g.pick(5);
                out.push_str(&format!("{dst} = {a} {op} {k};\n"));
            }
            // Conditional.
            2 => {
                let a = &vars[g.pick(vars.len() as u64) as usize];
                let cmp = ["<", "<=", ">", ">=", "=="][g.pick(5) as usize];
                let k = g.pick(7) as i64 - 3;
                out.push_str(&format!("if ({a} {cmp} {k}) {{\n"));
                gen_stmts(g, depth - 1, fresh, vars, out);
                out.push_str("} else {\n");
                gen_stmts(g, depth - 1, fresh, vars, out);
                out.push_str("}\n");
            }
            // Bounded counting loop.
            _ => {
                let c = format!("c{}", *fresh);
                *fresh += 1;
                let bound = ["l", "7"][g.pick(2) as usize];
                let k = 1 + g.pick(2);
                out.push_str(&format!("let {c}: int = 0;\nwhile ({c} < {bound}) {{\n"));
                gen_stmts(g, depth - 1, fresh, vars, out);
                out.push_str(&format!("{c} = {c} + {k};\n}}\n"));
            }
        }
    }
}

fn gen_program(seed: u64) -> String {
    let mut g = Gen(seed);
    let vars: Vec<String> = vec!["x".into(), "y".into(), "h".into(), "l".into()];
    let mut body = String::new();
    let mut fresh = 0;
    gen_stmts(&mut g, 2, &mut fresh, &vars, &mut body);
    format!("fn f(h: int #high, l: int) {{\nlet x: int = 0;\nlet y: int = 1;\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The measured cost of every run lies within the computed bounds.
    #[test]
    fn bounds_contain_measured_costs(seed in 0u64..5000, h in -6i64..12, l in -3i64..10) {
        let src = gen_program(seed);
        let program = blazer::lang::compile(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let f = program.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let graph = ProductGraph::full(f, &cfg);
        let init: Polyhedron = entry_state(f, &dims);
        let seeds: BTreeSet<usize> = dims.seeds().collect();
        let b = graph_bounds(&program, f, &dims, &graph, &init, &CostModel::unit(), &seeds);
        let lower = b.lower.expect("generated programs always terminate");

        let t = Interp::new(&program)
            .run("f", &[Value::Int(h), Value::Int(l)], &mut SeededOracle::new(0))
            .expect("runs");

        let eval = |e: &blazer::bounds::CostExpr| -> i64 {
            let v = e.eval(&|d| {
                if d == dims.seed(0) {
                    Rat::int(h as i128)
                } else {
                    Rat::int(l as i128)
                }
            });
            // Bounds may be fractional; round outward conservatively when
            // comparing.
            v.floor() as i64
        };
        let lo = eval(&lower);
        prop_assert!(
            lo as i128 <= t.cost as i128,
            "lower bound {lo} exceeds measured {} for seed {seed} h={h} l={l}\n{src}",
            t.cost
        );
        if let Some(upper) = &b.upper {
            let hi = upper.eval(&|d| {
                if d == dims.seed(0) { Rat::int(h as i128) } else { Rat::int(l as i128) }
            });
            prop_assert!(
                Rat::int(t.cost as i128) <= hi.ceil_rat(),
                "upper bound {hi} below measured {} for seed {seed} h={h} l={l}\n{src}",
                t.cost
            );
        }
    }

    /// Under a tiny resource budget the driver still always returns a
    /// verdict — never panics, never hangs past ~2× the deadline — and an
    /// exhausted budget is surfaced as a machine-readable Unknown reason.
    #[test]
    fn tiny_budget_always_yields_a_verdict(seed in 0u64..5000, cap in 0u64..24) {
        use blazer::core::{Blazer, Budget, Config, UnknownReason, Verdict};
        use std::time::Duration;
        let src = gen_program(seed);
        let program = blazer::lang::compile(&src).unwrap();
        let deadline = Duration::from_millis(200);
        let budget = Budget::unlimited()
            .with_deadline(deadline)
            .with_max_lp_calls(cap)
            .with_max_fixpoint_passes(cap.max(1))
            .with_max_refinement_steps(cap.max(1));
        let start = std::time::Instant::now();
        let outcome = Blazer::new(Config::microbench().with_budget(budget))
            .analyze(&program, "f")
            .expect("a verdict, not a panic");
        let elapsed = start.elapsed();
        // ~2× deadline plus scheduling fudge: exhaustion is cooperative,
        // so a small overshoot is expected but a hang is a bug.
        prop_assert!(
            elapsed <= 2 * deadline + Duration::from_millis(500),
            "took {elapsed:?} against a {deadline:?} deadline\n{src}"
        );
        if let Verdict::Unknown(reason) = &outcome.verdict {
            if outcome.budget_report.exhausted.is_some() {
                prop_assert!(
                    matches!(reason, UnknownReason::BudgetExhausted(_))
                        || matches!(reason, UnknownReason::SearchExhausted),
                    "budget ran out but reason is {reason}\n{src}"
                );
            }
        }
    }

    /// Blazer's verdict machinery never panics on generated programs, and
    /// safe verdicts are consistent with quick concrete fuzzing.
    #[test]
    fn analysis_never_panics_and_safe_is_plausible(seed in 0u64..500) {
        use blazer::core::{Blazer, Config};
        let src = gen_program(seed);
        let program = blazer::lang::compile(&src).unwrap();
        let mut config = Config::microbench();
        config.max_trails = 12; // keep the fuzz cheap
        let outcome = Blazer::new(config).analyze(&program, "f").unwrap();
        if outcome.verdict.is_safe() {
            // Sample a few input pairs with equal lows.
            let interp = Interp::new(&program);
            for l in [0i64, 3] {
                let mut costs = BTreeSet::new();
                for h in [-2i64, 0, 5] {
                    let t = interp
                        .run("f", &[Value::Int(h), Value::Int(l)], &mut SeededOracle::new(0))
                        .unwrap();
                    costs.insert(t.cost);
                }
                let spread = costs.iter().max().unwrap() - costs.iter().min().unwrap();
                prop_assert!(
                    spread <= 32,
                    "declared safe but spread {spread} at l={l}\n{src}"
                );
            }
        }
    }
}
