//! The headline result: Blazer's verdict on every Table-1 benchmark matches
//! the paper. The full 24-benchmark sweep takes a few minutes in release
//! mode, so the always-on test covers a fast representative subset and the
//! complete sweep runs with `cargo test --release -- --ignored`.

use blazer::benchmarks::{all, by_name, Expected, Group};
use blazer::core::{Blazer, Config, Verdict};

fn config_for(group: Group) -> Config {
    match group {
        Group::MicroBench => Config::microbench(),
        _ => Config::stac(),
    }
}

fn matches_paper(name: &str) -> bool {
    let b = by_name(name).expect("benchmark exists");
    let program = b.compile();
    let outcome = Blazer::new(config_for(b.group)).analyze(&program, b.function).expect("analyzes");
    matches!(
        (&outcome.verdict, b.expected),
        (Verdict::Safe, Expected::Safe)
            | (Verdict::Attack(_), Expected::Attack)
            | (Verdict::Unknown(_), Expected::Unknown)
    )
}

#[test]
fn representative_subset_matches_table_1() {
    for name in [
        "nosecret_safe",
        "notaint_unsafe",
        "sanity_safe",
        "sanity_unsafe",
        "straightline_safe",
        "straightline_unsafe",
        "unixlogin_safe",
        "unixlogin_unsafe",
    ] {
        assert!(matches_paper(name), "{name} disagrees with Table 1");
    }
}

#[test]
#[ignore = "full Table-1 sweep: minutes in release mode; run with --ignored"]
fn all_24_verdicts_match_table_1() {
    let mut mismatches = Vec::new();
    for b in all() {
        if !matches_paper(b.name) {
            mismatches.push(b.name);
        }
    }
    assert!(mismatches.is_empty(), "mismatches: {mismatches:?}");
}
