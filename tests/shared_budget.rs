//! Driver-level tests for the *shared* budget ledger: when trail evaluation
//! fans out across worker threads, all workers draw from one global pool of
//! LP calls. Exhaustion is a single global event — consumption is counted
//! once, not once per thread, and the run stops with the same sticky
//! resource regardless of width.

use blazer::core::{Blazer, Config, DomainKind, Resource, UnknownReason, Verdict};

/// A program whose analysis splits into several pending leaves per round, so
/// a 4-thread run genuinely evaluates trails concurrently.
const WIDE: &str = "fn wide(high: int #high, low: int) { \
    if (low > 0) { \
        if (high == 0) { tick(1); } else { \
            let i: int = 0; \
            while (i < low) { i = i + 1; } \
        } \
    } else { \
        if (high == 1) { tick(5); } else { \
            let j: int = 0; \
            while (j < low) { j = j + 1; } \
        } \
    } \
}";

fn run(threads: usize, cap: u64) -> blazer::core::AnalysisOutcome {
    let p = blazer::lang::compile(WIDE).unwrap();
    // The interval domain is already the coarsest rung, so no LP rescue
    // grants inflate the cap and exhaustion is reached quickly.
    let config = Config::microbench()
        .with_domain(DomainKind::Interval)
        .with_max_lp_calls(cap)
        .with_threads(threads);
    Blazer::new(config).analyze(&p, "wide").unwrap()
}

#[test]
fn tiny_lp_cap_stops_all_workers_globally() {
    let cap = 6;
    let out = run(4, cap);
    assert!(
        matches!(out.verdict, Verdict::Unknown(UnknownReason::BudgetExhausted(Resource::LpCalls))),
        "expected LP-call exhaustion, got {:?}",
        out.verdict
    );
    let report = &out.budget_report;
    assert_eq!(report.exhausted, Some(Resource::LpCalls));
    // The ledger is global: the tripping call and each concurrently racing
    // worker may overshoot by one increment, so total consumption stays
    // within cap + threads — NOT threads * cap, which a per-thread budget
    // copy would allow.
    assert!(
        report.lp_calls <= cap + 4,
        "LP calls counted more than once globally: {} > {}",
        report.lp_calls,
        cap + 4
    );
}

#[test]
fn exhaustion_identical_across_widths() {
    let cap = 6;
    let seq = run(1, cap);
    let par = run(4, cap);
    assert_eq!(
        format!("{}", seq.verdict),
        format!("{}", par.verdict),
        "verdict diverged between widths under a tiny budget"
    );
    assert_eq!(seq.budget_report.exhausted, par.budget_report.exhausted);
    // Under exhaustion the exact count may overshoot by one per racing
    // worker (the increment lands before the cap check), but never by a
    // whole per-thread budget.
    let (a, b) = (seq.budget_report.lp_calls, par.budget_report.lp_calls);
    assert!(a.abs_diff(b) <= 4, "lp_calls diverged beyond racing slack: {a} vs {b}");
    assert_eq!(seq.budget_report.refinement_steps, par.budget_report.refinement_steps);
}

#[test]
fn generous_cap_unaffected_by_width() {
    // Sanity check: with room to finish, the capped parallel run reaches
    // the same verdict and consumption as the sequential one.
    let seq = run(1, 1_000_000);
    let par = run(4, 1_000_000);
    assert_eq!(format!("{}", seq.verdict), format!("{}", par.verdict));
    assert_eq!(seq.budget_report.lp_calls, par.budget_report.lp_calls);
    assert_eq!(seq.budget_report.exhausted, None);
    assert_eq!(par.budget_report.exhausted, None);
}
