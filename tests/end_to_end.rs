//! Cross-crate integration tests: the full pipeline from surface syntax to
//! verdicts, on the paper's worked examples.

use blazer::benchmarks::extra;
use blazer::core::{Blazer, Config, Verdict};

fn analyze(src: &str, func: &str, config: Config) -> Verdict {
    let p = blazer::lang::compile(src).expect("compiles");
    Blazer::new(config).analyze(&p, func).expect("analyzes").verdict
}

#[test]
fn example1_foo_safe() {
    let v = analyze(extra::EXAMPLE1_FOO, "foo", Config::microbench());
    assert!(v.is_safe(), "{v}");
}

#[test]
fn example2_bar_safe_with_split() {
    let p = blazer::lang::compile(extra::EXAMPLE2_BAR).unwrap();
    let outcome = Blazer::new(Config::microbench()).analyze(&p, "bar").unwrap();
    assert!(outcome.verdict.is_safe());
    // The partition split at the low branch (Sec. 2.2's T> / T≤).
    assert!(outcome.tree.len() >= 3);
}

#[test]
fn sec7_examples_beat_type_systems() {
    assert!(analyze(extra::SEC7_EX1, "ex1", Config::microbench()).is_safe());
    assert!(analyze(extra::SEC7_EX2, "ex2", Config::microbench()).is_safe());
}

#[test]
fn fig1_login_pair() {
    use blazer::core::{NodeStatus, SplitKind};

    // Top of Fig. 1: loginSafe verifies after a taint split at the null
    // check, with every leaf narrow.
    let safe = blazer::benchmarks::by_name("login_safe").unwrap();
    let p = safe.compile();
    let outcome = Blazer::new(Config::stac()).analyze(&p, safe.function).unwrap();
    assert!(outcome.verdict.is_safe(), "{}", outcome.render_tree(&p));
    let tree = &outcome.tree;
    assert!(tree.len() >= 3, "a split must have happened");
    let root_children = &tree.node(tree.root()).children;
    assert_eq!(root_children.len(), 2, "binary taint split");
    for &c in root_children {
        assert_eq!(tree.node(c).split_kind, Some(SplitKind::Taint));
    }
    for leaf in tree.leaves() {
        assert!(matches!(tree.node(leaf).status, NodeStatus::Narrow | NodeStatus::Empty));
    }

    // Bottom of Fig. 1: loginBad yields an attack via sec splits, and the
    // two attack trails have bounds (the paper's tr3/tr4).
    let unsafe_b = blazer::benchmarks::by_name("login_unsafe").unwrap();
    let p = unsafe_b.compile();
    let outcome = Blazer::new(Config::stac()).analyze(&p, unsafe_b.function).unwrap();
    let Verdict::Attack(spec) = &outcome.verdict else {
        panic!("expected attack:\n{}", outcome.render_tree(&p));
    };
    let tree = &outcome.tree;
    assert_eq!(tree.node(spec.node_a).split_kind, Some(SplitKind::Secret));
    assert_eq!(tree.node(spec.node_b).split_kind, Some(SplitKind::Secret));
    assert_eq!(tree.node(spec.node_a).status, NodeStatus::Attack);
    // The attack pair's bounds are concrete evidence, both present.
    assert!(spec.bounds_a.1.is_some() && spec.bounds_b.1.is_some());
}

#[test]
fn attack_specs_concretize_on_microbench() {
    use blazer::core::concretize_outcome;
    for name in ["sanity_unsafe", "notaint_unsafe", "straightline_unsafe"] {
        let b = blazer::benchmarks::by_name(name).unwrap();
        let p = b.compile();
        let outcome = Blazer::new(Config::microbench()).analyze(&p, b.function).unwrap();
        assert!(outcome.verdict.is_attack(), "{name}");
        let w = concretize_outcome(&p, &outcome, 600);
        assert!(w.is_some(), "{name} should concretize");
    }
}

/// The ψ-quotient partition discipline: when the driver reports SAFE after
/// splitting, the union of the leaf trails' languages must cover the most
/// general trail — otherwise some execution was never checked. Verified
/// with exact automata operations on real benchmark outcomes.
#[test]
fn safe_partitions_cover_the_most_general_trail() {
    use blazer::automata::{ops, Dfa, Regex};
    for (name, config) in [
        ("login_safe", Config::stac()),
        ("loopBranch_safe", Config::microbench()),
        ("pwdEqual_safe", Config::stac()),
    ] {
        let b = blazer::benchmarks::by_name(name).unwrap();
        let p = b.compile();
        let outcome = Blazer::new(config).analyze(&p, b.function).unwrap();
        assert!(outcome.verdict.is_safe(), "{name}");
        let tree = &outcome.tree;
        // Alphabet size: max symbol over all trails + 1.
        let alpha =
            (0..tree.len()).flat_map(|i| tree.node(i).trail.symbols()).max().unwrap_or(0) + 1;
        let trmg = Dfa::from_regex(&tree.node(tree.root()).trail, alpha);
        let mut union = Dfa::from_regex(&Regex::Empty, alpha);
        for leaf in tree.leaves() {
            union = ops::union(&union, &Dfa::from_regex(&tree.node(leaf).trail, alpha));
        }
        assert!(ops::included(&trmg, &union), "{name}: leaves do not cover the most general trail");
    }
}

#[test]
fn verdicts_are_stable_across_runs() {
    // Determinism: the analysis has no hidden nondeterminism.
    let b = blazer::benchmarks::by_name("sanity_safe").unwrap();
    let p = b.compile();
    let blazer = Blazer::new(Config::microbench());
    let a = blazer.analyze(&p, b.function).unwrap();
    let c = blazer.analyze(&p, b.function).unwrap();
    assert_eq!(a.verdict.is_safe(), c.verdict.is_safe());
    assert_eq!(a.tree.len(), c.tree.len());
}
