//! Oracle property test: the symbolic trail bounds are sound for the
//! concrete interpreter.
//!
//! For every random run of a benchmark, the trail the trace follows (the
//! unique leaf of the decomposition whose DFA accepts the trace's edge
//! word) must bound the trace's measured cost: `lo ≤ cost ≤ hi` with both
//! ends evaluated at the run's actual input magnitudes (the seed
//! dimensions the bounds are expressed over — an int parameter's value, an
//! array parameter's length).
//!
//! This closes the loop between the three pillars of the reproduction: the
//! partition (trails), the symbolic bounds (Sec. 4), and the concrete cost
//! semantics the attacker observes. A violation in either direction is a
//! soundness bug — an infeasible leaf accepting a real trace means the
//! emptiness check lies, and a cost outside `[lo, hi]` means the
//! per-trail abstract interpretation lies.
//!
//! Both sides of the comparison are priced under the *same* pluggable
//! cost model, and the whole check sweeps every preset (`unit`,
//! `weighted`, `cache`): the cache-aware model's symbolic side classifies
//! memory accesses with an abstract must-cache and prices unclassified
//! ones as `[hit, miss]` ranges, so a concrete LRU run landing outside a
//! leaf's `[lo, hi]` means the must-hit analysis over-promised.
//!
//! The fast tier-1 test sweeps a MicroBench subset; the `#[ignore]`d
//! variant sweeps all 24 Table-1 benchmarks and runs in CI's snapshot job.

use blazer::absint::EdgeAlphabet;
use blazer::automata::Dfa;
use blazer::core::{Blazer, Config};
use blazer::domains::Rat;
use blazer::interp::{Interp, SeededOracle, Value};
use blazer::ir::cost::CostModel;
use blazer::ir::{Cfg, Program, Type};

/// Deterministic input generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }

    fn value(&mut self, ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(self.int_in(-4, 24)),
            Type::Bool => Value::Int(self.int_in(0, 1)),
            Type::Array => {
                let n = self.int_in(0, 8) as usize;
                Value::array((0..n).map(|_| self.int_in(0, 7)).collect())
            }
        }
    }
}

/// The seed-dimension magnitude of one concrete input: an int's value, an
/// array's length (a null array seeds 0).
fn magnitude(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        Value::Arr(Some(a)) => a.borrow().len() as i64,
        Value::Arr(None) => 0,
    }
}

/// Fuzzes `attempts` random runs of one analyzed benchmark and checks each
/// measured cost against the accepting leaf's `[lo, hi]`. Returns the
/// number of runs matched to a bounded leaf, and whether the partition has
/// any bounded leaf at all (the no-secret-influence fast path concludes
/// Safe without ever computing per-trail bounds, so its leaves carry none
/// and no run can match).
fn check_benchmark(name: &str, model: &CostModel, attempts: u32, seed: u64) -> (usize, bool) {
    let b = blazer::benchmarks::by_name(name).unwrap();
    let program: Program = b.compile();
    let mut config = blazer_bench_config(b.group);
    config.cost_model = model.clone();
    let outcome = Blazer::new(config.clone()).analyze(&program, b.function).unwrap();
    let f = program.function(b.function).unwrap();
    let cfg = Cfg::new(f);
    let alphabet = EdgeAlphabet::new(&cfg);
    let dims = blazer::absint::DimMap::new(f);
    // Every leaf with its trail DFA; infeasible leaves (no lower bound,
    // empty trail language) keep their DFA so we can assert they never
    // accept a real trace.
    let leaves: Vec<_> = outcome
        .tree
        .leaves()
        .into_iter()
        .map(|i| {
            let node = outcome.tree.node(i);
            (i, Dfa::from_regex(&node.trail, alphabet.len() as u32), node.bounds.clone())
        })
        .collect();
    let any_bounded = leaves.iter().any(|(_, _, b)| b.is_some());
    let interp = Interp::new(&program).with_cost_model(config.cost_model.clone());
    let mut gen = Gen(seed);
    let mut matched = 0usize;
    for attempt in 0..attempts {
        let inputs: Vec<Value> = f.params().iter().map(|p| gen.value(f.var(p.var).ty)).collect();
        let Ok(trace) = interp.run(b.function, &inputs, &mut SeededOracle::new(u64::from(attempt)))
        else {
            continue; // runtime error (null deref, division): no cost to bound
        };
        let word = alphabet.word_of(&trace.edges);
        // The bounds are expressed over the seed dimensions (initial
        // parameter magnitudes); everything else must have been eliminated.
        let seeds: Vec<Rat> = {
            let mut by_dim = vec![Rat::int(0); dims.n_dims()];
            for (i, v) in inputs.iter().enumerate() {
                by_dim[dims.seed(i)] = Rat::int(i128::from(magnitude(v)));
            }
            by_dim
        };
        let at = |d: usize| seeds.get(d).cloned().unwrap_or_else(|| Rat::int(0));
        let cost = Rat::int(i128::from(trace.cost));
        for (leaf, dfa, bounds) in &leaves {
            if !dfa.accepts(&word) {
                continue;
            }
            let Some(bounds) = bounds else { continue }; // never analyzed (degraded)
            let Some(lo) = &bounds.lower else {
                panic!(
                    "{name} [{model}]: leaf tr{leaf} is claimed infeasible (empty trail \
                     language) but accepts a concrete trace with cost {}",
                    trace.cost
                );
            };
            matched += 1;
            let lo_v = lo.eval(&at);
            assert!(
                lo_v <= cost,
                "{name} [{model}]: run {attempt} cost {} under leaf tr{leaf} lower bound \
                 {lo} = {lo_v:?} at inputs {inputs:?}",
                trace.cost
            );
            if let Some(hi) = &bounds.upper {
                let hi_v = hi.eval(&at);
                assert!(
                    cost <= hi_v,
                    "{name} [{model}]: run {attempt} cost {} over leaf tr{leaf} upper bound \
                     {hi} = {hi_v:?} at inputs {inputs:?}",
                    trace.cost
                );
            }
        }
    }
    (matched, any_bounded)
}

/// The same per-group configuration the Table-1 harness uses.
fn blazer_bench_config(group: blazer::benchmarks::Group) -> Config {
    match group {
        blazer::benchmarks::Group::MicroBench => Config::microbench(),
        _ => Config::stac(),
    }
}

#[test]
fn concrete_costs_fall_inside_symbolic_trail_bounds() {
    // A MicroBench subset with fully decided partitions, covering safe,
    // attack, loops, arrays, and the no-taint fast path, swept under every
    // cost-model preset. Debug builds run the analyses an order of
    // magnitude slower; fewer attempts keep the tier-1 wall time in check
    // without losing the release-mode sweep.
    let attempts = if cfg!(debug_assertions) { 25 } else { 100 };
    for (label, model) in CostModel::presets() {
        for name in [
            "array_safe",
            "array_unsafe",
            "loopBranch_safe",
            "nosecret_safe",
            "notaint_unsafe",
            "sanity_safe",
            "sanity_unsafe",
            "straightline_safe",
            "straightline_unsafe",
        ] {
            let (matched, any_bounded) = check_benchmark(name, &model, attempts, 0xB1A2);
            assert!(
                matched > 0 || !any_bounded,
                "{name} [{label}]: no random run matched any bounded trail leaf"
            );
        }
    }
}

#[test]
#[ignore = "sweeps all 24 Table-1 benchmarks per cost model; run in CI's cost-oracle job"]
fn concrete_costs_fall_inside_symbolic_trail_bounds_all_benchmarks() {
    for (label, model) in CostModel::presets() {
        let mut total = 0usize;
        for b in blazer::benchmarks::all() {
            total += check_benchmark(b.name, &model, 60, 0xB1A2 ^ b.name.len() as u64).0;
        }
        assert!(total > 0, "[{label}] no benchmark produced a bounded matched run");
    }
}
