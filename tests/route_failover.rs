//! Chaos tests for the fleet router: real `blazer serve` child processes,
//! an in-process `Router` fronting them, and a SIGKILL mid-workload — the
//! scenario the router exists for. The in-process end-to-end tests live in
//! `crates/route/tests`; this file is about *process* death, which no
//! in-process stop can simulate (a killed process drops its connections
//! mid-request instead of draining them).

use blazer::ir::json::{fnv1a64, Json};
use blazer::route::health::HealthOptions;
use blazer::route::ring::Ring;
use blazer::route::{RetryPolicy, RouteOptions, Router};
use blazer::serve::api::AnalyzeRequest;
use blazer::serve::client;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One `blazer serve` child on an ephemeral port; the bound address is
/// parsed from its startup line, so there is no reserve-a-port race.
struct Backend {
    child: Child,
    addr: String,
}

impl Backend {
    fn spawn() -> Backend {
        let mut child = Command::new(env!("CARGO_BIN_EXE_blazer"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn blazer serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner =
            lines.next().expect("serve prints its listening line").expect("readable child stdout");
        let addr = banner
            .strip_prefix("blazer-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .trim()
            .to_string();
        // Drain the rest of the child's stdout so it never blocks on a
        // full pipe.
        std::thread::spawn(move || for _ in lines {});
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client::health(&addr) {
                Ok((200, _)) => break,
                _ if Instant::now() > deadline => panic!("backend {addr} never became healthy"),
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        Backend { child, addr }
    }

    /// SIGKILL — the unclean death the router must absorb.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn router_over(addrs: Vec<String>) -> Router {
    Router::start(RouteOptions {
        addr: "127.0.0.1:0".to_string(),
        backends: addrs,
        retry: RetryPolicy { base: Duration::from_millis(5), cap: Duration::from_millis(50) },
        // The request path drives health deterministically; eject on the
        // first failure, as a chaos run wants.
        health: HealthOptions {
            interval: Duration::from_secs(300),
            timeout: Duration::from_secs(2),
            eject_after: 1,
            reinstate_after: 2,
        },
        ..RouteOptions::default()
    })
    .expect("router starts")
}

/// A trivially-safe unique source.
fn tick_source(n: u64) -> AnalyzeRequest {
    AnalyzeRequest::new(format!("fn f(h: int #high) {{ tick({n}); }}"))
}

/// A source whose primary shard is backend `want` on a ring over `addrs`.
fn source_with_primary(addrs: &[String], want: usize, salt: u64) -> AnalyzeRequest {
    let ring = Ring::new(addrs);
    (salt..salt + 100_000)
        .map(tick_source)
        .find(|req| ring.primary(fnv1a64(req.cache_key().canonical().as_bytes())) == Some(want))
        .expect("some source must hash to the wanted shard")
}

fn backend_analyses_run(addr: &str) -> u64 {
    let (status, stats) = client::stats(addr).expect("backend stats");
    assert_eq!(status, 200);
    stats.get("analyses_run").and_then(Json::as_u64).expect("analyses_run")
}

fn assert_batch_all_ok(doc: &Json, expected_len: usize) {
    let items = doc.as_arr().unwrap_or_else(|| panic!("array response, got {doc}"));
    assert_eq!(items.len(), expected_len);
    for (n, item) in items.iter().enumerate() {
        assert_eq!(item.get("status").and_then(Json::as_u64), Some(200), "item {n}: {item}");
        assert_eq!(item.get("verdict").and_then(Json::as_str), Some("safe"), "item {n}");
    }
}

#[test]
fn a_sigkilled_backend_costs_no_answers_and_no_duplicate_runs() {
    let survivor = Backend::spawn();
    let victim = Backend::spawn();
    let addrs = vec![survivor.addr.clone(), victim.addr.clone()];
    let router = router_over(addrs.clone());
    let router_addr = router.addr().to_string();
    // Round 1, both alive: six unique sources run exactly once each,
    // spread across the fleet.
    let round1: Vec<AnalyzeRequest> = (0..6).map(|n| tick_source(10_000 + n)).collect();
    let (status, doc) = client::analyze_batch(&router_addr, &round1).expect("round 1");
    assert_eq!(status, 200, "{doc}");
    assert_batch_all_ok(&doc, 6);
    let survivor_before = backend_analyses_run(&survivor.addr);
    let victim_before = backend_analyses_run(&victim.addr);
    assert_eq!(survivor_before + victim_before, 6, "each unique source ran exactly once");
    // SIGKILL one backend: connections die mid-flight, nothing drains.
    victim.kill();
    // Round 2: six new unique sources, one of them *guaranteed* to be
    // sharded onto the corpse so the failover path provably runs.
    let mut round2: Vec<AnalyzeRequest> = (0..5).map(|n| tick_source(20_000 + n)).collect();
    round2.push(source_with_primary(&addrs, 1, 30_000));
    let (status, doc) = client::analyze_batch(&router_addr, &round2).expect("round 2");
    assert_eq!(status, 200, "{doc}");
    assert_batch_all_ok(&doc, 6);
    // Zero client-visible 5xx, at least one failover, and the corpse is
    // ejected.
    let stats = router.stats();
    assert_eq!(stats.fleet_unavailable.load(Ordering::SeqCst), 0);
    assert!(stats.failovers.load(Ordering::SeqCst) >= 1);
    assert!(!router.health().is_up(1), "the killed backend must be ejected");
    // No duplicate driver runs: every round-2 source ran exactly once,
    // all on the survivor.
    let survivor_after = backend_analyses_run(&survivor.addr);
    assert_eq!(survivor_after - survivor_before, 6, "six new sources, six new runs");
    // The fleet keeps answering: a fresh single submission through the
    // router still round-trips.
    let (status, doc) =
        client::analyze(&router_addr, &tick_source(40_000)).expect("post-chaos single");
    assert_eq!(status, 200, "{doc}");
    router.stop();
}

/// The acceptance-criteria chaos run: all 24 Table-1 benchmarks through
/// the router while one of two backends is SIGKILLed mid-batch; every
/// verdict must match the committed `BENCH_table1.json` snapshot with zero
/// client-visible 5xx. Slow (it really analyzes all 24), so ignored in
/// tier-1 runs; CI's snapshot job runs it in release.
#[test]
#[ignore = "analyzes all 24 Table-1 benchmarks; run explicitly or in CI (release)"]
fn table1_verdicts_survive_a_mid_batch_sigkill() {
    let snapshot_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_table1.json");
    let snapshot = std::fs::read_to_string(snapshot_path).expect("committed snapshot");
    let snapshot = Json::parse(&snapshot).expect("snapshot parses");
    let rows = snapshot.get("benchmarks").and_then(Json::as_arr).expect("benchmarks array");
    let expected: std::collections::HashMap<&str, &str> = rows
        .iter()
        .map(|row| {
            (
                row.get("name").and_then(Json::as_str).expect("row name"),
                match row.get("verdict").and_then(Json::as_str).expect("row verdict") {
                    "gave up" => "unknown",
                    v => v,
                },
            )
        })
        .collect();
    let benchmarks = blazer::benchmarks::all();
    let requests: Vec<AnalyzeRequest> = benchmarks
        .iter()
        .map(|b| {
            let mut req = AnalyzeRequest::new(b.source);
            req.function = Some(b.function.to_string());
            req.observer = match b.group {
                blazer::benchmarks::Group::MicroBench => "degree".to_string(),
                _ => "stac".to_string(),
            };
            req
        })
        .collect();
    assert_eq!(requests.len(), 24);
    let survivor = Backend::spawn();
    let victim = Backend::spawn();
    let router = router_over(vec![survivor.addr.clone(), victim.addr.clone()]);
    let router_addr = router.addr().to_string();
    // The assassin: SIGKILL the victim a few seconds into the batch, while
    // its sub-batch is genuinely in flight.
    let assassin = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(5));
        victim.kill();
    });
    let mut session = client::Session::connect(&router_addr).expect("session connects");
    let (status, doc) = session.analyze_batch(&requests).expect("batch round-trips");
    assassin.join().expect("assassin thread");
    assert_eq!(status, 200, "{doc}");
    let items = doc.as_arr().expect("array response");
    assert_eq!(items.len(), 24, "one result per benchmark");
    for (b, item) in benchmarks.iter().zip(items) {
        assert_eq!(item.get("status").and_then(Json::as_u64), Some(200), "{}: {item}", b.name);
        assert_eq!(item.get("function").and_then(Json::as_str), Some(b.function), "{}", b.name);
        assert_eq!(
            item.get("verdict").and_then(Json::as_str),
            Some(expected[b.name]),
            "{} verdict drifted from the committed snapshot under chaos",
            b.name
        );
    }
    assert_eq!(router.stats().fleet_unavailable.load(Ordering::SeqCst), 0, "no client 5xx");
    router.stop();
}
