//! Portfolio race robustness: a backend panicking or exhausting mid-race
//! must leave the other racing and the caller answered — never a
//! propagated panic, never an unsound verdict.
//!
//! Fault injection rides the same [`FaultSpec`] machinery the rest of the
//! stack uses (`BLAZER_FAULT` syntax); the race installs one shared ledger
//! for both workers, so a single spec disturbs whichever backend reaches
//! the faulted operation first.

use blazer::core::{Budget, Config, FaultSpec, Verdict};
use blazer::ir::Program;
use blazer::portfolio::{analyze_portfolio, Backend, PortfolioReport};
use std::time::Duration;

/// Genuine secret influence (no fast-path exit); undisturbed verdict:
/// attack.
const LEAKY: &str = "fn f(high: int #high, low: int) {
    if (high == 0) { tick(1); } else {
        let i: int = 0;
        while (i < low) { i = i + 1; }
    }
}";

/// Balanced on both branches; undisturbed verdict: safe.
const BALANCED: &str = "fn g(high: int #high, low: int) {
    let i: int = 0;
    while (i < low) { i = i + 1; }
}";

fn compile(src: &str) -> Program {
    blazer::lang::compile(src).expect("test source compiles")
}

fn race(src: &str, func: &str, budget: Budget) -> PortfolioReport {
    analyze_portfolio(&compile(src), func, &Config::microbench().with_budget(budget))
        .expect("the race answers; worker faults are isolated")
}

#[test]
fn panicking_backend_loses_and_the_race_still_answers() {
    // Panic at the first LP call on the race's shared ledger: whichever
    // backend gets there first crashes; the fault fires at most once per
    // process, so the sibling keeps racing undisturbed.
    let fault = FaultSpec { panic_at_lp: Some(0), ..FaultSpec::default() };
    let report = race(LEAKY, "f", Budget::unlimited().with_fault(fault));
    assert!(
        report.decomp.crashed || report.selfcomp.crashed,
        "the injected panic must have hit one backend: {report:?}"
    );
    // The crash is isolated and attributed, never propagated.
    assert!(!(report.decomp.crashed && report.selfcomp.crashed), "the panic fires once");
    if report.decomp.crashed {
        assert!(report.crash.is_some(), "decomp crash carries its panic message");
        // The baseline kept racing to its own (recorded) conclusion.
        assert!(report.selfcomp_verified.is_some() || !report.selfcomp.completed);
    } else {
        assert!(report.outcome.is_some(), "surviving decomp keeps its outcome");
    }
    // Soundness: a leaky program never becomes Safe, whoever survived.
    assert!(!report.verdict.is_safe(), "unsound verdict: {}", report.verdict);
    if let Some(winner) = report.winner {
        let winner_crashed = match winner {
            Backend::Decomp => report.decomp.crashed,
            Backend::Selfcomp => report.selfcomp.crashed,
            Backend::Portfolio => unreachable!("portfolio is not a racer"),
        };
        assert!(!winner_crashed, "a crashed backend cannot win");
    }
}

#[test]
fn exhausted_ledger_mid_race_is_absorbed_not_propagated() {
    // A ledger too small for either backend: both unwind through the
    // exhaustion path; the race still reports coherently.
    let report = race(LEAKY, "f", Budget::unlimited().with_max_lp_calls(2));
    assert!(!report.verdict.is_safe(), "unsound verdict: {}", report.verdict);
    assert!(!report.decomp.crashed && !report.selfcomp.crashed);
    // An exhausted decomp is not "completed", and the report says why.
    if matches!(report.verdict, Verdict::Unknown(_)) {
        assert!(!report.decomp.completed);
        assert!(report.budget_report.exhausted.is_some(), "{:?}", report.budget_report);
    }
}

#[test]
fn tiny_budget_fuzz_never_panics_and_stays_sound() {
    // Sweep starvation levels across both verdict polarities. Every race
    // must answer (no panic, no error), and no starvation level may flip a
    // verdict to the unsound side: leaky never Safe, balanced never
    // Attack. The deadline is a backstop so an under-starved backend
    // cannot stretch the sweep.
    for cap in [0u64, 1, 2, 3, 5, 8, 13, 21] {
        for (src, func, leaky) in [(LEAKY, "f", true), (BALANCED, "g", false)] {
            let budget =
                Budget::unlimited().with_max_lp_calls(cap).with_deadline(Duration::from_secs(10));
            let report = race(src, func, budget);
            if leaky {
                assert!(
                    !report.verdict.is_safe(),
                    "lp cap {cap}: leaky program verdict {}",
                    report.verdict
                );
            } else {
                assert!(
                    !report.verdict.is_attack(),
                    "lp cap {cap}: balanced program verdict {}",
                    report.verdict
                );
            }
            // Cost attribution stays coherent under every starvation
            // level: the shared ledger's total never runs *behind* a
            // backend's snapshot of it.
            let total = report.budget_report.lp_calls;
            assert!(report.decomp.lp_calls <= total && report.selfcomp.lp_calls <= total);
        }
    }
}
