//! Empirical soundness of the whole pipeline: whenever Blazer says *safe*,
//! no pair of concrete runs with equal low inputs may differ observably —
//! checked by fuzzing the interpreter. This is Theorem 3.1 put to work on
//! the real tool rather than on the abstract framework.

use blazer::core::{Blazer, Config, Verdict};
use blazer::interp::{Interp, SeededOracle, Value};
use blazer::ir::{Program, SecurityLabel, Type};

/// Deterministic input generator.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }

    fn value(&mut self, ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(self.int_in(-5, 24)),
            Type::Bool => Value::Int(self.int_in(0, 1)),
            Type::Array => {
                let n = self.int_in(0, 8) as usize;
                Value::array((0..n).map(|_| self.int_in(0, 3)).collect())
            }
        }
    }
}

/// Fuzz `func`: pairs of runs with equal lows, different highs; returns the
/// maximum observed cost difference.
fn max_low_equal_difference(program: &Program, func: &str, attempts: u32) -> u64 {
    let f = program.function(func).unwrap();
    let interp = Interp::new(program);
    let mut gen = Gen(0xDEC0);
    let mut worst = 0u64;
    for attempt in 0..attempts {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for p in f.params() {
            let ty = f.var(p.var).ty;
            match p.label {
                SecurityLabel::Low => {
                    let v = gen.value(ty);
                    a.push(v.clone());
                    b.push(v);
                }
                SecurityLabel::High => {
                    a.push(gen.value(ty));
                    b.push(gen.value(ty));
                }
            }
        }
        // The extern environment is part of the low world for this check —
        // same oracle seed for both runs — except high-labeled extern
        // results, which SeededOracle varies only via the arguments; to
        // keep the check conservative we use the same seed (secret extern
        // results equal), which under-approximates attacker knowledge and
        // is exactly what "equal low inputs" permits.
        let seed = u64::from(attempt);
        let (Ok(ta), Ok(tb)) = (
            interp.run(func, &a, &mut SeededOracle::new(seed)),
            interp.run(func, &b, &mut SeededOracle::new(seed)),
        ) else {
            continue;
        };
        worst = worst.max(ta.cost.abs_diff(tb.cost));
    }
    worst
}

#[test]
fn safe_verdicts_have_no_observable_fuzzed_leak() {
    // MicroBench-safe programs whose balance is *semantic* (not just
    // narrow under the observer model): cost difference ≤ epsilon (32)
    // for equal lows. Fuzzing must not find a counterexample.
    for name in ["array_safe", "nosecret_safe", "sanity_safe", "straightline_safe"] {
        let b = blazer::benchmarks::by_name(name).unwrap();
        let p = b.compile();
        let outcome = Blazer::new(Config::microbench()).analyze(&p, b.function).unwrap();
        assert!(outcome.verdict.is_safe(), "{name} should verify");
        let worst = max_low_equal_difference(&p, b.function, 300);
        assert!(worst <= 32, "{name}: verified safe but fuzzing found difference {worst}");
    }
}

/// Faithful reproduction of a known subtlety: `loopBranch_safe` verifies
/// under the paper's narrowness criterion (its running time is a *tight*
/// function of the secret, so the range width is zero) — yet the time does
/// depend on the secret, as Themis (CCS 2017) later pointed out about the
/// original Blazer's verdict. Our tool reproduces the paper's verdict, and
/// this test documents that the concrete leak exists.
#[test]
fn loop_branch_safe_reproduces_the_papers_optimistic_verdict() {
    let b = blazer::benchmarks::by_name("loopBranch_safe").unwrap();
    let p = b.compile();
    let outcome = Blazer::new(Config::microbench()).analyze(&p, b.function).unwrap();
    assert!(outcome.verdict.is_safe(), "the paper's verdict is `safe`");
    let worst = max_low_equal_difference(&p, b.function, 300);
    assert!(worst > 32, "expected the (paper-sanctioned) concrete leak to be visible to fuzzing");
}

#[test]
fn attack_verdicts_are_confirmed_by_fuzzing() {
    for name in ["sanity_unsafe", "notaint_unsafe", "array_unsafe", "straightline_unsafe"] {
        let b = blazer::benchmarks::by_name(name).unwrap();
        let p = b.compile();
        let outcome = Blazer::new(Config::microbench()).analyze(&p, b.function).unwrap();
        assert!(matches!(outcome.verdict, Verdict::Attack(_)), "{name}");
        let worst = max_low_equal_difference(&p, b.function, 300);
        assert!(worst > 32, "{name}: attack claimed but fuzzing maxed at {worst}");
    }
}

#[test]
fn stac_safe_claims_hold_within_threshold() {
    // The threshold observer allows up to 25k units of low-equal variation
    // at 4096-sized inputs; at our small fuzz sizes the slack is smaller
    // but still bounded by (per-iteration imbalance)·(input size) ≈ 100.
    // Note `modPow1_safe` is excluded: its iteration count is the secret
    // exponent's bit LENGTH, which the paper's model fixes at 4096 bits —
    // fuzzing with varying lengths shows the (model-external) length leak.
    // `fixed_size_secrets_make_modpow1_constant_time` covers it.
    #[allow(clippy::single_element_loop)] // list shape invites re-adding entries
    for name in ["pwdEqual_safe"] {
        let b = blazer::benchmarks::by_name(name).unwrap();
        let p = b.compile();
        let outcome = Blazer::new(Config::stac()).analyze(&p, b.function).unwrap();
        assert!(outcome.verdict.is_safe(), "{name}");
        let worst = max_low_equal_difference(&p, b.function, 300);
        assert!(worst <= 100, "{name}: unexpected fuzzed difference {worst}");
    }
}

/// Under the paper's fixed-operand-size assumption (all exponents 4096
/// bits; here 16 for speed), multiply-always modPow is genuinely constant
/// time: every equal-length secret gives the same cost.
#[test]
fn fixed_size_secrets_make_modpow1_constant_time() {
    use blazer::interp::{Interp, SeededOracle, Value};
    let b = blazer::benchmarks::by_name("modPow1_safe").unwrap();
    let p = b.compile();
    let interp = Interp::new(&p);
    let mut costs = std::collections::BTreeSet::new();
    for pattern in 0u32..32 {
        let bits: Vec<i64> = (0..16).map(|i| i64::from(pattern >> (i % 5) & 1)).collect();
        let t = interp
            .run(
                "modPow1_safe",
                &[Value::Int(3), Value::array(bits), Value::Int(1009)],
                &mut SeededOracle::new(0),
            )
            .unwrap();
        costs.insert(t.cost);
    }
    assert_eq!(costs.len(), 1, "multiply-always must cost the same: {costs:?}");
}
