//! Deterministic fault injection ([`FaultSpec`]): every layer of the stack
//! absorbs its failure mode as a sound degradation instead of crashing —
//! rational overflow in the domains, LP-call denial in simplex, fixpoint
//! starvation in the engine, refinement starvation and dead deadlines in
//! the driver.

use blazer::core::{Blazer, Budget, Config, FaultSpec, Resource, UnknownReason, Verdict};
use std::sync::Mutex;
use std::time::Duration;

/// `Budget::install` reads `BLAZER_FAULT`, and one test below sets it:
/// serialize every test in this binary so the env mutation cannot leak
/// into a concurrently installing budget.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A program with genuine secret influence (no fast-path exit) whose
/// undisturbed verdict is an attack.
const LEAKY: &str = "fn f(high: int #high, low: int) {
    if (high == 0) { tick(1); } else {
        let i: int = 0;
        while (i < low) { i = i + 1; }
    }
}";

fn analyze_with(budget: Budget) -> blazer::core::AnalysisOutcome {
    let program = blazer::lang::compile(LEAKY).unwrap();
    Blazer::new(Config::microbench().with_budget(budget))
        .analyze(&program, "f")
        .expect("analysis returns a verdict, never panics")
}

#[test]
fn overflow_fault_is_absorbed_as_precision_loss() {
    let _env = env_guard();
    let fault = FaultSpec { overflow: Some(0), ..FaultSpec::default() };
    let out = analyze_with(Budget::unlimited().with_fault(fault));
    assert!(
        out.budget_report.overflow_events > 0,
        "the always-on overflow fault must have been absorbed somewhere"
    );
    // Soundness: with every rational operation degraded the analysis may
    // not conclude anything — but it must never claim Safe for a leaky
    // program.
    assert!(!out.verdict.is_safe(), "unsound verdict: {}", out.verdict);
}

#[test]
fn lp_call_fault_degrades_down_the_domain_ladder() {
    let _env = env_guard();
    let fault = FaultSpec { lp_call: Some(0), ..FaultSpec::default() };
    let out = analyze_with(Budget::unlimited().with_fault(fault));
    // Every LP call is denied, so the first trail exhausts the budget and
    // the driver's rescue-and-retry ladder must have engaged.
    assert!(
        !out.degradations.is_empty(),
        "expected domain fallbacks, report: {:?}",
        out.budget_report
    );
    assert!(!out.verdict.is_safe(), "unsound verdict: {}", out.verdict);
}

#[test]
fn dead_deadline_yields_budget_unknown() {
    let _env = env_guard();
    let fault = FaultSpec { deadline: Some(Duration::ZERO), ..FaultSpec::default() };
    let out = analyze_with(Budget::unlimited().with_fault(fault));
    assert!(
        matches!(
            out.verdict,
            Verdict::Unknown(UnknownReason::BudgetExhausted(Resource::WallClock))
        ),
        "verdict: {}",
        out.verdict
    );
    assert_eq!(out.budget_report.exhausted, Some(Resource::WallClock));
}

#[test]
fn fixpoint_pass_cap_widens_to_top_instead_of_diverging() {
    let _env = env_guard();
    let out = analyze_with(Budget::unlimited().with_max_fixpoint_passes(1));
    assert!(out.budget_report.fixpoint_passes >= 1);
    assert!(!out.verdict.is_safe(), "unsound verdict: {}", out.verdict);
    assert!(
        matches!(out.verdict, Verdict::Unknown(UnknownReason::BudgetExhausted(_))),
        "verdict: {}",
        out.verdict
    );
}

#[test]
fn refinement_step_cap_stops_the_driver() {
    let _env = env_guard();
    let out = analyze_with(Budget::unlimited().with_max_refinement_steps(1));
    assert!(
        matches!(
            out.verdict,
            Verdict::Unknown(UnknownReason::BudgetExhausted(Resource::RefinementSteps))
        ),
        "verdict: {}",
        out.verdict
    );
}

#[test]
fn automata_phase_cooperates_with_an_exhausted_budget() {
    let _env = env_guard();
    use blazer::automata::{antichain, kleene, ops, Dfa, Nfa, Regex};
    // Every automata-phase entry point the driver exercises — subset
    // construction, eager products, state elimination, and the antichain
    // search — must poll the installed budget and surface exhaustion as an
    // `Err` instead of completing (or diverging) under a dead deadline.
    let r = Regex::symbol(0).star().then(Regex::symbol(1));
    let a = Dfa::from_regex(&r, 2);
    let b = Dfa::from_regex(&Regex::symbol(1).star(), 2);
    let nfa = Nfa::from_regex(&r, 2);
    let _dead = Budget::unlimited().with_deadline(Duration::ZERO).install();
    assert!(Dfa::try_from_regex(&r, 2).is_err(), "subset construction ignored the deadline");
    assert!(ops::try_intersection(&a, &b).is_err(), "eager product ignored the deadline");
    assert!(kleene::try_dfa_to_regex(&a).is_err(), "state elimination ignored the deadline");
    assert!(ops::try_included(&a, &b).is_err(), "antichain inclusion ignored the deadline");
    assert!(antichain::nfa_is_empty(&nfa).is_err(), "antichain emptiness ignored the deadline");
}

#[test]
fn dead_deadline_is_sound_in_both_automata_engine_modes() {
    let _env = env_guard();
    // End to end: with the whole analysis under a dead deadline, both
    // automata engines (antichain default and `BLAZER_AUTOMATA=classic`)
    // absorb the exhaustion identically — a budget-Unknown verdict, never
    // a panic and never Safe for the leaky program.
    for mode in [None, Some("classic")] {
        match mode {
            Some(m) => std::env::set_var("BLAZER_AUTOMATA", m),
            None => std::env::remove_var("BLAZER_AUTOMATA"),
        }
        let fault = FaultSpec { deadline: Some(Duration::ZERO), ..FaultSpec::default() };
        let out = analyze_with(Budget::unlimited().with_fault(fault));
        std::env::remove_var("BLAZER_AUTOMATA");
        assert!(
            matches!(
                out.verdict,
                Verdict::Unknown(UnknownReason::BudgetExhausted(Resource::WallClock))
            ),
            "mode {mode:?}: verdict: {}",
            out.verdict
        );
        assert_eq!(out.budget_report.exhausted, Some(Resource::WallClock));
    }
}

#[test]
fn unlimited_budget_is_the_undisturbed_attack_verdict() {
    let _env = env_guard();
    // Control: the same program without faults still finds its attack, and
    // reports no degradations.
    let out = analyze_with(Budget::unlimited());
    assert!(out.verdict.is_attack(), "verdict: {}", out.verdict);
    assert!(out.degradations.is_empty());
    assert_eq!(out.budget_report.exhausted, None);
    assert_eq!(out.budget_report.overflow_events, 0);
}

#[test]
fn env_fault_spec_is_honored_at_install_time() {
    let _env = env_guard();
    // BLAZER_FAULT merges into the installed budget. Use a deadline fault:
    // deterministic and cheap. Env vars are process-global, so scope it
    // tightly and restore.
    std::env::set_var("BLAZER_FAULT", "deadline:0");
    let out = analyze_with(Budget::unlimited());
    std::env::remove_var("BLAZER_FAULT");
    assert!(
        matches!(
            out.verdict,
            Verdict::Unknown(UnknownReason::BudgetExhausted(Resource::WallClock))
        ),
        "verdict: {}",
        out.verdict
    );
}
