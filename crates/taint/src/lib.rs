//! # blazer-taint
//!
//! Information-flow (taint) analysis for the Blazer reproduction.
//!
//! The original tool "used the information flow (taint) analysis JOANA in
//! order to annotate blocks as to whether branching depends on low (taint) or
//! high (secret) variables" (Sec. 5). This crate computes exactly that
//! judgment on the `blazer-ir` CFG:
//!
//! * a flow-sensitive forward dataflow tracks, per variable, whether its
//!   value is influenced by `low` (attacker-controlled) and/or `high`
//!   (secret) inputs — *explicit flows*;
//! * assignments under tainted branches inherit the branch taint via
//!   control dependence (post-dominance frontiers) — *implicit flows*;
//! * arrays track three components separately: element contents, length,
//!   and nullness. Nullness comes from the *arguments* of the call that
//!   produced the array (a database lookup's success is determined by the
//!   key), while content/length come from the declared return label — this
//!   reproduces the paper's footnote 4 treatment of `loginSafe`.
//!
//! The result is a [`TaintReport`]: for every branching block, whether its
//! condition is low-dependent, high-dependent, both, or neither. That report
//! is what drives trail annotation (Sec. 4.2) in `blazer-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod lattice;

pub use analysis::{analyze_function, TaintReport};
pub use lattice::{Taint, VarTaint};
