//! The taint lattice.

use blazer_ir::SecurityLabel;
use std::fmt;
use std::ops::BitOr;

/// A point in the taint lattice: which classes of input influence a value.
///
/// The lattice is the powerset of `{low, high}` ordered by inclusion;
/// [`Taint::join`] (also available as `|`) is set union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Taint {
    /// Influenced by attacker-controlled (public, tainted) input.
    pub low: bool,
    /// Influenced by secret input.
    pub high: bool,
}

impl Taint {
    /// No influence from any input.
    pub const NONE: Taint = Taint { low: false, high: false };
    /// Influenced by low input only.
    pub const LOW: Taint = Taint { low: true, high: false };
    /// Influenced by high input only.
    pub const HIGH: Taint = Taint { low: false, high: true };
    /// Influenced by both.
    pub const BOTH: Taint = Taint { low: true, high: true };

    /// The taint of an input with the given label.
    pub fn of_label(label: SecurityLabel) -> Taint {
        match label {
            SecurityLabel::Low => Taint::LOW,
            SecurityLabel::High => Taint::HIGH,
        }
    }

    /// Least upper bound (set union).
    pub fn join(self, other: Taint) -> Taint {
        Taint { low: self.low || other.low, high: self.high || other.high }
    }

    /// Whether this is exactly low-dependent and not high-dependent — the
    /// condition under which the safe-mode `RefinePartition` may split
    /// ("partitioning is only permitted on low data", Sec. 2.3).
    pub fn is_low_only(self) -> bool {
        self.low && !self.high
    }

    /// Whether the value depends on secret input at all.
    pub fn is_high(self) -> bool {
        self.high
    }

    /// Whether the value depends on no input at all.
    pub fn is_none(self) -> bool {
        !self.low && !self.high
    }
}

impl BitOr for Taint {
    type Output = Taint;
    fn bitor(self, rhs: Taint) -> Taint {
        self.join(rhs)
    }
}

impl fmt::Display for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.low, self.high) {
            (false, false) => f.write_str("-"),
            (true, false) => f.write_str("l"),
            (false, true) => f.write_str("h"),
            (true, true) => f.write_str("l,h"),
        }
    }
}

/// Per-variable taint: scalars use only `val`; arrays additionally track the
/// taints of their length and of their nullness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VarTaint {
    /// Taint of the value (array element contents for arrays).
    pub val: Taint,
    /// Taint of the array length (unused for scalars).
    pub len: Taint,
    /// Taint of whether the array is null (unused for scalars).
    pub null: Taint,
}

impl VarTaint {
    /// All components untainted.
    pub const NONE: VarTaint = VarTaint { val: Taint::NONE, len: Taint::NONE, null: Taint::NONE };

    /// A scalar with the given value taint.
    pub fn scalar(val: Taint) -> VarTaint {
        VarTaint { val, ..VarTaint::NONE }
    }

    /// All components set to `t` (used for array parameters).
    pub fn uniform(t: Taint) -> VarTaint {
        VarTaint { val: t, len: t, null: t }
    }

    /// Component-wise join.
    pub fn join(self, other: VarTaint) -> VarTaint {
        VarTaint {
            val: self.val | other.val,
            len: self.len | other.len,
            null: self.null | other.null,
        }
    }

    /// Join of all components (how much "anything about this variable"
    /// reveals).
    pub fn any(self) -> Taint {
        self.val | self.len | self.null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_laws() {
        let all = [Taint::NONE, Taint::LOW, Taint::HIGH, Taint::BOTH];
        for &a in &all {
            assert_eq!(a | a, a, "idempotent");
            assert_eq!(a | Taint::NONE, a, "unit");
            assert_eq!(a | Taint::BOTH, Taint::BOTH, "absorbing");
            for &b in &all {
                assert_eq!(a | b, b | a, "commutative");
                for &c in &all {
                    assert_eq!((a | b) | c, a | (b | c), "associative");
                }
            }
        }
    }

    #[test]
    fn predicates() {
        assert!(Taint::LOW.is_low_only());
        assert!(!Taint::BOTH.is_low_only());
        assert!(!Taint::NONE.is_low_only());
        assert!(Taint::HIGH.is_high());
        assert!(Taint::BOTH.is_high());
        assert!(Taint::NONE.is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(Taint::of_label(SecurityLabel::Low), Taint::LOW);
        assert_eq!(Taint::of_label(SecurityLabel::High), Taint::HIGH);
    }

    #[test]
    fn var_taint_components_joined_independently() {
        let a = VarTaint { val: Taint::HIGH, len: Taint::NONE, null: Taint::LOW };
        let b = VarTaint { val: Taint::NONE, len: Taint::LOW, null: Taint::NONE };
        let j = a.join(b);
        assert_eq!(j.val, Taint::HIGH);
        assert_eq!(j.len, Taint::LOW);
        assert_eq!(j.null, Taint::LOW);
        assert_eq!(j.any(), Taint::BOTH);
    }

    #[test]
    fn display() {
        assert_eq!(Taint::NONE.to_string(), "-");
        assert_eq!(Taint::LOW.to_string(), "l");
        assert_eq!(Taint::HIGH.to_string(), "h");
        assert_eq!(Taint::BOTH.to_string(), "l,h");
    }
}
