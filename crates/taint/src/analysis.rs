//! The flow-sensitive taint analysis with implicit flows.

use crate::lattice::{Taint, VarTaint};
use blazer_ir::dominators::DomTree;
use blazer_ir::{BlockId, Cfg, Cond, Expr, Function, Inst, NodeId, Operand, Program, Type};
use std::collections::BTreeMap;

/// The result of taint analysis on one function.
#[derive(Debug, Clone)]
pub struct TaintReport {
    /// For each branching block, the taint of its branch condition.
    branch_taint: BTreeMap<BlockId, Taint>,
    /// Variable taints at block *exit* (after the block's instructions).
    exit_taints: Vec<Vec<VarTaint>>,
}

impl TaintReport {
    /// The taint of the branch condition of `block`, if it branches.
    pub fn branch_taint(&self, block: BlockId) -> Option<Taint> {
        self.branch_taint.get(&block).copied()
    }

    /// All branching blocks with their condition taints.
    pub fn branches(&self) -> impl Iterator<Item = (BlockId, Taint)> + '_ {
        self.branch_taint.iter().map(|(&b, &t)| (b, t))
    }

    /// The taint of `var` after `block` executes.
    pub fn var_taint_at_exit(&self, block: BlockId, var: blazer_ir::VarId) -> VarTaint {
        self.exit_taints[block.index()][var.index()]
    }

    /// Whether any branch in the function is high-dependent.
    pub fn any_high_branch(&self) -> bool {
        self.branch_taint.values().any(|t| t.is_high())
    }
}

/// Runs the taint analysis on `f` (which must live inside `program` so that
/// extern declarations resolve).
pub fn analyze_function(program: &Program, f: &Function) -> TaintReport {
    let cfg = Cfg::new(f);
    let n_vars = f.vars().len();
    let n_blocks = f.blocks().len();

    // Control dependence via post-dominators: for branch edge A→s, the nodes
    // on the pdom-tree path s ..< ipdom(A) are control-dependent on A.
    let pdom = DomTree::post_dominators(&cfg);
    let control_deps = control_dependence(f, &cfg, &pdom);

    // Entry taints: parameters get their label (arrays uniformly).
    let mut entry0 = vec![VarTaint::NONE; n_vars];
    for p in f.params() {
        let t = Taint::of_label(p.label);
        entry0[p.var.index()] =
            if f.var(p.var).ty == Type::Array { VarTaint::uniform(t) } else { VarTaint::scalar(t) };
    }

    // Outer fixpoint: branch-condition taints feed implicit-flow contexts,
    // which feed the dataflow, which feeds the condition taints. Both maps
    // grow monotonically in the taint lattice, so this terminates.
    let mut ctx: Vec<Taint> = vec![Taint::NONE; n_blocks];
    let mut exit_taints: Vec<Vec<VarTaint>> = vec![vec![VarTaint::NONE; n_vars]; n_blocks];
    let mut branch_taint: BTreeMap<BlockId, Taint> = BTreeMap::new();
    loop {
        // Inner fixpoint: forward dataflow over the CFG.
        let mut entry: Vec<Option<Vec<VarTaint>>> = vec![None; n_blocks];
        entry[f.entry().index()] = Some(entry0.clone());
        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &rpo {
                let Some(bid) = node.as_block(n_blocks) else { continue };
                let Some(state) = entry[bid.index()].clone() else { continue };
                let out = transfer_block(program, f, bid, &state, ctx[bid.index()]);
                if exit_taints[bid.index()] != out {
                    exit_taints[bid.index()] = out.clone();
                    changed = true;
                }
                for succ in cfg.succs(NodeId::block(bid)) {
                    let Some(sb) = succ.as_block(n_blocks) else { continue };
                    let merged = match &entry[sb.index()] {
                        None => out.clone(),
                        Some(prev) => prev.iter().zip(&out).map(|(a, b)| a.join(*b)).collect(),
                    };
                    if entry[sb.index()].as_ref() != Some(&merged) {
                        entry[sb.index()] = Some(merged);
                        changed = true;
                    }
                }
            }
        }

        // Recompute branch taints and contexts.
        let mut new_branch = BTreeMap::new();
        for (bid, block) in f.iter_blocks() {
            if let blazer_ir::Terminator::Branch { cond, .. } = &block.term {
                let t = cond_taint(cond, &exit_taints[bid.index()]);
                new_branch.insert(bid, t);
            }
        }
        let mut new_ctx = vec![Taint::NONE; n_blocks];
        for (bid, deps) in control_deps.iter().enumerate() {
            for dep in deps {
                if let Some(&t) = new_branch.get(dep) {
                    new_ctx[bid] = new_ctx[bid] | t;
                }
            }
        }
        if new_branch == branch_taint && new_ctx == ctx {
            break;
        }
        branch_taint = new_branch;
        ctx = new_ctx;
    }

    TaintReport { branch_taint, exit_taints }
}

/// `control_deps[b]` = branch blocks that decide whether block `b` runs.
fn control_dependence(f: &Function, cfg: &Cfg, pdom: &DomTree) -> Vec<Vec<BlockId>> {
    let n_blocks = f.blocks().len();
    let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); n_blocks];
    for (bid, block) in f.iter_blocks() {
        if !block.term.is_branch() {
            continue;
        }
        let a = NodeId::block(bid);
        let stop = pdom.idom(a);
        for &succ in cfg.succs(a) {
            // Walk the post-dominator tree from succ up to ipdom(A).
            let mut cur = Some(succ);
            while let Some(n) = cur {
                if Some(n) == stop {
                    break;
                }
                if let Some(nb) = n.as_block(n_blocks) {
                    if !deps[nb.index()].contains(&bid) {
                        deps[nb.index()].push(bid);
                    }
                }
                let next = pdom.idom(n);
                if next == Some(n) {
                    break;
                }
                cur = next;
            }
        }
    }
    deps
}

fn operand_taint(op: &Operand, state: &[VarTaint]) -> Taint {
    match op {
        Operand::Const(_) => Taint::NONE,
        Operand::Var(v) => state[v.index()].val,
    }
}

fn cond_taint(cond: &Cond, state: &[VarTaint]) -> Taint {
    match cond {
        Cond::Cmp(_, a, b) => operand_taint(a, state) | operand_taint(b, state),
        Cond::Null { arr, .. } => state[arr.index()].null,
        Cond::Nondet => Taint::NONE,
    }
}

fn transfer_block(
    program: &Program,
    f: &Function,
    bid: BlockId,
    entry: &[VarTaint],
    ctx: Taint,
) -> Vec<VarTaint> {
    let mut state = entry.to_vec();
    for inst in &f.block(bid).insts {
        match inst {
            Inst::Assign { dst, expr } => {
                let mut t = expr_taint(expr, &state);
                // Implicit flow: anything written under a tainted branch
                // reveals that branch.
                t.val = t.val | ctx;
                t.len = t.len | ctx;
                t.null = t.null | ctx;
                state[dst.index()] = t;
            }
            Inst::ArraySet { arr, index, value } => {
                let add = operand_taint(index, &state) | operand_taint(value, &state) | ctx;
                let cur = &mut state[arr.index()];
                cur.val = cur.val | add;
            }
            Inst::Call { dst, callee, args, .. } => {
                if let Some(dst) = dst {
                    let args_taint = args
                        .iter()
                        .map(|a| match a {
                            Operand::Const(_) => Taint::NONE,
                            Operand::Var(v) => state[v.index()].any(),
                        })
                        .fold(Taint::NONE, Taint::join);
                    let decl = program
                        .extern_decl(callee)
                        .unwrap_or_else(|| panic!("undeclared extern `{callee}`"));
                    let label_taint = Taint::of_label(decl.ret_label);
                    let t = if decl.ret == Some(Type::Array) {
                        VarTaint {
                            val: args_taint | label_taint | ctx,
                            len: args_taint | label_taint | ctx,
                            // Nullness is decided by the lookup arguments,
                            // not by the secret contents (footnote 4).
                            null: args_taint | ctx,
                        }
                    } else {
                        VarTaint::scalar(args_taint | label_taint | ctx)
                    };
                    state[dst.index()] = t;
                }
            }
            Inst::Havoc { dst } => {
                state[dst.index()] = VarTaint::scalar(ctx);
            }
            Inst::Nop | Inst::Tick(_) => {}
        }
    }
    state
}

fn expr_taint(expr: &Expr, state: &[VarTaint]) -> VarTaint {
    match expr {
        Expr::Operand(Operand::Const(_)) => VarTaint::NONE,
        // A copy propagates all components (array aliasing).
        Expr::Operand(Operand::Var(v)) => state[v.index()],
        Expr::Unary(_, a) => VarTaint::scalar(operand_taint(a, state)),
        Expr::Binary(_, a, b) => {
            VarTaint::scalar(operand_taint(a, state) | operand_taint(b, state))
        }
        // Length of a possibly-null array also reveals nullness (-1).
        Expr::ArrayLen(v) => VarTaint::scalar(state[v.index()].len | state[v.index()].null),
        Expr::ArrayGet(v, i) => VarTaint::scalar(state[v.index()].val | operand_taint(i, state)),
        Expr::ArrayNew(n) => {
            VarTaint { val: Taint::NONE, len: operand_taint(n, state), null: Taint::NONE }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    fn report(src: &str, func: &str) -> (Program, TaintReport) {
        let p = compile(src).expect("benchmark source compiles");
        let r = analyze_function(&p, p.function(func).unwrap());
        (p, r)
    }

    /// Branch taints of `func`, as a sorted list of strings for easy asserts.
    fn branch_taints(src: &str, func: &str) -> Vec<String> {
        let (_, r) = report(src, func);
        r.branches().map(|(_, t)| t.to_string()).collect()
    }

    #[test]
    fn explicit_flow_low() {
        let ts = branch_taints("fn f(low: int) { if (low > 0) { tick(1); } }", "f");
        assert_eq!(ts, vec!["l"]);
    }

    #[test]
    fn explicit_flow_high() {
        let ts = branch_taints("fn f(h: int #high) { if (h > 0) { tick(1); } }", "f");
        assert_eq!(ts, vec!["h"]);
    }

    #[test]
    fn mixed_condition() {
        let ts = branch_taints("fn f(h: int #high, l: int) { if (h > l) { tick(1); } }", "f");
        assert_eq!(ts, vec!["l,h"]);
    }

    #[test]
    fn derived_value_carries_taint() {
        let ts = branch_taints(
            "fn f(h: int #high) { let x: int = h * 2 + 1; if (x == 3) { tick(1); } }",
            "f",
        );
        assert_eq!(ts, vec!["h"]);
    }

    #[test]
    fn untainted_branch() {
        let ts =
            branch_taints("fn f(h: int #high) { let c: int = 5; if (c > 3) { tick(1); } }", "f");
        assert_eq!(ts, vec!["-"]);
    }

    #[test]
    fn implicit_flow_through_assignment() {
        // x is assigned under a high branch, so branching on x later is
        // high-dependent even though x's value comes from constants.
        let src = "fn f(h: int #high) { \
            let x: int = 0; \
            if (h > 0) { x = 1; } else { x = 2; } \
            if (x == 1) { tick(1); } \
        }";
        let ts = branch_taints(src, "f");
        assert_eq!(ts, vec!["h", "h"]);
    }

    #[test]
    fn loop_body_taint_reaches_fixpoint() {
        // i accumulates high taint through the loop-carried dependency.
        let src = "fn f(h: int #high, n: int) { \
            let i: int = 0; \
            while (i < n) { i = i + h; } \
        }";
        let (p, r) = report(src, "f");
        let f = p.function("f").unwrap();
        let (head, _) = f.iter_blocks().find(|(_, b)| b.term.is_branch()).expect("loop head");
        assert_eq!(r.branch_taint(head).unwrap(), Taint::BOTH);
    }

    #[test]
    fn array_content_vs_length_vs_null() {
        let src = "extern fn retrievePassword(u: array) -> array #high cost 30 len -1..64;\n\
            fn f(username: array, guess: array) -> bool { \
                let pw: array = retrievePassword(username); \
                if (pw == null) { return false; } \
                let i: int = 0; \
                let ok: bool = true; \
                while (i < len(guess)) { \
                    if (i < len(pw)) { \
                        if (guess[i] != pw[i]) { ok = false; } \
                    } \
                    i = i + 1; \
                } \
                return ok; \
            }";
        let (p, r) = report(src, "f");
        let f = p.function("f").unwrap();
        let mut found_null = false;
        let mut found_len_pw = false;
        let mut found_content = false;
        let mut found_guess_len = false;
        for (bid, block) in f.iter_blocks() {
            let blazer_ir::Terminator::Branch { cond, .. } = &block.term else { continue };
            let t = r.branch_taint(bid).unwrap();
            match cond {
                // `pw == null`: depends on the (low) username only.
                Cond::Null { .. } => {
                    found_null = true;
                    assert!(t.is_low_only(), "null test should be low-only, got {t}");
                }
                _ => {
                    let s = format!("{cond}");
                    // Distinguish by which temps feed the comparison: the
                    // loop guard uses len(guess) (low); the inner guard uses
                    // len(pw) (high+null-low); the element compare is high.
                    if t == Taint::LOW {
                        found_guess_len = true;
                    } else if t.is_high() {
                        // Either len(pw) bound check or content compare.
                        if s.contains("!=") || s.contains("==") {
                            found_content = true;
                        } else {
                            found_len_pw = true;
                        }
                    }
                }
            }
        }
        assert!(found_null, "null branch present");
        assert!(found_guess_len, "guess-length loop guard is low");
        assert!(found_len_pw, "pw-length check is high");
        assert!(found_content, "content compare is high");
    }

    #[test]
    fn extern_low_result_stays_low() {
        let src = "extern fn md5(p: array) -> array cost 500 len 16..16;\n\
            fn f(p: array) { let h: array = md5(p); if (len(h) > 0) { tick(1); } }";
        let ts = branch_taints(src, "f");
        assert_eq!(ts, vec!["l"]);
    }

    #[test]
    fn havoc_is_untainted() {
        let ts = branch_taints(
            "fn f(h: int #high) { let x: int = havoc(); if (x > 0) { tick(1); } }",
            "f",
        );
        assert_eq!(ts, vec!["-"]);
    }

    #[test]
    fn array_store_taints_content() {
        let src = "fn f(h: int #high, a: array) { \
            a[0] = h; \
            if (a[0] > 0) { tick(1); } \
        }";
        let ts = branch_taints(src, "f");
        assert_eq!(ts, vec!["l,h"]); // low array content joined with high store
    }

    #[test]
    fn no_secret_means_no_high_branches() {
        let src = "fn f(l: int) { let i: int = 0; while (i < l) { i = i + 1; } }";
        let (_, r) = report(src, "f");
        assert!(!r.any_high_branch());
    }

    #[test]
    fn for_loop_counters_follow_bound_taint() {
        let src = "fn f(h: int #high, l: int) {             for (let i: int = 0; i < l; i = i + 1) { tick(1); }             for (let j: int = 0; j < h; j = j + 1) { tick(1); }         }";
        let (_, r) = report(src, "f");
        let taints: Vec<String> = r.branches().map(|(_, t)| t.to_string()).collect();
        assert_eq!(taints, vec!["l", "h"]);
    }

    #[test]
    fn inlined_callee_propagates_caller_taint() {
        // The helper has low-labeled params of its own, but inlining feeds
        // it the caller's secret: the loop guard must be high.
        let src = "fn spin(n: int) {                 let i: int = 0;                 while (i < n) { i = i + 1; }             }             fn f(h: int #high) { spin(h); }";
        let (_, r) = report(src, "f");
        assert!(r.any_high_branch());
    }

    #[test]
    fn division_and_shifts_propagate_taint() {
        let src = "fn f(h: int #high) {             let a: int = h / 2;             let b: int = a >> 1;             if (b == 0) { tick(1); }         }";
        let ts = branch_taints(src, "f");
        assert_eq!(ts, vec!["h"]);
    }

    #[test]
    fn var_taint_at_exit_query() {
        let src = "fn f(h: int #high) { let x: int = h; }";
        let (p, r) = report(src, "f");
        let f = p.function("f").unwrap();
        let x = f.var_by_name("x").unwrap();
        assert_eq!(r.var_taint_at_exit(f.entry(), x).val, Taint::HIGH);
    }
}
