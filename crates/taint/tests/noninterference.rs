//! Empirical soundness of the taint analysis: if the analysis says a
//! variable's value is *not* influenced by high inputs, then concretely
//! re-running with different high inputs (lows fixed) must leave that
//! variable's final value unchanged. This is the noninterference guarantee
//! the trail annotation relies on.

use blazer_interp::{Interp, SeededOracle, Value};
use blazer_ir::{Program, SecurityLabel, Terminator, Type};
use blazer_lang::compile;
use blazer_taint::analyze_function;

/// Runs `func` with the interpreter and returns the value of `var` at the
/// *last executed block's* exit — approximated by instrumenting through a
/// return of the variable. For simplicity the test programs all end with
/// `return <var>;`.
fn final_value(program: &Program, func: &str, inputs: &[Value], seed: u64) -> Option<i64> {
    let t = Interp::new(program).run(func, inputs, &mut SeededOracle::new(seed)).ok()?;
    t.ret.and_then(|v| v.as_int())
}

/// For a program whose function returns an int variable, check: if the
/// returned variable is untainted-by-high at every return block, then
/// varying highs (lows fixed) never changes the result.
fn check_noninterference(src: &str, func: &str, runs: u32) {
    let program = compile(src).expect("compiles");
    let f = program.function(func).unwrap();
    let report = analyze_function(&program, f);

    // Find the returned variable and its taint at each return block.
    let mut high_free = true;
    for (bid, block) in f.iter_blocks() {
        if let Terminator::Return(Some(op)) = &block.term {
            if let Some(v) = op.as_var() {
                if report.var_taint_at_exit(bid, v).any().is_high() {
                    high_free = false;
                }
            }
        }
    }
    if !high_free {
        return; // nothing claimed, nothing to check
    }

    // Fuzz: fixed lows, varying highs.
    let mk = |seed: u64, flip: bool| -> Vec<Value> {
        let mut vals = Vec::new();
        for (i, p) in f.params().iter().enumerate() {
            let ty = f.var(p.var).ty;
            let base = (seed as i64).wrapping_mul(7).wrapping_add(i as i64 * 3) % 17;
            let v = match (p.label, flip) {
                (SecurityLabel::Low, _) => base,
                (SecurityLabel::High, false) => base + 1,
                (SecurityLabel::High, true) => base.wrapping_mul(-3) + 11,
            };
            vals.push(match ty {
                Type::Int => Value::Int(v),
                Type::Bool => Value::Int(v.rem_euclid(2)),
                Type::Array => {
                    Value::array((0..v.rem_euclid(6)).map(|k| k * 2 + i as i64).collect())
                }
            });
        }
        vals
    };
    for seed in 0..runs as u64 {
        let a = final_value(&program, func, &mk(seed, false), seed);
        let b = final_value(&program, func, &mk(seed, true), seed);
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(
                a, b,
                "{func}: analysis claims high-independence but result differs (seed {seed})"
            );
        }
    }
}

#[test]
fn low_only_computations() {
    check_noninterference(
        "fn f(h: int #high, l: int) -> int { \
            let x: int = l * 3 + 1; \
            let y: int = x - l; \
            return y; \
        }",
        "f",
        40,
    );
}

#[test]
fn high_assignment_is_flagged_not_checked() {
    // The returned var IS high-tainted: the checker must notice and skip
    // (this test documents that the claim-detection side works).
    let program = compile("fn f(h: int #high) -> int { let x: int = h + 1; return x; }").unwrap();
    let f = program.function("f").unwrap();
    let report = analyze_function(&program, f);
    let (bid, block) =
        f.iter_blocks().find(|(_, b)| matches!(b.term, Terminator::Return(Some(_)))).unwrap();
    let Terminator::Return(Some(op)) = &block.term else { unreachable!() };
    assert!(report.var_taint_at_exit(bid, op.as_var().unwrap()).any().is_high());
}

#[test]
fn branch_merges_stay_low_when_balanced_on_low() {
    check_noninterference(
        "fn f(h: int #high, l: int) -> int { \
            let x: int = 0; \
            if (l > 2) { x = l; } else { x = 2 * l; } \
            return x; \
        }",
        "f",
        40,
    );
}

#[test]
fn loops_over_lows() {
    check_noninterference(
        "fn f(h: int #high, l: int) -> int { \
            let acc: int = 0; \
            let i: int = 0; \
            while (i < l) { acc = acc + i; i = i + 1; } \
            return acc; \
        }",
        "f",
        30,
    );
}

#[test]
fn arrays_and_lengths() {
    check_noninterference(
        "fn f(h: array #high, l: array) -> int { \
            let n: int = len(l); \
            let acc: int = 0; \
            let i: int = 0; \
            while (i < n) { acc = acc + l[i]; i = i + 1; } \
            return acc; \
        }",
        "f",
        30,
    );
}

/// A subtle case: implicit flow via a high branch must be flagged high —
/// verified both by the report and by actually observing interference.
#[test]
fn implicit_flow_is_caught() {
    let src = "fn f(h: int #high) -> int { \
        let x: int = 0; \
        if (h > 0) { x = 1; } \
        return x; \
    }";
    let program = compile(src).unwrap();
    let f = program.function("f").unwrap();
    let report = analyze_function(&program, f);
    let (bid, block) =
        f.iter_blocks().find(|(_, b)| matches!(b.term, Terminator::Return(Some(_)))).unwrap();
    let Terminator::Return(Some(op)) = &block.term else { unreachable!() };
    assert!(
        report.var_taint_at_exit(bid, op.as_var().unwrap()).any().is_high(),
        "implicit flow must taint x"
    );
    // And interference is real.
    let a = final_value(&program, "f", &[Value::Int(1)], 0).unwrap();
    let b = final_value(&program, "f", &[Value::Int(-1)], 0).unwrap();
    assert_ne!(a, b);
}
