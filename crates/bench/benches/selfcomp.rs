//! Decomposition vs. self-composition (the paper's motivating comparison):
//! verification success is printed by the `selfcomp_compare` binary; this
//! bench times both engines on programs where both terminate quickly.

use blazer_bench::config_for;
use blazer_core::Blazer;
use blazer_ir::cost::CostModel;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("decomposition_vs_selfcomp");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    for name in ["sanity_safe", "straightline_safe", "unixlogin_safe"] {
        let b = blazer_benchmarks::by_name(name).expect("benchmark exists");
        let program = b.compile();
        let mut config = config_for(b.group);
        config.synthesize_attack = false;
        let blazer = Blazer::new(config);
        g.bench_function(format!("decomposition/{name}"), |bench| {
            bench.iter(|| {
                std::hint::black_box(blazer.analyze(&program, b.function).unwrap().verdict)
            })
        });
        g.bench_function(format!("selfcomp/{name}"), |bench| {
            bench.iter(|| {
                std::hint::black_box(
                    blazer_selfcomp::verify(&program, b.function, 32, &CostModel::unit()).verified,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
