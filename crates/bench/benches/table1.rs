//! Criterion timing for Table 1: safety verification per benchmark.
//!
//! The `table1` binary prints the full table (verdicts + both timing
//! columns); this bench gives statistically robust timings for the safety
//! phase of a representative subset (the full set of 24 takes minutes per
//! iteration under Criterion's repetition model).

use blazer_bench::config_for;
use blazer_core::Blazer;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_safety(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_safety");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    for name in [
        "array_safe",
        "sanity_safe",
        "sanity_unsafe",
        "nosecret_safe",
        "notaint_unsafe",
        "straightline_safe",
        "unixlogin_safe",
        "k96_safe",
    ] {
        let b = blazer_benchmarks::by_name(name).expect("benchmark exists");
        let program = b.compile();
        let mut config = config_for(b.group);
        config.synthesize_attack = false; // safety phase only
        let blazer = Blazer::new(config);
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let outcome = blazer.analyze(&program, b.function).expect("analyzes");
                std::hint::black_box(outcome.verdict)
            })
        });
    }
    g.finish();
}

fn bench_with_attack(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_with_attack");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    for name in ["sanity_unsafe", "notaint_unsafe", "k96_unsafe"] {
        let b = blazer_benchmarks::by_name(name).expect("benchmark exists");
        let program = b.compile();
        let blazer = Blazer::new(config_for(b.group));
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let outcome = blazer.analyze(&program, b.function).expect("analyzes");
                std::hint::black_box(outcome.verdict)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_safety, bench_with_attack);
criterion_main!(benches);
