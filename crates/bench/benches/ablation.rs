//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Numeric domain**: intervals vs. zones vs. octagons vs. polyhedra
//!    for the trail-restricted fixpoint (precision is reported by the
//!    `ablation` output lines; time by Criterion).
//! 2. **Trail restriction on/off**: the cost of running the abstract
//!    interpreter on the full CFG vs. a restricted product.
//! 3. **Observer threshold sweep**: how the narrowness verdict flips with
//!    the attacker's observational power (printed, not timed).

use blazer_absint::transfer::entry_state;
use blazer_absint::{DimMap, ProductGraph};
use blazer_bounds::{graph_bounds, Observer, SeedAssignment};
use blazer_domains::{AbstractDomain, IntervalVec, Octagon, Polyhedron, Zone};
use blazer_ir::cost::CostModel;
use blazer_ir::Cfg;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;

fn bounds_with<D: AbstractDomain>(program: &blazer_ir::Program, func: &str) -> bool {
    let f = program.function(func).unwrap();
    let cfg = Cfg::new(f);
    let dims = DimMap::new(f);
    let g = ProductGraph::full(f, &cfg);
    let init: D = entry_state(f, &dims);
    let seeds: BTreeSet<usize> = dims.seeds().collect();
    let b = graph_bounds(program, f, &dims, &g, &init, &CostModel::unit(), &seeds);
    b.upper.is_some()
}

fn bench_domains(c: &mut Criterion) {
    let b = blazer_benchmarks::by_name("sanity_safe").unwrap();
    let program = b.compile();
    let mut g = c.benchmark_group("domain_ablation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.bench_function("interval", |bench| {
        bench.iter(|| std::hint::black_box(bounds_with::<IntervalVec>(&program, b.function)))
    });
    g.bench_function("zone", |bench| {
        bench.iter(|| std::hint::black_box(bounds_with::<Zone>(&program, b.function)))
    });
    g.bench_function("octagon", |bench| {
        bench.iter(|| std::hint::black_box(bounds_with::<Octagon>(&program, b.function)))
    });
    g.bench_function("polyhedra", |bench| {
        bench.iter(|| std::hint::black_box(bounds_with::<Polyhedron>(&program, b.function)))
    });
    g.finish();

    // Report the precision half of the ablation (who derives upper bounds).
    for name in ["sanity_safe", "array_safe", "login_safe"] {
        let b = blazer_benchmarks::by_name(name).unwrap();
        let program = b.compile();
        println!(
            "ablation precision {name}: interval={} zone={} octagon={} polyhedra={}",
            bounds_with::<IntervalVec>(&program, b.function),
            bounds_with::<Zone>(&program, b.function),
            bounds_with::<Octagon>(&program, b.function),
            bounds_with::<Polyhedron>(&program, b.function),
        );
    }
}

fn bench_observer_sweep(_c: &mut Criterion) {
    // Printed sweep: at which threshold does login_safe stop being narrow?
    let b = blazer_benchmarks::by_name("login_safe").unwrap();
    let program = b.compile();
    let f = program.function(b.function).unwrap();
    let cfg = Cfg::new(f);
    let dims = DimMap::new(f);
    let g = ProductGraph::full(f, &cfg);
    let init: Polyhedron = entry_state(f, &dims);
    let seeds: BTreeSet<usize> = dims.seeds().collect();
    let bounds = graph_bounds(&program, f, &dims, &g, &init, &CostModel::unit(), &seeds);
    if let (Some(lo), Some(hi)) = (&bounds.lower, &bounds.upper) {
        let high: BTreeSet<usize> = BTreeSet::new();
        for threshold in [100u64, 1_000, 10_000, 25_000, 100_000] {
            let obs =
                Observer::ConcreteThreshold { assumed: SeedAssignment::uniform(4096), threshold };
            println!(
                "observer sweep login_safe(trmg) threshold={threshold}: narrow={}",
                obs.is_narrow(lo, hi, &high)
            );
        }
    }
}

criterion_group!(benches, bench_domains, bench_observer_sweep);
criterion_main!(benches);
