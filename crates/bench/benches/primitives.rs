//! Microbenchmarks of the analysis substrates: the exact simplex, the
//! polyhedral lattice operations, DFA algebra, and the concrete
//! interpreter's cost accounting. These quantify where analysis time goes
//! (the paper attributes its outliers to subtrail explosion and large basic
//! blocks; ours go mostly to LP calls inside joins).

use blazer_automata::{ops, Dfa, Regex};
use blazer_domains::{Constraint, LinExpr, Polyhedron, Rat, Simplex};
use blazer_interp::{Interp, SeededOracle, Value};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simplex(c: &mut Criterion) {
    // max Σ xᵢ over a small polytope: the typical entailment query size.
    let dims = 6;
    let mut cons = Vec::new();
    for d in 0..dims {
        cons.push(Constraint::ge(&LinExpr::var(d), &LinExpr::constant(Rat::int(0))));
        cons.push(Constraint::le(&LinExpr::var(d), &LinExpr::constant(Rat::int(100 + d as i128))));
    }
    for d in 0..dims - 1 {
        cons.push(Constraint::le(&LinExpr::var(d), &LinExpr::var(d + 1)));
    }
    let obj = (0..dims).fold(LinExpr::zero(), |acc, d| acc.add(&LinExpr::var(d)));
    c.bench_function("simplex_maximize_6d", |b| {
        b.iter(|| std::hint::black_box(Simplex::maximize(&obj, &cons)))
    });
}

fn bench_polyhedra(c: &mut Criterion) {
    let boxed = |lo: i128, hi: i128| {
        let mut p = Polyhedron::top(4);
        for d in 0..4 {
            p.add_constraint(Constraint::ge(
                &LinExpr::var(d),
                &LinExpr::constant(Rat::int(lo + d as i128)),
            ));
            p.add_constraint(Constraint::le(
                &LinExpr::var(d),
                &LinExpr::constant(Rat::int(hi + d as i128)),
            ));
        }
        p
    };
    let a = boxed(0, 10);
    let b2 = boxed(5, 20);
    c.bench_function("polyhedron_join_4d", |b| b.iter(|| std::hint::black_box(a.join(&b2))));
    c.bench_function("polyhedron_includes_4d", |b| {
        b.iter(|| std::hint::black_box(a.includes(&b2)))
    });
    c.bench_function("polyhedron_widen_4d", |b| b.iter(|| std::hint::black_box(a.widen(&b2))));
}

fn bench_automata(c: &mut Criterion) {
    // A trail-sized regex: loops and branches over a 24-symbol alphabet.
    let alpha = 24u32;
    let mut r = Regex::symbol(0);
    for s in 1..12 {
        let branch = Regex::symbol(2 * s).or(Regex::symbol(2 * s + 1));
        r = r.then(branch.star());
    }
    c.bench_function("regex_to_min_dfa", |b| {
        b.iter(|| std::hint::black_box(Dfa::from_regex(&r, alpha).minimize()))
    });
    let d1 = Dfa::from_regex(&r, alpha);
    let d2 = Dfa::from_regex(&Regex::symbol(0).then(Regex::symbol(2).star()), alpha);
    c.bench_function("dfa_inclusion", |b| b.iter(|| std::hint::black_box(ops::included(&d2, &d1))));
}

fn bench_interp(c: &mut Criterion) {
    let b = blazer_benchmarks::by_name("login_unsafe").unwrap();
    let program = b.compile();
    let interp = Interp::new(&program);
    let username = Value::array(vec![1, 2, 3]);
    let guess = Value::array(vec![0; 64]);
    c.bench_function("interp_login_64", |bench| {
        bench.iter(|| {
            let mut oracle = SeededOracle::new(7);
            std::hint::black_box(
                interp
                    .run("login_unsafe", &[username.clone(), guess.clone()], &mut oracle)
                    .unwrap()
                    .cost,
            )
        })
    });
}

criterion_group!(benches, bench_simplex, bench_polyhedra, bench_automata, bench_interp);
criterion_main!(benches);
