//! Inspect the trail tree and verdict of named Table-1 benchmarks:
//!
//! ```console
//! $ cargo run --release -p blazer-bench --example inspect login_safe login_unsafe
//! ```

use blazer_bench::config_for;
use blazer_benchmarks::by_name;
use blazer_core::Blazer;

fn main() {
    for name in std::env::args().skip(1) {
        let b = by_name(&name).unwrap();
        let program = b.compile();
        let outcome = Blazer::new(config_for(b.group)).analyze(&program, b.function).unwrap();
        println!("== {name}: verdict: {}", outcome.verdict);
        println!("{}", outcome.render_tree(&program));
    }
}
