//! Time one benchmark's analysis and report the number of LP solves —
//! the dominant cost (see DESIGN.md §7):
//!
//! ```console
//! $ cargo run --release -p blazer-bench --example profile modPow2_unsafe
//! ```

use blazer_bench::config_for;
use blazer_benchmarks::by_name;
use blazer_core::Blazer;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap();
    let b = by_name(&name).unwrap();
    let program = b.compile();
    let t0 = Instant::now();
    let outcome = Blazer::new(config_for(b.group)).analyze(&program, b.function).unwrap();
    println!(
        "{name}: {} in {:.1}s, {} LP solves",
        outcome.verdict,
        t0.elapsed().as_secs_f64(),
        blazer_domains::simplex::solve_calls()
    );
}
