//! The decomposition-vs-self-composition comparison (the paper's central
//! motivation, Sec. 1/7): run both engines over the safe benchmarks and
//! report who verifies what, and how fast.
//!
//! Each engine run is isolated with `catch_unwind`: a crash in one
//! benchmark (or one engine) prints a diagnostic cell and the comparison
//! continues.

use blazer_bench::config_for;
use blazer_core::Blazer;
use blazer_ir::cost::CostModel;
use std::time::Instant;

/// Runs `f` under panic isolation, mapping a crash to `Err(message)`.
fn isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "panic with non-string payload".to_string())
    })
}

fn main() {
    println!(
        "{:<22} {:>14} {:>12} {:>14} {:>12}",
        "Benchmark", "decomposition", "time (s)", "self-comp", "time (s)"
    );
    let mut crashes = 0usize;
    for b in blazer_benchmarks::all() {
        if b.expected != blazer_benchmarks::Expected::Safe {
            continue;
        }
        let program = b.compile();
        let t0 = Instant::now();
        let deco = match isolated(|| {
            Blazer::new(config_for(b.group)).analyze(&program, b.function).expect("analyzes")
        }) {
            Ok(outcome) if outcome.verdict.is_safe() => "verified",
            Ok(_) => "failed",
            Err(_) => {
                crashes += 1;
                "CRASHED"
            }
        };
        let deco_time = t0.elapsed();

        // Attacker constant mirroring the degree observer's epsilon; for
        // threshold groups use the 25k threshold.
        let eps = match b.group {
            blazer_benchmarks::Group::MicroBench => 32,
            _ => 25_000,
        };
        let t1 = Instant::now();
        let (scv, sc_time) = match isolated(|| {
            blazer_selfcomp::verify(&program, b.function, eps, &CostModel::unit())
        }) {
            Ok(sc) => (if sc.verified { "verified" } else { "failed" }, sc.time),
            Err(_) => {
                crashes += 1;
                ("CRASHED", t1.elapsed())
            }
        };
        println!(
            "{:<22} {:>14} {:>12.2} {:>14} {:>12.2}",
            b.name,
            deco,
            deco_time.as_secs_f64(),
            scv,
            sc_time.as_secs_f64()
        );
    }
    if crashes > 0 {
        println!("{crashes} engine run(s) crashed (isolated; see rows above)");
        std::process::exit(1);
    }
}
