//! The decomposition-vs-self-composition comparison (the paper's central
//! motivation, Sec. 1/7): run both engines over the safe benchmarks and
//! report who verifies what, and how fast.

use blazer_bench::config_for;
use blazer_core::Blazer;
use blazer_ir::cost::CostModel;
use std::time::Instant;

fn main() {
    println!(
        "{:<22} {:>14} {:>12} {:>14} {:>12}",
        "Benchmark", "decomposition", "time (s)", "self-comp", "time (s)"
    );
    for b in blazer_benchmarks::all() {
        if b.expected != blazer_benchmarks::Expected::Safe {
            continue;
        }
        let program = b.compile();
        let t0 = Instant::now();
        let outcome = Blazer::new(config_for(b.group))
            .analyze(&program, b.function)
            .expect("analyzes");
        let deco_time = t0.elapsed();
        let deco = if outcome.verdict.is_safe() { "verified" } else { "failed" };

        // Attacker constant mirroring the degree observer's epsilon; for
        // threshold groups use the 25k threshold.
        let eps = match b.group {
            blazer_benchmarks::Group::MicroBench => 32,
            _ => 25_000,
        };
        let sc = blazer_selfcomp::verify(&program, b.function, eps, &CostModel::unit());
        let scv = if sc.verified { "verified" } else { "failed" };
        println!(
            "{:<22} {:>14} {:>12.2} {:>14} {:>12.2}",
            b.name,
            deco,
            deco_time.as_secs_f64(),
            scv,
            sc.time.as_secs_f64()
        );
    }
}
