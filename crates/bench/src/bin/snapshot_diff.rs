//! Compares two Table-1 JSON snapshots and fails on any verdict drift.
//!
//! Usage: `snapshot_diff <committed.json> <fresh.json>`.
//!
//! The committed snapshot (`BENCH_table1.json` at the repo root) is the
//! contract: every benchmark it names must appear in the fresh run with
//! the same verdict and the same `matches_paper` flag, and the fresh run
//! must not invent or drop benchmarks. Wall times are noisy across
//! machines and are never compared. The deterministic work counters
//! (`fixpoint_passes`, seeding split) are *reported* when they move —
//! that's the perf trajectory the snapshot exists to track — but only
//! verdict changes fail the diff, so a pure perf change still needs a
//! human to re-commit the snapshot deliberately. Rows must also agree on
//! the observer cost model they were priced under (comparing verdicts
//! across models is a setup error); leakage drift under a stable verdict
//! is informational, like the counters.

use blazer_ir::json::Json;
use std::process::ExitCode;

/// One row distilled to the fields the diff cares about.
struct RowView {
    name: String,
    verdict: String,
    matches_paper: bool,
    fixpoint_passes: Option<u64>,
    trails_seeded: Option<u64>,
    macro_states_explored: Option<u64>,
    antichain_prunes: Option<u64>,
    /// Observer cost model the row was priced under (absent in snapshots
    /// predating pluggable models, which were always unit-priced).
    cost_model: Option<String>,
    /// Quantified leakage under the row's cost model (portfolio rows only).
    leakage_bits: Option<f64>,
}

fn load(path: &str) -> Result<Vec<RowView>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let rows = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no \"benchmarks\" array"))?;
    rows.iter()
        .map(|row| {
            let field = |k: &str| {
                row.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{path}: row missing \"{k}\""))
            };
            Ok(RowView {
                name: field("name")?,
                verdict: field("verdict")?,
                matches_paper: row
                    .get("matches_paper")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("{path}: row missing \"matches_paper\""))?,
                fixpoint_passes: row.get("fixpoint_passes").and_then(Json::as_u64),
                trails_seeded: row
                    .get("seeds")
                    .and_then(|s| s.get("trails_seeded"))
                    .and_then(Json::as_u64),
                macro_states_explored: row
                    .get("antichain")
                    .and_then(|a| a.get("macro_states_explored"))
                    .and_then(Json::as_u64),
                antichain_prunes: row
                    .get("antichain")
                    .and_then(|a| a.get("antichain_prunes"))
                    .and_then(Json::as_u64),
                cost_model: row.get("cost_model").and_then(Json::as_str).map(str::to_string),
                leakage_bits: row.get("leakage_bits").and_then(Json::as_f64),
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(committed_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: snapshot_diff <committed.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (committed, fresh) = match (load(&committed_path), load(&fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (c, f) => {
            for e in [c.err(), f.err()].into_iter().flatten() {
                eprintln!("snapshot_diff: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut perf_moves = 0usize;
    for want in &committed {
        let Some(got) = fresh.iter().find(|r| r.name == want.name) else {
            println!("MISSING   {:<22} absent from {fresh_path}", want.name);
            failures += 1;
            continue;
        };
        // Rows priced under different cost models are not comparable:
        // bounds, leakage, and even verdicts are model-relative, so a
        // model mismatch is a setup error, not drift. A missing field
        // (pre-pluggable-model snapshot) means unit.
        let want_model = want.cost_model.as_deref().unwrap_or("unit");
        let got_model = got.cost_model.as_deref().unwrap_or("unit");
        if want_model != got_model {
            println!("MODEL     {:<22} priced under {want_model} -> {got_model}", want.name);
            failures += 1;
            continue;
        }
        if got.verdict != want.verdict || got.matches_paper != want.matches_paper {
            println!(
                "VERDICT   {:<22} {} (matches_paper={}) -> {} (matches_paper={})",
                want.name, want.verdict, want.matches_paper, got.verdict, got.matches_paper
            );
            failures += 1;
            continue;
        }
        // Leakage (a cost-bound summary) drifting under a *stable* verdict
        // and model is informational: bounds tighten and loosen with
        // analysis changes without the verdict moving.
        if let (Some(a), Some(b)) = (want.leakage_bits, got.leakage_bits) {
            if (a - b).abs() > 1e-9 {
                println!("leakage   {:<22} {a:.3} bits -> {b:.3} bits", want.name);
                perf_moves += 1;
            }
        }
        // Counter drift is informational: print it so the perf trajectory
        // is visible in CI logs, but let verdict-stable runs pass.
        if let (Some(a), Some(b)) = (want.fixpoint_passes, got.fixpoint_passes) {
            if a != b {
                let seeds = match (want.trails_seeded, got.trails_seeded) {
                    (Some(sa), Some(sb)) if sa != sb => {
                        format!(" (trails seeded {sa} -> {sb})")
                    }
                    _ => String::new(),
                };
                println!("passes    {:<22} {a} -> {b}{seeds}", want.name);
                perf_moves += 1;
            }
        }
        // Antichain engine drift is likewise informational: the counters
        // move with engine-mode changes (classic runs report zeros here)
        // and with refinement-path changes.
        if let (Some(a), Some(b)) = (want.macro_states_explored, got.macro_states_explored) {
            if a != b {
                let prunes = match (want.antichain_prunes, got.antichain_prunes) {
                    (Some(pa), Some(pb)) if pa != pb => format!(" (prunes {pa} -> {pb})"),
                    _ => String::new(),
                };
                println!("antichain {:<22} {a} -> {b}{prunes}", want.name);
                perf_moves += 1;
            }
        }
    }
    for extra in fresh.iter().filter(|r| !committed.iter().any(|c| c.name == r.name)) {
        println!("EXTRA     {:<22} not in {committed_path}", extra.name);
        failures += 1;
    }

    println!(
        "{} benchmark(s) compared, {failures} verdict failure(s), {perf_moves} counter move(s)",
        committed.len()
    );
    if failures > 0 {
        println!("snapshot diff FAILED against {committed_path}");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
