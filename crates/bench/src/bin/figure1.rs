//! Regenerates Figure 1: the trail trees for `loginSafe` and `loginBad`,
//! with per-trail bound ranges and taint/sec split arcs.

use blazer_bench::config_for;
use blazer_benchmarks::by_name;
use blazer_core::{Blazer, Verdict};

fn main() {
    for name in ["login_safe", "login_unsafe"] {
        let b = by_name(name).expect("benchmark exists");
        let program = b.compile();
        let blazer = Blazer::new(config_for(b.group));
        let outcome = blazer.analyze(&program, b.function).expect("analyzes");
        println!(
            "==== {} (Fig. 1 {}) ====",
            name,
            if name.ends_with("unsafe") { "bottom" } else { "top" }
        );
        println!("verdict: {}", outcome.verdict);
        println!("{}", outcome.render_tree(&program));
        if let Verdict::Attack(spec) = &outcome.verdict {
            println!("{spec}");
        }
        println!();
    }
}
