//! Regenerates Figure 1: the trail trees for `loginSafe` and `loginBad`,
//! with per-trail bound ranges and taint/sec split arcs.
//!
//! Each analysis is isolated with `catch_unwind` so a crash in one example
//! still lets the other render.

use blazer_bench::config_for;
use blazer_benchmarks::by_name;
use blazer_core::{AnalysisOutcome, Blazer, Verdict};

fn main() {
    let mut crashes = 0usize;
    for name in ["login_safe", "login_unsafe"] {
        let b = by_name(name).expect("benchmark exists");
        let program = b.compile();
        let blazer = Blazer::new(config_for(b.group));
        println!(
            "==== {} (Fig. 1 {}) ====",
            name,
            if name.ends_with("unsafe") { "bottom" } else { "top" }
        );
        let analyzed: Result<AnalysisOutcome, String> =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                blazer.analyze(&program, b.function).expect("analyzes")
            }))
            .map_err(|payload| {
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic with non-string payload".to_string())
            });
        let outcome = match analyzed {
            Ok(o) => o,
            Err(msg) => {
                crashes += 1;
                println!("verdict: CRASHED: {msg}");
                println!();
                continue;
            }
        };
        println!("verdict: {}", outcome.verdict);
        println!("{}", outcome.render_tree(&program));
        if let Verdict::Attack(spec) = &outcome.verdict {
            println!("{spec}");
        }
        println!();
    }
    if crashes > 0 {
        println!("{crashes} analysis run(s) crashed (isolated; see above)");
        std::process::exit(1);
    }
}
