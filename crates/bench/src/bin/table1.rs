//! Regenerates Table 1: per-benchmark size, verdict, median safety time,
//! and median safety+attack time.

use blazer_bench::{run_benchmark, Row};
use blazer_core::Verdict;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!(
        "{:<22} {:>5} {:>12} {:>12}   {:<8} {}",
        "Benchmark", "Size", "Safety (s)", "w/Attack(s)", "Verdict", "matches paper?"
    );
    let mut all_match = true;
    let mut group = None;
    for b in blazer_benchmarks::all() {
        if group != Some(b.group) {
            println!("--- {} ---", b.group);
            group = Some(b.group);
        }
        let row: Row = run_benchmark(&b, runs);
        let verdict = match row.verdict {
            Verdict::Safe => "safe",
            Verdict::Attack(_) => "attack",
            Verdict::Unknown => "gave up",
        };
        let attack_time = row
            .with_attack_time
            .map(|d| format!("{:.2}", d.as_secs_f64()))
            .unwrap_or_else(|| "-".to_string());
        let ok = row.matches_paper();
        all_match &= ok;
        println!(
            "{:<22} {:>5} {:>12.2} {:>12}   {:<8} {}",
            row.name,
            row.size,
            row.safety_time.as_secs_f64(),
            attack_time,
            verdict,
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    if all_match {
        println!("all 24 verdicts match Table 1");
    } else {
        println!("MISMATCHES against Table 1 detected");
        std::process::exit(1);
    }
}
