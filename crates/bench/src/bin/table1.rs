//! Regenerates Table 1: per-benchmark size, verdict, median safety time,
//! and median safety+attack time.
//!
//! Each benchmark runs under `catch_unwind` isolation: a crash (a bug, or a
//! `BLAZER_FAULT` panic injection) prints a diagnostic row and the table
//! keeps going. Set `BLAZER_ONLY=name1,name2` to restrict the run to
//! benchmarks whose names contain one of the given substrings.
//!
//! Besides the human-readable table, the run is written as machine-readable
//! JSON (default `BENCH_table1.json`, override with `BLAZER_BENCH_JSON`)
//! recording per-benchmark verdicts and wall times plus the evaluation
//! thread count, so the perf trajectory is trackable across commits:
//! compare `BLAZER_THREADS=1` against `BLAZER_THREADS=4` runs.

use blazer_bench::{config_for, try_run_benchmark, Row};
use blazer_core::Verdict;
use std::time::Instant;

/// One emitted row, kept for the JSON report (including crash rows, which
/// carry no timings).
struct JsonRow {
    name: String,
    group: String,
    size: Option<usize>,
    verdict: &'static str,
    matches_paper: bool,
    safety_s: Option<f64>,
    with_attack_s: Option<f64>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json(path: &str, threads: usize, runs: usize, total_wall_s: f64, rows: &[JsonRow]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"runs\": {runs},\n"));
    out.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let opt_usize = |v: Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
        let opt_f64 = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.3}"));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"group\": \"{}\", \"size\": {}, \"verdict\": \"{}\", \
             \"matches_paper\": {}, \"safety_s\": {}, \"with_attack_s\": {}}}{}\n",
            json_escape(&r.name),
            json_escape(&r.group),
            opt_usize(r.size),
            r.verdict,
            r.matches_paper,
            opt_f64(r.safety_s),
            opt_f64(r.with_attack_s),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let only: Option<Vec<String>> = std::env::var("BLAZER_ONLY")
        .ok()
        .map(|s| s.split(',').map(|p| p.trim().to_string()).collect());
    // All groups share the same width policy; report what the analyses use.
    let threads = config_for(blazer_benchmarks::Group::MicroBench).effective_threads();
    println!(
        "{:<22} {:>5} {:>12} {:>12}   {:<8} matches paper?  ({threads} thread(s))",
        "Benchmark", "Size", "Safety (s)", "w/Attack(s)", "Verdict"
    );
    let started = Instant::now();
    let mut all_match = true;
    let mut crashes = 0usize;
    let mut selected = 0usize;
    let mut group = None;
    let mut json_rows: Vec<JsonRow> = Vec::new();
    for b in blazer_benchmarks::all() {
        if let Some(only) = &only {
            if !only.iter().any(|p| b.name.contains(p.as_str())) {
                continue;
            }
        }
        selected += 1;
        if group != Some(b.group) {
            println!("--- {} ---", b.group);
            group = Some(b.group);
        }
        let row: Row = match try_run_benchmark(&b, runs) {
            Ok(row) => row,
            Err(panic_msg) => {
                crashes += 1;
                all_match = false;
                println!(
                    "{:<22} {:>5} {:>12} {:>12}   {:<8} CRASHED: {panic_msg}",
                    b.name, "-", "-", "-", "crash"
                );
                json_rows.push(JsonRow {
                    name: b.name.to_string(),
                    group: b.group.to_string(),
                    size: None,
                    verdict: "crash",
                    matches_paper: false,
                    safety_s: None,
                    with_attack_s: None,
                });
                continue;
            }
        };
        let verdict = match row.verdict {
            Verdict::Safe => "safe",
            Verdict::Attack(_) => "attack",
            Verdict::Unknown(_) => "gave up",
        };
        let attack_time = row
            .with_attack_time
            .map(|d| format!("{:.2}", d.as_secs_f64()))
            .unwrap_or_else(|| "-".to_string());
        let ok = row.matches_paper();
        all_match &= ok;
        println!(
            "{:<22} {:>5} {:>12.2} {:>12}   {:<8} {}",
            row.name,
            row.size,
            row.safety_time.as_secs_f64(),
            attack_time,
            verdict,
            if ok { "yes" } else { "NO" }
        );
        json_rows.push(JsonRow {
            name: row.name.to_string(),
            group: row.group.to_string(),
            size: Some(row.size),
            verdict,
            matches_paper: ok,
            safety_s: Some(row.safety_time.as_secs_f64()),
            with_attack_s: row.with_attack_time.map(|d| d.as_secs_f64()),
        });
    }
    let total_wall_s = started.elapsed().as_secs_f64();
    println!();
    println!("total wall time: {total_wall_s:.2}s with {threads} thread(s)");
    let json_path =
        std::env::var("BLAZER_BENCH_JSON").unwrap_or_else(|_| "BENCH_table1.json".to_string());
    write_json(&json_path, threads, runs, total_wall_s, &json_rows);
    if crashes > 0 {
        println!("{crashes} benchmark(s) crashed (isolated; see rows above)");
    }
    if all_match && only.is_none() {
        println!("all 24 verdicts match Table 1");
    } else if all_match {
        println!("all {selected} selected verdicts match Table 1");
    } else {
        println!("MISMATCHES against Table 1 detected");
        std::process::exit(1);
    }
}
