//! Regenerates Table 1: per-benchmark size, verdict, median safety time,
//! and median safety+attack time.
//!
//! Benchmarks run concurrently on the same worker-pool machinery the
//! analysis service uses (`blazer_serve::pool::scoped_map`); each analysis
//! installs its own budget, so runs are isolated and verdicts are identical
//! to a sequential run. Rows print in table order regardless of completion
//! order. The fan-out width comes from `BLAZER_BENCH_JOBS` (default:
//! machine parallelism); set `BLAZER_BENCH_JOBS=1` when the per-row wall
//! times themselves are the measurement, since concurrent rows contend for
//! cores.
//!
//! Each benchmark runs under `catch_unwind` isolation: a crash (a bug, or a
//! `BLAZER_FAULT` panic injection) prints a diagnostic row and the table
//! keeps going. Set `BLAZER_ONLY=name1,name2` to restrict the run to
//! benchmarks whose names contain one of the given substrings.
//!
//! Besides the human-readable table, the run is written as machine-readable
//! JSON (default `BENCH_table1.json`, override with `BLAZER_BENCH_JSON`)
//! recording per-benchmark verdicts and wall times plus the evaluation
//! thread count, so the perf trajectory is trackable across commits:
//! compare `BLAZER_THREADS=1` against `BLAZER_THREADS=4` runs.

use blazer_bench::{backend_from_env, config_for, try_run_benchmark_with_backend, Row};
use blazer_core::{AntichainStats, SeedStats, Verdict};
use blazer_ir::json::Json;
use blazer_portfolio::Backend;
use blazer_serve::pool;
use std::time::Instant;

/// One emitted row, kept for the JSON report (including crash rows, which
/// carry no timings).
struct JsonRow {
    name: String,
    group: String,
    size: Option<usize>,
    verdict: &'static str,
    matches_paper: bool,
    safety_s: Option<f64>,
    with_attack_s: Option<f64>,
    /// Deterministic work counters (`None` for crash rows): total fixpoint
    /// passes plus the per-trail seeding split and the antichain engine's
    /// counters. Wall times are noisy across machines; these are the
    /// numbers the snapshot diff can trust.
    counters: Option<(u64, SeedStats, AntichainStats)>,
    /// Winning backend of a portfolio run (`None` for plain decomposition
    /// runs, crash rows, and undecided races).
    winner: Option<&'static str>,
    /// Quantified leakage in bits (`None` outside portfolio runs).
    leakage_bits: Option<f64>,
    /// Observer cost model the row was priced under (table-wide; set with
    /// `BLAZER_COST_MODEL`, default `unit`).
    cost_model: String,
}

impl JsonRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("group", Json::from(self.group.as_str())),
            ("size", Json::from(self.size)),
            ("verdict", Json::from(self.verdict)),
            ("matches_paper", Json::from(self.matches_paper)),
            ("safety_s", self.safety_s.map_or(Json::Null, Json::secs)),
            ("with_attack_s", self.with_attack_s.map_or(Json::Null, Json::secs)),
            ("fixpoint_passes", self.counters.map_or(Json::Null, |(p, _, _)| Json::from(p))),
            (
                "seeds",
                self.counters.map_or(Json::Null, |(_, s, _)| {
                    Json::obj([
                        ("trails_seeded", Json::from(s.trails_seeded)),
                        ("trails_unseeded", Json::from(s.trails_unseeded)),
                        ("seeds_rejected", Json::from(s.seeds_rejected)),
                        ("seeded_passes", Json::from(s.seeded_passes)),
                        ("unseeded_passes", Json::from(s.unseeded_passes)),
                    ])
                }),
            ),
            (
                "antichain",
                self.counters.map_or(Json::Null, |(_, _, a)| {
                    Json::obj([
                        ("macro_states_explored", Json::from(a.macro_states_explored)),
                        ("antichain_prunes", Json::from(a.antichain_prunes)),
                        ("classic_fallbacks", Json::from(a.classic_fallbacks)),
                    ])
                }),
            ),
            ("winner", self.winner.map(Json::from).unwrap_or(Json::Null)),
            ("leakage_bits", self.leakage_bits.map(Json::Num).unwrap_or(Json::Null)),
            ("cost_model", Json::from(self.cost_model.as_str())),
        ])
    }
}

fn write_json(
    path: &str,
    threads: usize,
    jobs: usize,
    runs: usize,
    total_wall_s: f64,
    rows: &[JsonRow],
) {
    let doc = Json::obj([
        ("threads", Json::from(threads)),
        ("jobs", Json::from(jobs)),
        ("runs", Json::from(runs)),
        ("total_wall_s", Json::secs(total_wall_s)),
        ("benchmarks", Json::arr(rows.iter().map(JsonRow::to_json))),
    ]);
    match std::fs::write(path, doc.pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let only: Option<Vec<String>> = std::env::var("BLAZER_ONLY")
        .ok()
        .map(|s| s.split(',').map(|p| p.trim().to_string()).collect());
    // All groups share the same width policy; report what the analyses use.
    let threads = config_for(blazer_benchmarks::Group::MicroBench).effective_threads();
    let backend = backend_from_env();
    if backend != Backend::Decomp {
        println!("backend: {backend} (BLAZER_BACKEND)");
    }
    // The model is table-wide (config_for applies the same BLAZER_COST_MODEL
    // override to every group), but recorded per row so snapshot diffs can
    // refuse to compare rows priced under different observers.
    let cost_model = config_for(blazer_benchmarks::Group::MicroBench).cost_model.to_string();
    if cost_model != "unit" {
        println!("cost model: {cost_model} (BLAZER_COST_MODEL)");
    }
    let selected: Vec<_> = blazer_benchmarks::all()
        .into_iter()
        .filter(|b| {
            only.as_ref().is_none_or(|only| only.iter().any(|p| b.name.contains(p.as_str())))
        })
        .collect();
    let jobs =
        pool::clamped_width(pool::effective_width(None, "BLAZER_BENCH_JOBS"), selected.len());
    println!(
        "{:<22} {:>5} {:>12} {:>12}   {:<8} matches paper?  \
         ({jobs} job(s) x {threads} thread(s))",
        "Benchmark", "Size", "Safety (s)", "w/Attack(s)", "Verdict"
    );
    let started = Instant::now();
    let results: Vec<Result<Row, String>> =
        pool::scoped_map(&selected, jobs, |_, b| try_run_benchmark_with_backend(b, runs, backend));
    let mut all_match = true;
    let mut crashes = 0usize;
    let mut group = None;
    let mut json_rows: Vec<JsonRow> = Vec::new();
    for (b, result) in selected.iter().zip(results) {
        if group != Some(b.group) {
            println!("--- {} ---", b.group);
            group = Some(b.group);
        }
        let row: Row = match result {
            Ok(row) => row,
            Err(panic_msg) => {
                crashes += 1;
                all_match = false;
                println!(
                    "{:<22} {:>5} {:>12} {:>12}   {:<8} CRASHED: {panic_msg}",
                    b.name, "-", "-", "-", "crash"
                );
                json_rows.push(JsonRow {
                    name: b.name.to_string(),
                    group: b.group.to_string(),
                    size: None,
                    verdict: "crash",
                    matches_paper: false,
                    safety_s: None,
                    with_attack_s: None,
                    counters: None,
                    winner: None,
                    leakage_bits: None,
                    cost_model: cost_model.clone(),
                });
                continue;
            }
        };
        let verdict = match row.verdict {
            Verdict::Safe => "safe",
            Verdict::Attack(_) => "attack",
            Verdict::Unknown(_) => "gave up",
        };
        let attack_time = row
            .with_attack_time
            .map(|d| format!("{:.2}", d.as_secs_f64()))
            .unwrap_or_else(|| "-".to_string());
        let ok = row.matches_paper();
        all_match &= ok;
        let annotation = match (row.winner, row.leakage_bits) {
            (Some(w), Some(bits)) => format!("  [winner {w}, {bits:.2} bits]"),
            (None, Some(bits)) => format!("  [no winner, {bits:.2} bits]"),
            _ => String::new(),
        };
        println!(
            "{:<22} {:>5} {:>12.2} {:>12}   {:<8} {}{annotation}",
            row.name,
            row.size,
            row.safety_time.as_secs_f64(),
            attack_time,
            verdict,
            if ok { "yes" } else { "NO" }
        );
        json_rows.push(JsonRow {
            name: row.name.to_string(),
            group: row.group.to_string(),
            size: Some(row.size),
            verdict,
            matches_paper: ok,
            safety_s: Some(row.safety_time.as_secs_f64()),
            with_attack_s: row.with_attack_time.map(|d| d.as_secs_f64()),
            counters: Some((row.fixpoint_passes, row.seed_stats, row.antichain_stats)),
            winner: row.winner,
            leakage_bits: row.leakage_bits,
            cost_model: cost_model.clone(),
        });
    }
    let total_wall_s = started.elapsed().as_secs_f64();
    println!();
    println!("total wall time: {total_wall_s:.2}s with {jobs} job(s) x {threads} thread(s)");
    let json_path =
        std::env::var("BLAZER_BENCH_JSON").unwrap_or_else(|_| "BENCH_table1.json".to_string());
    write_json(&json_path, threads, jobs, runs, total_wall_s, &json_rows);
    if crashes > 0 {
        println!("{crashes} benchmark(s) crashed (isolated; see rows above)");
    }
    if all_match && only.is_none() {
        println!("all 24 verdicts match Table 1");
    } else if all_match {
        println!("all {} selected verdicts match Table 1", selected.len());
    } else {
        println!("MISMATCHES against Table 1 detected");
        std::process::exit(1);
    }
}
