//! Regenerates Table 1: per-benchmark size, verdict, median safety time,
//! and median safety+attack time.
//!
//! Each benchmark runs under `catch_unwind` isolation: a crash (a bug, or a
//! `BLAZER_FAULT` panic injection) prints a diagnostic row and the table
//! keeps going. Set `BLAZER_ONLY=name1,name2` to restrict the run to
//! benchmarks whose names contain one of the given substrings.

use blazer_bench::{try_run_benchmark, Row};
use blazer_core::Verdict;

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let only: Option<Vec<String>> = std::env::var("BLAZER_ONLY")
        .ok()
        .map(|s| s.split(',').map(|p| p.trim().to_string()).collect());
    println!(
        "{:<22} {:>5} {:>12} {:>12}   {:<8} matches paper?",
        "Benchmark", "Size", "Safety (s)", "w/Attack(s)", "Verdict"
    );
    let mut all_match = true;
    let mut crashes = 0usize;
    let mut selected = 0usize;
    let mut group = None;
    for b in blazer_benchmarks::all() {
        if let Some(only) = &only {
            if !only.iter().any(|p| b.name.contains(p.as_str())) {
                continue;
            }
        }
        selected += 1;
        if group != Some(b.group) {
            println!("--- {} ---", b.group);
            group = Some(b.group);
        }
        let row: Row = match try_run_benchmark(&b, runs) {
            Ok(row) => row,
            Err(panic_msg) => {
                crashes += 1;
                all_match = false;
                println!(
                    "{:<22} {:>5} {:>12} {:>12}   {:<8} CRASHED: {panic_msg}",
                    b.name, "-", "-", "-", "crash"
                );
                continue;
            }
        };
        let verdict = match row.verdict {
            Verdict::Safe => "safe",
            Verdict::Attack(_) => "attack",
            Verdict::Unknown(_) => "gave up",
        };
        let attack_time = row
            .with_attack_time
            .map(|d| format!("{:.2}", d.as_secs_f64()))
            .unwrap_or_else(|| "-".to_string());
        let ok = row.matches_paper();
        all_match &= ok;
        println!(
            "{:<22} {:>5} {:>12.2} {:>12}   {:<8} {}",
            row.name,
            row.size,
            row.safety_time.as_secs_f64(),
            attack_time,
            verdict,
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    if crashes > 0 {
        println!("{crashes} benchmark(s) crashed (isolated; see rows above)");
    }
    if all_match && only.is_none() {
        println!("all 24 verdicts match Table 1");
    } else if all_match {
        println!("all {selected} selected verdicts match Table 1");
    } else {
        println!("MISMATCHES against Table 1 detected");
        std::process::exit(1);
    }
}
