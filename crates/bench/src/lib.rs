//! # blazer-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. 6). See the `table1`, `figure1`, and
//! `selfcomp_compare` binaries plus the Criterion benches under `benches/`.

#![forbid(unsafe_code)]

use blazer_benchmarks::{Benchmark, Expected, Group};
use blazer_core::{AnalysisOutcome, AntichainStats, Blazer, Config, SeedStats, Verdict};
use blazer_portfolio::{analyze_portfolio, Backend, PortfolioReport};
use std::time::Duration;

/// The table-wide backend selection: `BLAZER_BACKEND=portfolio` (or
/// `selfcomp`, for completeness) switches `table1` away from the default
/// decomposition driver. Unset or unrecognized values mean decomp.
pub fn backend_from_env() -> Backend {
    std::env::var("BLAZER_BACKEND").ok().and_then(|s| s.parse().ok()).unwrap_or(Backend::Decomp)
}

/// The analysis configuration for a benchmark group (the two observer
/// models of Sec. 6.1).
pub fn config_for(group: Group) -> Config {
    let mut c = match group {
        Group::MicroBench => Config::microbench(),
        Group::Stac | Group::Literature => Config::stac(),
    };
    // Domain override for ablation experiments: BLAZER_DOMAIN=interval|zone|octagon|polyhedra.
    if let Ok(d) = std::env::var("BLAZER_DOMAIN") {
        c.domain = match d.as_str() {
            "interval" => blazer_core::DomainKind::Interval,
            "zone" => blazer_core::DomainKind::Zone,
            "octagon" => blazer_core::DomainKind::Octagon,
            _ => blazer_core::DomainKind::Polyhedra,
        };
    }
    // Observer cost-model override for the cross-model oracle sweeps:
    // BLAZER_COST_MODEL=unit|weighted|cache. Unset or unrecognized values
    // keep the default unit model, so existing snapshots are unaffected.
    if let Ok(m) = std::env::var("BLAZER_COST_MODEL") {
        if let Ok(model) = m.parse::<blazer_ir::cost::CostModel>() {
            c.cost_model = model;
        }
    }
    c
}

/// One Table-1 row.
#[derive(Debug)]
pub struct Row {
    pub name: &'static str,
    pub group: Group,
    pub size: usize,
    pub verdict: Verdict,
    pub expected: Expected,
    pub safety_time: Duration,
    pub with_attack_time: Option<Duration>,
    /// Total fixpoint passes the analysis consumed (from the budget
    /// ledger: top-level trail fixpoints, nested loop summaries, and the
    /// attack phase alike). Deterministic at every thread width, so the
    /// snapshot can track the incremental-seeding savings across commits.
    pub fixpoint_passes: u64,
    /// Per-trail seeding counters (trails seeded vs from-⊥, top-level pass
    /// split, rejected seeds).
    pub seed_stats: SeedStats,
    /// Antichain automata-engine counters (macro-states explored, prunes,
    /// classic fallbacks). All zeros for portfolio rows whose winning run
    /// produced no decomposition outcome.
    pub antichain_stats: AntichainStats,
    /// Which backend won, when the row came from a portfolio race (`None`
    /// for plain decomposition rows and undecided races).
    pub winner: Option<&'static str>,
    /// Quantified leakage in bits under the group's observer (`None` for
    /// plain decomposition rows).
    pub leakage_bits: Option<f64>,
}

impl Row {
    /// Whether the verdict matches the paper's.
    pub fn matches_paper(&self) -> bool {
        matches!(
            (&self.verdict, self.expected),
            (Verdict::Safe, Expected::Safe)
                | (Verdict::Attack(_), Expected::Attack)
                | (Verdict::Unknown(_), Expected::Unknown)
        )
    }
}

/// Analyzes one benchmark `runs` times and reports the median-timing run
/// (the paper takes the median of five runs).
pub fn run_benchmark(b: &Benchmark, runs: usize) -> Row {
    let program = b.compile();
    let blazer = Blazer::new(config_for(b.group));
    let mut outcomes: Vec<AnalysisOutcome> = (0..runs.max(1))
        .map(|_| blazer.analyze(&program, b.function).expect("benchmark analyzes"))
        .collect();
    outcomes.sort_by_key(|o| o.safety_time);
    let o = outcomes.swap_remove(outcomes.len() / 2);
    Row {
        name: b.name,
        group: b.group,
        size: o.n_blocks,
        with_attack_time: o.attack_time.map(|a| o.safety_time + a),
        fixpoint_passes: o.budget_report.fixpoint_passes,
        seed_stats: o.seed_stats,
        antichain_stats: o.antichain_stats,
        verdict: o.verdict,
        expected: b.expected,
        safety_time: o.safety_time,
        winner: None,
        leakage_bits: None,
    }
}

/// Analyzes one benchmark `runs` times under the portfolio race (the
/// decomposition driver vs the self-composition baseline on one shared
/// budget) and reports the median-wall-time run with its winner and
/// quantified leakage.
pub fn run_benchmark_portfolio(b: &Benchmark, runs: usize) -> Row {
    let program = b.compile();
    let config = config_for(b.group);
    let mut reports: Vec<PortfolioReport> = (0..runs.max(1))
        .map(|_| analyze_portfolio(&program, b.function, &config).expect("benchmark analyzes"))
        .collect();
    reports.sort_by_key(|r| r.wall);
    let r = reports.swap_remove(reports.len() / 2);
    let (size, safety_time, with_attack_time, seed_stats, antichain_stats) = match &r.outcome {
        Some(o) => (
            o.n_blocks,
            o.safety_time,
            o.attack_time.map(|a| o.safety_time + a),
            o.seed_stats,
            o.antichain_stats,
        ),
        None => (0, r.wall, None, SeedStats::default(), AntichainStats::default()),
    };
    Row {
        name: b.name,
        group: b.group,
        size,
        verdict: r.verdict,
        expected: b.expected,
        safety_time,
        with_attack_time,
        fixpoint_passes: r.budget_report.fixpoint_passes,
        seed_stats,
        antichain_stats,
        winner: r.winner.map(Backend::as_str),
        leakage_bits: Some(r.leakage.bits),
    }
}

/// [`run_benchmark`] or [`run_benchmark_portfolio`] by backend selection.
/// `Selfcomp` alone has no Table-1 row shape of its own; it is reported
/// through the portfolio path (where its verdict soundness is handled).
pub fn run_benchmark_with_backend(b: &Benchmark, runs: usize, backend: Backend) -> Row {
    match backend {
        Backend::Decomp => run_benchmark(b, runs),
        Backend::Selfcomp | Backend::Portfolio => run_benchmark_portfolio(b, runs),
    }
}

/// Like [`run_benchmark`], but isolates panics (injected faults, genuine
/// bugs) so one crashing benchmark cannot abort a whole table run. Returns
/// the panic payload as the error.
pub fn try_run_benchmark(b: &Benchmark, runs: usize) -> Result<Row, String> {
    try_run_benchmark_with_backend(b, runs, Backend::Decomp)
}

/// [`try_run_benchmark`] with an explicit backend selection.
pub fn try_run_benchmark_with_backend(
    b: &Benchmark,
    runs: usize,
    backend: Backend,
) -> Result<Row, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_benchmark_with_backend(b, runs, backend)
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "panic with non-string payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_core::Verdict;

    #[test]
    fn config_selection_by_group() {
        // MicroBench gets the degree observer; STAC/Literature the
        // threshold observer.
        let micro = config_for(Group::MicroBench);
        assert!(matches!(micro.observer, blazer_bounds::Observer::DegreeEquivalence { .. }));
        for g in [Group::Stac, Group::Literature] {
            let c = config_for(g);
            assert!(matches!(c.observer, blazer_bounds::Observer::ConcreteThreshold { .. }));
        }
    }

    #[test]
    fn rows_compare_verdicts_to_expectations() {
        let row = |verdict: Verdict, expected: Expected| Row {
            name: "x",
            group: Group::MicroBench,
            size: 1,
            verdict,
            expected,
            safety_time: Duration::from_millis(1),
            with_attack_time: None,
            fixpoint_passes: 0,
            seed_stats: SeedStats::default(),
            antichain_stats: AntichainStats::default(),
            winner: None,
            leakage_bits: None,
        };
        let unknown = || Verdict::Unknown(blazer_core::UnknownReason::SearchExhausted);
        assert!(row(Verdict::Safe, Expected::Safe).matches_paper());
        assert!(row(unknown(), Expected::Unknown).matches_paper());
        assert!(!row(Verdict::Safe, Expected::Attack).matches_paper());
        assert!(!row(unknown(), Expected::Safe).matches_paper());
    }

    #[test]
    fn run_benchmark_fast_case() {
        let b = blazer_benchmarks::by_name("nosecret_safe").unwrap();
        let row = run_benchmark(&b, 3);
        assert!(row.matches_paper());
        assert!(row.with_attack_time.is_none());
        assert_eq!(row.size, 4);
    }
}
