//! Antichain vs classic automata-engine equivalence over the benchmark
//! suite.
//!
//! The antichain engine answers the refinement layer's yes/no language
//! questions (inclusion, disjointness, emptiness) on the fly; the classic
//! engine materializes product DFAs and tests them. Both must produce
//! *identical* analyses end to end: same verdicts, same refinement trees,
//! same per-leaf statuses. These tests run each benchmark under both
//! `BLAZER_AUTOMATA` modes in-process and demand exact agreement, plus the
//! counter invariants that prove each mode actually took its own path
//! (classic runs explore zero antichain macro-states and record at least
//! one classic fallback; default runs record zero fallbacks).

use blazer_benchmarks::{Benchmark, Group};
use blazer_core::{AntichainStats, Blazer};
use std::sync::Mutex;

/// `BLAZER_AUTOMATA` is process-global; tests in this binary run in
/// parallel threads, so every mode flip holds this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn analyze_in_mode(b: &Benchmark, classic: bool) -> blazer_core::AnalysisOutcome {
    let program = b.compile();
    let config = blazer_bench::config_for(b.group).with_threads(1);
    if classic {
        std::env::set_var("BLAZER_AUTOMATA", "classic");
    } else {
        std::env::remove_var("BLAZER_AUTOMATA");
    }
    let out = Blazer::new(config).analyze(&program, b.function).expect("benchmark analyzes");
    std::env::remove_var("BLAZER_AUTOMATA");
    out
}

fn check_agreement(benchmarks: &[Benchmark]) {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut classic_totals = AntichainStats::default();
    for b in benchmarks {
        let lazy = analyze_in_mode(b, false);
        let classic = analyze_in_mode(b, true);
        assert_eq!(
            format!("{:?}", lazy.verdict),
            format!("{:?}", classic.verdict),
            "{}: engine mode changed the verdict",
            b.name
        );
        assert_eq!(
            lazy.tree.len(),
            classic.tree.len(),
            "{}: engine mode changed the refinement tree",
            b.name
        );
        for i in 0..lazy.tree.len() {
            assert_eq!(
                lazy.tree.node(i).trail.to_string(),
                classic.tree.node(i).trail.to_string(),
                "{}: trail {i} diverged between engine modes",
                b.name
            );
            assert_eq!(
                lazy.tree.node(i).status,
                classic.tree.node(i).status,
                "{}: status of trail {i} diverged between engine modes",
                b.name
            );
        }
        // Mode proof: the default run never falls back to the classic
        // engine, and the classic run never explores antichain macro-states.
        assert_eq!(
            lazy.antichain_stats.classic_fallbacks, 0,
            "{}: default mode routed decisions classically",
            b.name
        );
        assert_eq!(
            classic.antichain_stats.macro_states_explored, 0,
            "{}: classic mode ran the antichain search",
            b.name
        );
        classic_totals.classic_fallbacks += classic.antichain_stats.classic_fallbacks;
    }
    assert!(
        classic_totals.classic_fallbacks > 0,
        "no classic fallback was ever recorded: the mode switch is dead"
    );
}

/// The MicroBench group — fast enough to run twice in the tier-1 suite.
#[test]
fn engine_mode_never_changes_a_microbench_analysis() {
    let micro: Vec<Benchmark> =
        blazer_benchmarks::all().into_iter().filter(|b| b.group == Group::MicroBench).collect();
    assert!(!micro.is_empty());
    check_agreement(&micro);
}

/// The full 24-benchmark Table-1 suite. Ignored by default — the STAC and
/// literature programs are expensive to analyze twice in a debug build —
/// and run explicitly by CI (and by hand) via
/// `cargo test -p blazer-bench --test automata_equivalence -- --ignored`.
#[test]
#[ignore = "runs the full suite twice; minutes in debug builds"]
fn engine_mode_never_changes_any_table1_analysis() {
    check_agreement(&blazer_benchmarks::all());
}
