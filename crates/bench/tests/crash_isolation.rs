//! The benchmark harnesses survive a crashing benchmark: an injected panic
//! (`BLAZER_FAULT=panic:<n>`) produces a diagnostic row and the run
//! continues to completion.

use std::process::Command;

#[test]
fn table1_isolates_an_injected_crash() {
    // Restrict to two cheap LP-using benchmarks: the panic fault fires once
    // per process at the 3rd LP call, so the first benchmark crashes and
    // the second must still produce a normal row.
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .arg("1")
        .env("BLAZER_FAULT", "panic:3")
        .env("BLAZER_ONLY", "sanity_safe,sanity_unsafe")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.code().is_some(), "harness must exit, not die on a signal");
    assert!(stdout.contains("CRASHED"), "diagnostic row expected:\n{stdout}");
    assert!(stdout.contains("crashed (isolated"), "completion summary expected:\n{stdout}");
    // The non-crashing benchmark still produced a verdict row.
    assert!(
        stdout.contains("safe") || stdout.contains("attack"),
        "surviving row expected:\n{stdout}"
    );
}

#[test]
fn table1_subset_filter_runs_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .arg("1")
        .env("BLAZER_ONLY", "sanity_safe")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all 1 selected verdicts match Table 1"), "{stdout}");
}
