//! Seeded vs from-⊤ fixpoint equivalence over the benchmark suite.
//!
//! Incremental fixpoint seeding is a pure pass-count optimization: starting
//! a child trail's fixpoint from its parent's converged post-states must
//! never change a verdict. These tests run benchmarks twice — seeding on
//! (the default) and off ([`blazer_core::Config::with_seeding`], so no
//! environment-variable racing) — and demand identical verdicts and
//! refinement trees, plus a non-increasing total fixpoint pass count.
//!
//! The driver's own debug cross-check (every seeded trail re-derived from
//! ⊥, divergences discarded) is deliberately switched *off* here via
//! `BLAZER_CHECK_SEEDS=0`: with the fallback disabled, the seeded outcomes
//! compared below are the real seeded results, so verdict equality is a
//! genuine end-to-end property rather than one manufactured by the
//! fallback. The cross-check itself still runs throughout the rest of the
//! debug test suite.

use blazer_bench::config_for;
use blazer_benchmarks::{Benchmark, Group};
use blazer_core::{Blazer, SeedStats};

fn check_equivalence(benchmarks: &[Benchmark]) {
    std::env::set_var("BLAZER_CHECK_SEEDS", "0");
    std::env::remove_var("BLAZER_NO_SEED");

    let mut totals = (SeedStats::default(), SeedStats::default());
    for b in benchmarks {
        let program = b.compile();
        let base = config_for(b.group).with_threads(1);
        let seeded = Blazer::new(base.clone().with_seeding(true))
            .analyze(&program, b.function)
            .expect("seeded analysis succeeds");
        let unseeded = Blazer::new(base.with_seeding(false))
            .analyze(&program, b.function)
            .expect("unseeded analysis succeeds");

        assert_eq!(
            format!("{:?}", seeded.verdict),
            format!("{:?}", unseeded.verdict),
            "{}: seeding changed the verdict",
            b.name
        );
        assert_eq!(
            seeded.tree.len(),
            unseeded.tree.len(),
            "{}: seeding changed the refinement tree",
            b.name
        );
        assert_eq!(
            unseeded.seed_stats.trails_seeded, 0,
            "{}: with_seeding(false) must not seed",
            b.name
        );
        let passes = |s: &SeedStats| s.seeded_passes + s.unseeded_passes;
        assert!(
            passes(&seeded.seed_stats) <= passes(&unseeded.seed_stats),
            "{}: seeding increased fixpoint passes ({:?} vs {:?})",
            b.name,
            seeded.seed_stats,
            unseeded.seed_stats
        );

        let acc = |t: &mut SeedStats, s: &SeedStats| {
            t.trails_seeded += s.trails_seeded;
            t.trails_unseeded += s.trails_unseeded;
            t.seeds_rejected += s.seeds_rejected;
            t.seeded_passes += s.seeded_passes;
            t.unseeded_passes += s.unseeded_passes;
        };
        acc(&mut totals.0, &seeded.seed_stats);
        acc(&mut totals.1, &unseeded.seed_stats);
    }

    // The run must actually exercise the seeding path: plenty of trails
    // have parents (every refinement split produces two), so a zero here
    // means the plumbing silently fell back to ⊥ everywhere.
    assert!(totals.0.trails_seeded > 0, "no trail was seeded: {:?}", totals.0);
    let total = |s: &SeedStats| s.seeded_passes + s.unseeded_passes;
    assert!(
        total(&totals.0) < total(&totals.1),
        "seeding saved no passes: {:?} vs {:?}",
        totals.0,
        totals.1
    );
}

/// The MicroBench group — every program whose refinement actually splits
/// trails finishes quickly, so this stays in the default (tier-1) run.
#[test]
fn seeding_never_changes_a_microbench_verdict() {
    let micro: Vec<Benchmark> =
        blazer_benchmarks::all().into_iter().filter(|b| b.group == Group::MicroBench).collect();
    assert!(!micro.is_empty());
    check_equivalence(&micro);
}

/// The full 24-benchmark Table-1 suite. Ignored by default — the STAC and
/// literature programs are expensive to analyze twice in a debug build —
/// and run explicitly by CI (and by hand) via
/// `cargo test -p blazer-bench --test seeding_equivalence -- --ignored`.
#[test]
#[ignore = "runs the full suite twice; minutes in debug builds"]
fn seeding_never_changes_any_table1_verdict() {
    check_equivalence(&blazer_benchmarks::all());
}
