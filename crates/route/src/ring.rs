//! The consistent-hash ring that shards cache keys across the fleet.
//!
//! Each backend owns [`VNODES`] points on a 64-bit ring (FNV-1a of
//! `addr\u{1}vnode`); a request's content-address hash lands between two
//! points and is owned by the next point clockwise. Virtual nodes smooth
//! the split (one point per backend would make shard sizes wildly uneven),
//! and consistent hashing is what makes failover cheap: removing one
//! backend only remaps the keys it owned — every other key keeps its
//! shard, so the surviving verdict caches stay hot.

use blazer_ir::json::fnv1a64;

/// Virtual nodes per backend. 64 keeps the largest/smallest shard ratio
/// near 1 for small fleets while the whole ring (a few hundred points)
/// still fits in one cache line's worth of binary search.
pub const VNODES: usize = 64;

/// An immutable ring over a fixed backend list. Health is deliberately
/// *not* baked in: the ring answers "what is this key's preference order",
/// and the router filters that order through live health state per
/// request, so no rebuild (and no key remap) happens on ejection.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    /// Builds the ring for `backends` (order defines the indices the
    /// router uses everywhere else).
    pub fn new(backends: &[String]) -> Ring {
        let mut points = Vec::with_capacity(backends.len() * VNODES);
        for (index, addr) in backends.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((fnv1a64(format!("{addr}\u{1}{vnode}").as_bytes()), index));
            }
        }
        points.sort_unstable();
        Ring { points, backends: backends.len() }
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The key's primary shard: the owner of the first point at or after
    /// `hash`, wrapping. `None` only for an empty ring.
    pub fn primary(&self, hash: u64) -> Option<usize> {
        self.candidates(hash).first().copied()
    }

    /// Every backend in ring order starting at `hash`'s owner, wrapping
    /// and deduplicated: `candidates(h)[0]` is the primary shard and the
    /// rest are the failover order. The order is a pure function of the
    /// backend list and the hash, so every router instance agrees on it.
    pub fn candidates(&self, hash: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|(point, _)| *point < hash);
        let mut seen = vec![false; self.backends];
        for offset in 0..self.points.len() {
            let (_, index) = self.points[(start + offset) % self.points.len()];
            if !seen[index] {
                seen[index] = true;
                order.push(index);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn candidates_cover_every_backend_exactly_once() {
        let ring = Ring::new(&addrs(5));
        for hash in [0u64, 1, u64::MAX, fnv1a64(b"some key")] {
            let mut order = ring.candidates(hash);
            assert_eq!(order.first().copied(), ring.primary(hash));
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn placement_is_deterministic_and_reasonably_balanced() {
        let ring = Ring::new(&addrs(3));
        let again = Ring::new(&addrs(3));
        let mut owned = [0usize; 3];
        for i in 0..3000u64 {
            let hash = fnv1a64(format!("key-{i}").as_bytes());
            let primary = ring.primary(hash).unwrap();
            assert_eq!(Some(primary), again.primary(hash), "ring must be deterministic");
            owned[primary] += 1;
        }
        for (index, count) in owned.iter().enumerate() {
            // A fair split is 1000 each; 64 vnodes can still be lumpy, so
            // only starved and dominant shards fail (the exact split is
            // fixed by the hash, so this cannot flake).
            assert!((300..=1900).contains(count), "shard {index} owns {count} of 3000");
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let full = Ring::new(&addrs(4));
        // Drop the last backend; survivors keep their indices.
        let reduced = Ring::new(&addrs(3));
        for i in 0..2000u64 {
            let hash = fnv1a64(format!("key-{i}").as_bytes());
            let before = full.primary(hash).unwrap();
            if before < 3 {
                assert_eq!(
                    reduced.primary(hash),
                    Some(before),
                    "a key owned by a surviving backend must not move"
                );
            }
        }
    }

    #[test]
    fn failover_order_skips_to_the_next_distinct_backend() {
        let ring = Ring::new(&addrs(2));
        for i in 0..100u64 {
            let order = ring.candidates(fnv1a64(format!("k{i}").as_bytes()));
            assert_eq!(order.len(), 2);
            assert_ne!(order[0], order[1]);
        }
    }

    #[test]
    fn empty_ring_has_no_candidates() {
        let ring = Ring::new(&[]);
        assert!(ring.candidates(42).is_empty());
        assert_eq!(ring.primary(42), None);
    }
}
