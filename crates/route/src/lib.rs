//! # blazer-route
//!
//! A fault-tolerant router over a fleet of `blazer-serve` backends: one
//! HTTP/1.1 front door that shards submissions across the fleet by their
//! content-addressed cache key and keeps answering through backend
//! failures.
//!
//! ```text
//! POST /analyze   object or array body, exactly the backend API
//! GET  /health    router liveness + live-backend count
//! GET  /stats     router counters + per-backend health + fleet aggregates
//! ```
//!
//! The stack, front to back:
//!
//! 1. **Consistent-hash sharding.** A request's [`cache key`] hash picks
//!    its shard on a [`ring::Ring`] of 64 virtual nodes per backend, so
//!    identical submissions always land on the same backend — whose
//!    verdict cache and single-flight then do their work — and removing a
//!    backend remaps only the keys it owned.
//! 2. **Health-driven candidate filtering.** An active checker probes
//!    every backend's `/health` on an interval, and the request path
//!    reports every forward's outcome into the same
//!    [`health::FleetHealth`] state machine: consecutive failures eject,
//!    consecutive successes reinstate. Ejected backends are skipped, not
//!    removed — the ring never rebuilds.
//! 3. **Retry with failover.** A failed forward (connect failure, IO
//!    error, or a `5xx` answer) moves to the key's next ring candidate
//!    after a capped exponential backoff with deterministic jitter; the
//!    same backend is never retried for the same request. Only when every
//!    candidate has failed does the client see a `503`, with a structured
//!    `"fleet"` body listing every attempt.
//! 4. **Fleet-wide single-flight.** Concurrent identical submissions
//!    coalesce at the router ([`blazer_serve::cache::SingleFlight`]), so
//!    a stampede costs one backend run even when failover would otherwise
//!    scatter it.
//! 5. **Sharded batches.** An array body is split per shard, the
//!    sub-batches fan out concurrently ([`blazer_serve::pool::scoped_map`]),
//!    and the answers re-merge in submission order; a shard that fails its
//!    sub-batch degrades to per-item failover, so one dead backend costs
//!    a batch nothing but latency.
//!
//! Re-sent requests are safe by construction: a forward is only retried
//! when no response byte arrived, and analyses are pure functions of
//! `(source, config)`, so a duplicate run returns the identical verdict
//! (and usually hits the backend's cache).
//!
//! [`cache key`]: blazer_serve::cache::CacheKey

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod health;
pub mod ring;
pub mod sessions;

use blazer_http as http;
use blazer_ir::json::{fnv1a64, Json};
use blazer_serve::api::AnalyzeRequest;
use blazer_serve::cache::{CacheKey, FlightOutcome, Joined, SingleFlight};
use blazer_serve::client::Session;
use blazer_serve::pool;
use health::{FleetHealth, HealthOptions};
use ring::Ring;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Backoff policy for retries after a failed forward.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry backoff; also the jitter modulus.
    pub base: Duration,
    /// Cap on the exponential component.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { base: Duration::from_millis(10), cap: Duration::from_millis(200) }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (1-based) for `key_hash`'s
    /// request: `min(cap, base·2^(attempt−1))` plus a deterministic jitter
    /// in `[0, base)` hashed from the key and the attempt number. The same
    /// request always retries on the same reproducible schedule (chaos
    /// tests stay deterministic), while different keys desynchronize
    /// instead of thundering onto the surviving backend in lockstep.
    pub fn delay(&self, key_hash: u64, attempt: u32) -> Duration {
        let base_ms = (self.base.as_millis() as u64).max(1);
        let cap_ms = self.cap.as_millis() as u64;
        let exponent = attempt.saturating_sub(1).min(16);
        let exponential = base_ms.saturating_mul(1u64 << exponent).min(cap_ms);
        let jitter = fnv1a64(format!("{key_hash:016x}:{attempt}").as_bytes()) % base_ms;
        Duration::from_millis(exponential + jitter)
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouteOptions {
    /// Bind address; port `0` picks an ephemeral port (tests).
    pub addr: String,
    /// Backend `host:port` addresses — the shards. Order defines the
    /// backend indices reported by `/stats`.
    pub backends: Vec<String>,
    /// Worker-pool width; `None` defers to `BLAZER_ROUTE_WORKERS`, then
    /// the machine's available parallelism plus one spare connection
    /// worker ([`pool::serving_width`]).
    pub workers: Option<usize>,
    /// Bounded job-queue depth; a full queue answers `503`.
    pub queue_depth: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Requests served on one keep-alive client connection before the
    /// router closes it.
    pub max_requests_per_connection: u64,
    /// Active health-checker tuning.
    pub health: HealthOptions,
    /// Retry backoff tuning.
    pub retry: RetryPolicy,
    /// Router-layer fault injection; `None` reads `BLAZER_FAULT` (tests
    /// running in-process pass `Some` instead of mutating the process
    /// environment).
    pub fault: Option<fault::FaultPoints>,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            addr: "127.0.0.1:8650".to_string(),
            backends: Vec::new(),
            workers: None,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            max_requests_per_connection: http::DEFAULT_MAX_REQUESTS_PER_CONNECTION,
            health: HealthOptions::default(),
            retry: RetryPolicy::default(),
            fault: None,
        }
    }
}

/// Live router counters (all monotonic).
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Client TCP connections handled by a worker.
    pub connections: AtomicU64,
    /// HTTP requests served across all routes.
    pub requests: AtomicU64,
    /// `/analyze` submissions (batch items included).
    pub analyze_requests: AtomicU64,
    /// Batch (array-bodied) `/analyze` requests.
    pub batch_requests: AtomicU64,
    /// Forward attempts made after a failure (each is one backoff pause
    /// followed by a try on the next candidate).
    pub retries: AtomicU64,
    /// Requests ultimately answered by a backend other than their key's
    /// primary shard.
    pub failovers: AtomicU64,
    /// Submissions answered from a concurrent identical in-flight forward
    /// instead of reaching a backend themselves.
    pub coalesced: AtomicU64,
    /// Requests that exhausted every candidate and were answered with the
    /// structured fleet `503`.
    pub fleet_unavailable: AtomicU64,
    /// Requests answered with a `4xx` status (batch items excluded).
    pub client_errors: AtomicU64,
    /// Connections rejected `503` by the full job queue.
    pub busy_rejections: AtomicU64,
}

struct Ctx {
    backends: Vec<String>,
    ring: Ring,
    health: FleetHealth,
    health_opts: HealthOptions,
    retry: RetryPolicy,
    fault: fault::Armed,
    flights: SingleFlight,
    stats: RouterStats,
    /// One pool of parked keep-alive [`Session`]s per backend (capacity =
    /// the worker width, the most forwards that can be in flight at
    /// once): forwards check a session out, use it exclusively, and park
    /// it back, so concurrent requests hashing to the same shard each
    /// keep their *own* warm connection instead of serializing on — or
    /// thrashing — a single parked one.
    sessions: Vec<sessions::SessionPool>,
    started: Instant,
    workers: usize,
    queue_depth: usize,
    max_body_bytes: usize,
    max_requests_per_connection: u64,
    shutdown: Arc<AtomicBool>,
}

/// A running router. Call [`Router::stop`] for an orderly shutdown or
/// [`Router::wait`] to serve until the process dies.
pub struct Router {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    checker: Option<JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

impl Router {
    /// Binds, spawns the worker pool, accept loop, and health checker, and
    /// returns immediately. Fails fast on an empty backend list — a router
    /// with nothing behind it can only ever answer `503`.
    pub fn start(opts: RouteOptions) -> std::io::Result<Router> {
        if opts.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let width = pool::serving_width(opts.workers, "BLAZER_ROUTE_WORKERS");
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            ring: Ring::new(&opts.backends),
            health: FleetHealth::new(
                opts.backends.len(),
                opts.health.eject_after,
                opts.health.reinstate_after,
            ),
            sessions: opts.backends.iter().map(|_| sessions::SessionPool::new(width)).collect(),
            backends: opts.backends,
            health_opts: opts.health,
            retry: opts.retry,
            fault: fault::Armed::new(opts.fault.unwrap_or_else(fault::FaultPoints::from_env)),
            flights: SingleFlight::new(),
            stats: RouterStats::default(),
            started: Instant::now(),
            workers: width,
            queue_depth: opts.queue_depth,
            max_body_bytes: opts.max_body_bytes,
            max_requests_per_connection: opts.max_requests_per_connection.max(1),
            shutdown: Arc::clone(&shutdown),
        });
        let (tx, rx) = sync_channel::<TcpStream>(opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..width)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || worker_loop(&rx, &ctx))
            })
            .collect();
        let checker = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || checker_loop(&ctx))
        };
        let accept = {
            let ctx = Arc::clone(&ctx);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Responses are small; Nagle + the peer's delayed ACK
                    // would add ~40ms per exchange.
                    let _ = stream.set_nodelay(true);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            ctx.stats.busy_rejections.fetch_add(1, Ordering::SeqCst);
                            let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
                            http::write_json_response(
                                &mut &stream,
                                503,
                                &error_body("router busy: job queue full, retry later").to_string(),
                                true,
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
        };
        Ok(Router { addr, shutdown, accept: Some(accept), workers, checker: Some(checker), ctx })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live router counters.
    pub fn stats(&self) -> &RouterStats {
        &self.ctx.stats
    }

    /// The fleet health state (for in-process inspection).
    pub fn health(&self) -> &FleetHealth {
        &self.ctx.health
    }

    /// Blocks until the router shuts down, then joins every thread.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(checker) = self.checker.take() {
            let _ = checker.join();
        }
    }

    /// Orderly shutdown: stop accepting, drain queued connections, join
    /// every thread.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept call; the flag makes it exit, dropping
        // the queue sender, which in turn drains and stops the workers.
        let _ = TcpStream::connect(self.addr);
        self.wait();
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx) {
    loop {
        let received = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match received {
            Ok(mut stream) => handle_connection(&mut stream, ctx),
            Err(_) => break,
        }
    }
}

/// Probes every backend, sleeps the interval, repeats — in small slices so
/// shutdown is never delayed by a full interval.
fn checker_loop(ctx: &Ctx) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        for (index, addr) in ctx.backends.iter().enumerate() {
            if ctx.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match health::probe(addr, ctx.health_opts.timeout) {
                Ok(()) => {
                    ctx.health.record_success(index);
                }
                Err(error) => {
                    ctx.health.record_failure(index, &error);
                }
            }
        }
        let mut remaining = ctx.health_opts.interval;
        while !remaining.is_zero() && !ctx.shutdown.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

fn error_body(error: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(error.into()))])
}

/// Serves one client connection: the same persistent-reader keep-alive
/// loop as the backend itself, with the router's route table.
fn handle_connection(stream: &mut TcpStream, ctx: &Ctx) {
    ctx.stats.connections.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_read_timeout(Some(http::IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
    let stream: &TcpStream = stream;
    let mut reader = BufReader::new(stream);
    for served in 1..=ctx.max_requests_per_connection {
        let request = match http::read_request(&mut reader, ctx.max_body_bytes) {
            Ok(r) => r,
            Err(http::ReadError::Closed) => return,
            Err(http::ReadError::Bad(e)) => {
                ctx.stats.requests.fetch_add(1, Ordering::SeqCst);
                ctx.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                http::write_json_response(
                    &mut { stream },
                    e.status,
                    &error_body(e.message).to_string(),
                    true,
                );
                return;
            }
        };
        ctx.stats.requests.fetch_add(1, Ordering::SeqCst);
        let close = request.close || served == ctx.max_requests_per_connection;
        let (status, body) = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health") => health_route(ctx),
            ("GET", "/stats") => (200, stats_body(ctx).to_string()),
            ("POST", "/analyze") => handle_analyze(ctx, &request.body),
            (_, "/health" | "/stats" | "/analyze") => {
                (405, error_body(format!("method {} not allowed here", request.method)).to_string())
            }
            (_, path) => (404, error_body(format!("no such route: {path}")).to_string()),
        };
        if (400..500).contains(&status) {
            ctx.stats.client_errors.fetch_add(1, Ordering::SeqCst);
        }
        http::write_json_response(&mut { stream }, status, &body, close);
        if close {
            return;
        }
    }
}

/// Router liveness: `200` while at least one backend is up, `503` once
/// the whole fleet is ejected (the router itself is alive either way —
/// the status is what *its* upstream health checks should see).
fn health_route(ctx: &Ctx) -> (u16, String) {
    let up = ctx.health.up_count();
    let body = Json::obj([
        ("ok", Json::Bool(up > 0)),
        ("service", Json::from("blazer-route")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("backends_up", Json::from(up)),
        ("backends_total", Json::from(ctx.backends.len())),
        ("uptime_s", Json::secs(ctx.started.elapsed().as_secs_f64())),
    ]);
    (if up > 0 { 200 } else { 503 }, body.to_string())
}

/// Routes an `/analyze` body: an object is one sharded submission, an
/// array is split per shard and re-merged.
fn handle_analyze(ctx: &Ctx, body: &[u8]) -> (u16, String) {
    let doc = match std::str::from_utf8(body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(format!("bad request: {e}")).to_string()),
    };
    let text = std::str::from_utf8(body).expect("checked just above");
    if let Json::Arr(items) = doc {
        return handle_batch(ctx, &items);
    }
    ctx.stats.analyze_requests.fetch_add(1, Ordering::SeqCst);
    match AnalyzeRequest::from_json(&doc) {
        Ok(req) => route_one(ctx, &req.cache_key(), text, None),
        // Not a well-formed request: the shard owns the 400 shape (the
        // router must not invent its own error dialect), routed by raw
        // body hash, with no single-flight (there is no canonical key).
        Err(_) => route_with_failover(ctx, fnv1a64(body), text, None),
    }
}

/// One planned batch item.
struct PlannedItem {
    /// Position in the submitted array (the merge slot).
    index: usize,
    /// The item re-serialized, for sub-batch and per-item forwards.
    body: String,
    /// Canonical key when the item parses as a request.
    key: Option<CacheKey>,
    /// Sharding hash: the key's hash, or the raw body's for malformed
    /// items (which still route *somewhere* so the shard can answer 400).
    hash: u64,
}

/// A batch: items are grouped by their primary live shard, the sub-batches
/// fan out concurrently, and the per-item answers re-merge in submission
/// order. A shard that fails its whole sub-batch (death mid-batch) is
/// excluded and its items degrade to individual failover, so a backend
/// loss costs latency, never answers.
fn handle_batch(ctx: &Ctx, items: &[Json]) -> (u16, String) {
    ctx.stats.batch_requests.fetch_add(1, Ordering::SeqCst);
    ctx.stats.analyze_requests.fetch_add(items.len() as u64, Ordering::SeqCst);
    if items.is_empty() {
        return (200, "[]".to_string());
    }
    let planned: Vec<PlannedItem> = items
        .iter()
        .enumerate()
        .map(|(index, item)| {
            let body = item.to_string();
            match AnalyzeRequest::from_json(item) {
                Ok(req) => {
                    let key = req.cache_key();
                    let hash = fnv1a64(key.canonical().as_bytes());
                    PlannedItem { index, body, key: Some(key), hash }
                }
                Err(_) => {
                    let hash = fnv1a64(body.as_bytes());
                    PlannedItem { index, body, key: None, hash }
                }
            }
        })
        .collect();
    let mut groups: std::collections::BTreeMap<usize, Vec<PlannedItem>> = Default::default();
    for item in planned {
        let candidates = ctx.ring.candidates(item.hash);
        let shard = candidates
            .iter()
            .copied()
            .find(|&index| ctx.health.is_up(index))
            .or_else(|| candidates.first().copied())
            .unwrap_or(0);
        groups.entry(shard).or_default().push(item);
    }
    let groups: Vec<(usize, Vec<PlannedItem>)> = groups.into_iter().collect();
    let width = pool::clamped_width(ctx.workers, groups.len());
    let group_results =
        pool::scoped_map(&groups, width, |_, (shard, group)| route_group(ctx, *shard, group));
    let mut slots: Vec<Option<String>> = (0..items.len()).map(|_| None).collect();
    for (position, result) in group_results.into_iter().flatten() {
        slots[position] = Some(result);
    }
    let merged: Vec<String> =
        slots.into_iter().map(|s| s.expect("every item lands in exactly one group")).collect();
    (200, format!("[{}]", merged.join(", ")))
}

/// One shard's slice of a batch: a single sub-batch POST when the shard
/// cooperates, per-item failover (with the failed shard excluded) when it
/// does not.
fn route_group(ctx: &Ctx, shard: usize, group: &[PlannedItem]) -> Vec<(usize, String)> {
    if let Some(bodies) = try_sub_batch(ctx, shard, group) {
        return group.iter().map(|item| item.index).zip(bodies).collect();
    }
    group
        .iter()
        .map(|item| {
            let (status, response) = match &item.key {
                Some(key) => route_one(ctx, key, &item.body, Some(shard)),
                None => route_with_failover(ctx, item.hash, &item.body, Some(shard)),
            };
            (item.index, with_item_status(status, &response))
        })
        .collect()
}

/// Forwards one sub-batch to its shard. `None` means the shard could not
/// answer it (transport failure, a non-`200` envelope, or a shape the
/// router doesn't recognize) and the caller must fail the items over.
fn try_sub_batch(ctx: &Ctx, shard: usize, group: &[PlannedItem]) -> Option<Vec<String>> {
    let bodies: Vec<&str> = group.iter().map(|item| item.body.as_str()).collect();
    let batch = format!("[{}]", bodies.join(", "));
    match forward(ctx, shard, &batch) {
        Ok((200, response)) => {
            ctx.health.record_success(shard);
            match Json::parse(&response) {
                Ok(Json::Arr(results)) if results.len() == group.len() => {
                    Some(results.iter().map(Json::to_string).collect())
                }
                // An unrecognizable envelope: treat as a failed sub-batch.
                // The per-item retries are safe (verdicts are pure) and
                // usually hit the shard-run's cache.
                _ => None,
            }
        }
        Ok((status, _response)) => {
            ctx.health.record_failure(shard, &format!("batch answered {status}"));
            None
        }
        Err(error) => {
            ctx.health.record_failure(shard, &error.to_string());
            None
        }
    }
}

/// One keyed submission through the router's single-flight: concurrent
/// identical submissions ride one forward, even across failover.
fn route_one(ctx: &Ctx, key: &CacheKey, body: &str, exclude: Option<usize>) -> (u16, String) {
    let hash = fnv1a64(key.canonical().as_bytes());
    match ctx.flights.join(key) {
        Joined::Follower(outcome) => {
            ctx.stats.coalesced.fetch_add(1, Ordering::SeqCst);
            (outcome.status, outcome.body)
        }
        Joined::Leader(token) => {
            let (status, response) = route_with_failover(ctx, hash, body, exclude);
            token.complete(FlightOutcome { status, body: response.clone() });
            (status, response)
        }
    }
}

/// The failover core: try the key's candidates in ring order — live ones
/// first, every candidate as a last resort when health has ejected them
/// all — never the same backend twice, with a backoff pause before every
/// retry. A non-`5xx` answer wins immediately (a backend's `400`/`422` is
/// a *verdict about the request*, identical on every backend); `5xx` and
/// transport errors advance to the next candidate. Exhaustion answers the
/// structured fleet `503`.
fn route_with_failover(
    ctx: &Ctx,
    key_hash: u64,
    body: &str,
    exclude: Option<usize>,
) -> (u16, String) {
    let candidates = ctx.ring.candidates(key_hash);
    let primary = candidates.first().copied();
    let mut order: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&index| ctx.health.is_up(index) && Some(index) != exclude)
        .collect();
    if order.is_empty() {
        // Stale health data must not become a refusal to even try.
        order = candidates.iter().copied().filter(|&index| Some(index) != exclude).collect();
    }
    if order.is_empty() {
        // A one-backend fleet whose only shard was excluded: retrying it
        // beats answering nothing.
        order = candidates;
    }
    let mut attempts: Vec<(String, String)> = Vec::new();
    for (attempt, &index) in order.iter().enumerate() {
        if attempt > 0 {
            ctx.stats.retries.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(ctx.retry.delay(key_hash, attempt as u32));
        }
        match forward(ctx, index, body) {
            Ok((status, response)) if status < 500 => {
                ctx.health.record_success(index);
                if Some(index) != primary {
                    ctx.stats.failovers.fetch_add(1, Ordering::SeqCst);
                }
                return (status, response);
            }
            Ok((status, _response)) => {
                ctx.health.record_failure(index, &format!("answered {status}"));
                attempts.push((ctx.backends[index].clone(), format!("answered {status}")));
            }
            Err(error) => {
                ctx.health.record_failure(index, &error.to_string());
                attempts.push((ctx.backends[index].clone(), error.to_string()));
            }
        }
    }
    ctx.stats.fleet_unavailable.fetch_add(1, Ordering::SeqCst);
    (503, fleet_error_body(key_hash, &attempts).to_string())
}

/// One forward to one backend: check out (or dial) a pooled session,
/// exchange one request, park the session back on success. On any error
/// the session is dropped — its connection state is unknown — and the
/// next forward dials fresh. The pool is per-backend and holds up to the
/// worker width of warm sessions, so concurrent forwards to one shard
/// never queue on (or discard) each other's connections.
fn forward(ctx: &Ctx, index: usize, body: &str) -> std::io::Result<(u16, String)> {
    if ctx.fault.take_connect() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "injected route-connect fault",
        ));
    }
    let mut session = match ctx.sessions[index].checkout() {
        Some(session) => session,
        None => dial(ctx, index)?,
    };
    if ctx.fault.take_read() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected route-read fault",
        ));
    }
    let (status, response) = session.request("POST", "/analyze", Some(body))?;
    ctx.sessions[index].park(session);
    Ok((status, response))
}

/// Dials backend `index` with the health timeout bounding the connect (a
/// dead host must cost one timeout, not the OS's multi-minute default).
fn dial(ctx: &Ctx, index: usize) -> std::io::Result<Session> {
    let addr = &ctx.backends[index];
    let target = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "address resolved to nothing")
    })?;
    let stream = TcpStream::connect_timeout(&target, ctx.health_opts.timeout)?;
    let _ = stream.set_nodelay(true);
    Ok(Session::from_stream(stream, addr))
}

/// The structured body behind the router's `503`: which key failed, and
/// what every candidate answered, so "the fleet is down" is diagnosable
/// from the client side alone.
fn fleet_error_body(key_hash: u64, attempts: &[(String, String)]) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from("fleet: every candidate backend failed")),
        (
            "fleet",
            Json::obj([
                ("key", Json::from(format!("{key_hash:016x}"))),
                (
                    "attempts",
                    Json::Arr(
                        attempts
                            .iter()
                            .map(|(backend, error)| {
                                Json::obj([
                                    ("backend", Json::from(backend.clone())),
                                    ("error", Json::from(error.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Prefixes a batch item's body with its per-item HTTP status (the same
/// shape the backend gives its own batch items; bodies that already carry
/// one — sub-batch answers — pass through [`try_sub_batch`] untouched).
fn with_item_status(status: u16, body: &str) -> String {
    match Json::parse(body) {
        Ok(Json::Obj(mut pairs)) => {
            pairs.retain(|(k, _)| k != "status");
            pairs.insert(0, ("status".to_string(), Json::from(u64::from(status))));
            Json::Obj(pairs).to_string()
        }
        _ => body.to_string(),
    }
}

/// `GET /stats`: router counters, per-backend health + forwarded backend
/// stats (fetched concurrently on one-shot bounded connections, so a dead
/// backend delays the answer by one timeout, not forever), and fleet-wide
/// sums of the counters that prove end-to-end properties (`analyses_run`
/// across the fleet is how the chaos tests assert "no duplicate runs").
fn stats_body(ctx: &Ctx) -> Json {
    let snapshots = ctx.health.snapshot();
    let indices: Vec<usize> = (0..ctx.backends.len()).collect();
    let fetched =
        pool::scoped_map(&indices, indices.len(), |_, &index| fetch_backend_stats(ctx, index));
    let mut fleet = FleetSums::default();
    let backends: Vec<Json> = indices
        .iter()
        .map(|&index| {
            let snapshot = &snapshots[index];
            let mut pairs = vec![
                ("addr".to_string(), Json::from(ctx.backends[index].clone())),
                ("health".to_string(), Json::from(if snapshot.up { "up" } else { "down" })),
                (
                    "consecutive_failures".to_string(),
                    Json::from(snapshot.consecutive_failures as u64),
                ),
                (
                    "consecutive_successes".to_string(),
                    Json::from(snapshot.consecutive_successes as u64),
                ),
                (
                    "last_error".to_string(),
                    snapshot.last_error.clone().map_or(Json::Null, Json::from),
                ),
            ];
            match &fetched[index] {
                Ok(stats) => {
                    fleet.absorb(stats);
                    pairs.push(("stats".to_string(), stats.clone()));
                }
                Err(error) => pairs.push(("error".to_string(), Json::from(error.clone()))),
            }
            Json::Obj(pairs)
        })
        .collect();
    let s = &ctx.stats;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("service", Json::from("blazer-route")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("uptime_s", Json::secs(ctx.started.elapsed().as_secs_f64())),
        ("backends_up", Json::from(snapshots.iter().filter(|b| b.up).count())),
        ("backends_total", Json::from(ctx.backends.len())),
        (
            "router",
            Json::obj([
                ("workers", Json::from(ctx.workers)),
                ("queue_depth", Json::from(ctx.queue_depth)),
                ("connections", Json::from(s.connections.load(Ordering::SeqCst))),
                ("requests", Json::from(s.requests.load(Ordering::SeqCst))),
                ("analyze_requests", Json::from(s.analyze_requests.load(Ordering::SeqCst))),
                ("batch_requests", Json::from(s.batch_requests.load(Ordering::SeqCst))),
                ("retries", Json::from(s.retries.load(Ordering::SeqCst))),
                ("failovers", Json::from(s.failovers.load(Ordering::SeqCst))),
                ("ejections", Json::from(ctx.health.ejections.load(Ordering::SeqCst))),
                ("reinstatements", Json::from(ctx.health.reinstatements.load(Ordering::SeqCst))),
                ("coalesced", Json::from(s.coalesced.load(Ordering::SeqCst))),
                ("fleet_unavailable", Json::from(s.fleet_unavailable.load(Ordering::SeqCst))),
                ("client_errors", Json::from(s.client_errors.load(Ordering::SeqCst))),
                ("busy_rejections", Json::from(s.busy_rejections.load(Ordering::SeqCst))),
            ]),
        ),
        (
            "fleet",
            Json::obj([
                ("analyses_run", Json::from(fleet.analyses_run)),
                ("analyze_requests", Json::from(fleet.analyze_requests)),
                ("coalesced", Json::from(fleet.coalesced)),
                ("cache_entries", Json::from(fleet.cache_entries)),
                ("cache_hits", Json::from(fleet.cache_hits)),
                ("cache_misses", Json::from(fleet.cache_misses)),
                ("cache_evictions", Json::from(fleet.cache_evictions)),
                ("cache_hit_rate", Json::Num(fleet.hit_rate())),
                (
                    "portfolio",
                    Json::obj([
                        ("requests", Json::from(fleet.portfolio_requests)),
                        ("wins_decomp", Json::from(fleet.wins_decomp)),
                        ("wins_selfcomp", Json::from(fleet.wins_selfcomp)),
                        ("revocations", Json::from(fleet.revocations)),
                    ]),
                ),
            ]),
        ),
        ("backends", Json::Arr(backends)),
    ])
}

/// Fleet-wide sums over reachable backends' `/stats`.
#[derive(Default)]
struct FleetSums {
    analyses_run: u64,
    analyze_requests: u64,
    coalesced: u64,
    cache_entries: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    portfolio_requests: u64,
    wins_decomp: u64,
    wins_selfcomp: u64,
    revocations: u64,
}

impl FleetSums {
    fn absorb(&mut self, stats: &Json) {
        let n = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        self.analyses_run += n(stats, "analyses_run");
        self.analyze_requests += n(stats, "analyze_requests");
        self.coalesced += n(stats, "coalesced");
        if let Some(cache) = stats.get("cache") {
            self.cache_entries += n(cache, "entries");
            self.cache_hits += n(cache, "hits");
            self.cache_misses += n(cache, "misses");
            self.cache_evictions += n(cache, "evictions");
        }
        if let Some(portfolio) = stats.get("portfolio") {
            self.portfolio_requests += n(portfolio, "requests");
            self.wins_decomp += n(portfolio, "wins_decomp");
            self.wins_selfcomp += n(portfolio, "wins_selfcomp");
            self.revocations += n(portfolio, "revocations");
        }
    }

    /// Fleet-wide hit rate over the summed counters (not an average of
    /// per-backend rates, which would overweight idle backends).
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One-shot `GET /stats` against backend `index`, bounded by the health
/// timeout at every phase — deliberately *not* the pooled session, which
/// an analyze forward may be holding for seconds.
fn fetch_backend_stats(ctx: &Ctx, index: usize) -> Result<Json, String> {
    use std::io::Write;
    let addr = &ctx.backends[index];
    let timeout = ctx.health_opts.timeout;
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve: {e}"))?
        .next()
        .ok_or_else(|| "resolve: no addresses".to_string())?;
    let mut stream =
        TcpStream::connect_timeout(&target, timeout).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    stream
        .write_all(http::format_request("GET", "/stats", addr, "", true).as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))?;
    let (status, body, _closes) = blazer_serve::client::read_response(&mut BufReader::new(stream))
        .map_err(|e| format!("read: {e}"))?;
    if status != 200 {
        return Err(format!("stats answered {status}"));
    }
    Json::parse(&body).map_err(|e| format!("parse: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::default();
        let key = fnv1a64(b"some canonical key");
        // Deterministic: the same (key, attempt) always sleeps the same.
        assert_eq!(policy.delay(key, 1), policy.delay(key, 1));
        assert_eq!(policy.delay(key, 3), policy.delay(key, 3));
        for attempt in 1..=12 {
            let d = policy.delay(key, attempt);
            // exponential ≤ cap, jitter < base.
            assert!(d <= policy.cap + policy.base, "attempt {attempt} slept {d:?}");
            assert!(d >= policy.base, "attempt {attempt} slept {d:?} under the base");
        }
        // The exponential component actually grows before the cap bites.
        let strip_jitter = |attempt: u32| {
            let jitter = fnv1a64(format!("{key:016x}:{attempt}").as_bytes()) % 10;
            policy.delay(key, attempt).as_millis() as u64 - jitter
        };
        assert_eq!(strip_jitter(1), 10);
        assert_eq!(strip_jitter(2), 20);
        assert_eq!(strip_jitter(3), 40);
        assert_eq!(strip_jitter(10), 200, "capped");
        // Different keys desynchronize.
        let other = fnv1a64(b"a different key");
        assert_ne!(
            policy.delay(key, 1).as_millis() * 1000 + policy.delay(key, 2).as_millis(),
            policy.delay(other, 1).as_millis() * 1000 + policy.delay(other, 2).as_millis(),
        );
    }

    #[test]
    fn starting_with_no_backends_fails_fast() {
        let opts = RouteOptions { addr: "127.0.0.1:0".to_string(), ..RouteOptions::default() };
        let Err(err) = Router::start(opts).map(|_| ()) else { panic!("must refuse to start") };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fleet_error_body_is_structured() {
        let body = fleet_error_body(
            0xdead_beef,
            &[
                ("127.0.0.1:1".to_string(), "connect: refused".to_string()),
                ("127.0.0.1:2".to_string(), "answered 500".to_string()),
            ],
        );
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
        let fleet = body.get("fleet").expect("fleet member");
        assert_eq!(fleet.get("key").and_then(Json::as_str), Some("00000000deadbeef"));
        let Some(Json::Arr(attempts)) = fleet.get("attempts") else { panic!("attempts array") };
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[1].get("error").and_then(Json::as_str), Some("answered 500"));
    }

    #[test]
    fn item_status_is_prefixed_once() {
        let wrapped = with_item_status(503, r#"{"ok": false, "error": "fleet"}"#);
        let doc = Json::parse(&wrapped).unwrap();
        let Json::Obj(pairs) = &doc else { panic!("object") };
        assert_eq!(pairs[0].0, "status");
        assert_eq!(doc.get("status").and_then(Json::as_u64), Some(503));
    }
}
