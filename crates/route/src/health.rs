//! Per-backend health tracking: the state machine that decides which ring
//! candidates are worth trying.
//!
//! Every backend is a two-state machine (`up`/`down`) driven by
//! *consecutive* outcomes: [`HealthOptions::eject_after`] failures in a
//! row eject an `up` backend, [`HealthOptions::reinstate_after`] successes
//! in a row reinstate a `down` one. Both the active checker (a periodic
//! `GET /health` probe per backend) and the request path (every forward's
//! outcome) feed the same machine, so a backend that dies mid-burst is
//! ejected by the traffic hitting it without waiting for the next probe
//! tick — and a drained backend (whose `/health` answers `503`) is ejected
//! cleanly without a single connection reset.
//!
//! Backends start `up`: an optimistic start lets traffic flow immediately,
//! and the request path's own failover covers a backend that was already
//! dead at router boot.

use blazer_http::{format_request, read_response};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Active health-checker configuration.
#[derive(Debug, Clone)]
pub struct HealthOptions {
    /// Pause between probe sweeps over the fleet.
    pub interval: Duration,
    /// Per-probe connect/read deadline (also the router's backend connect
    /// timeout and its `/stats` fan-out deadline).
    pub timeout: Duration,
    /// Consecutive failures that eject an `up` backend.
    pub eject_after: u32,
    /// Consecutive successes that reinstate a `down` backend.
    pub reinstate_after: u32,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            interval: Duration::from_millis(500),
            timeout: Duration::from_secs(2),
            eject_after: 3,
            reinstate_after: 2,
        }
    }
}

/// One backend's live health state.
#[derive(Debug, Clone)]
pub struct BackendHealth {
    /// Whether the backend is currently eligible for traffic.
    pub up: bool,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Successes since the last failure.
    pub consecutive_successes: u32,
    /// What the most recent failure looked like, for `/stats`.
    pub last_error: Option<String>,
}

impl BackendHealth {
    fn new() -> BackendHealth {
        BackendHealth {
            up: true,
            consecutive_failures: 0,
            consecutive_successes: 0,
            last_error: None,
        }
    }
}

/// The whole fleet's health, shared between the checker thread and every
/// request worker.
#[derive(Debug)]
pub struct FleetHealth {
    states: Mutex<Vec<BackendHealth>>,
    eject_after: u32,
    reinstate_after: u32,
    /// Up→down transitions (monotonic).
    pub ejections: AtomicU64,
    /// Down→up transitions (monotonic).
    pub reinstatements: AtomicU64,
}

impl FleetHealth {
    /// All-`up` state for `backends` machines with the given thresholds
    /// (both promoted to at least 1: a threshold of 0 would mean "eject on
    /// nothing at all").
    pub fn new(backends: usize, eject_after: u32, reinstate_after: u32) -> FleetHealth {
        FleetHealth {
            states: Mutex::new((0..backends).map(|_| BackendHealth::new()).collect()),
            eject_after: eject_after.max(1),
            reinstate_after: reinstate_after.max(1),
            ejections: AtomicU64::new(0),
            reinstatements: AtomicU64::new(0),
        }
    }

    /// Records one successful probe or forward; returns `true` when this
    /// success reinstated a down backend.
    pub fn record_success(&self, index: usize) -> bool {
        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        let state = &mut states[index];
        state.consecutive_failures = 0;
        state.consecutive_successes = state.consecutive_successes.saturating_add(1);
        if !state.up && state.consecutive_successes >= self.reinstate_after {
            state.up = true;
            state.last_error = None;
            self.reinstatements.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Records one failed probe or forward; returns `true` when this
    /// failure ejected an up backend.
    pub fn record_failure(&self, index: usize, error: &str) -> bool {
        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        let state = &mut states[index];
        state.consecutive_successes = 0;
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        state.last_error = Some(error.to_string());
        if state.up && state.consecutive_failures >= self.eject_after {
            state.up = false;
            self.ejections.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Whether backend `index` is currently eligible for traffic.
    pub fn is_up(&self, index: usize) -> bool {
        self.states.lock().unwrap_or_else(|e| e.into_inner())[index].up
    }

    /// Number of backends currently up.
    pub fn up_count(&self) -> usize {
        self.states.lock().unwrap_or_else(|e| e.into_inner()).iter().filter(|s| s.up).count()
    }

    /// A point-in-time copy of every backend's state (for `/stats`).
    pub fn snapshot(&self) -> Vec<BackendHealth> {
        self.states.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// One active probe: `GET /health` over a fresh `Connection: close`
/// connection, every phase bounded by `timeout`. Anything but a clean
/// `200` — connect refusal, timeout, a torn response, or the `503` a
/// draining backend answers — is a failure with a human-readable reason.
pub fn probe(addr: &str, timeout: Duration) -> Result<(), String> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve: {e}"))?
        .next()
        .ok_or_else(|| "resolve: no addresses".to_string())?;
    let mut stream =
        TcpStream::connect_timeout(&target, timeout).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    stream
        .write_all(format_request("GET", "/health", addr, "", true).as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))?;
    let (status, _body, _closes) =
        read_response(&mut BufReader::new(stream)).map_err(|e| format!("read: {e}"))?;
    if status == 200 {
        Ok(())
    } else {
        Err(format!("health answered {status}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejects_after_consecutive_failures_only() {
        let fleet = FleetHealth::new(2, 3, 2);
        assert!(!fleet.record_failure(0, "connect refused"));
        assert!(!fleet.record_failure(0, "connect refused"));
        // A success in between resets the streak.
        fleet.record_success(0);
        assert!(!fleet.record_failure(0, "connect refused"));
        assert!(!fleet.record_failure(0, "connect refused"));
        assert!(fleet.is_up(0));
        assert!(fleet.record_failure(0, "connect refused"), "third in a row ejects");
        assert!(!fleet.is_up(0));
        assert!(fleet.is_up(1), "sibling state is independent");
        assert_eq!(fleet.ejections.load(Ordering::SeqCst), 1);
        // Further failures on a down backend are not further ejections.
        assert!(!fleet.record_failure(0, "still dead"));
        assert_eq!(fleet.ejections.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reinstates_after_consecutive_successes() {
        let fleet = FleetHealth::new(1, 1, 2);
        fleet.record_failure(0, "boom");
        assert!(!fleet.is_up(0));
        assert!(!fleet.record_success(0), "one success is not enough");
        fleet.record_failure(0, "flap"); // resets the success streak
        fleet.record_success(0);
        assert!(fleet.record_success(0), "two in a row reinstate");
        assert!(fleet.is_up(0));
        assert_eq!(fleet.reinstatements.load(Ordering::SeqCst), 1);
        assert_eq!(fleet.snapshot()[0].last_error, None, "reinstatement clears the error");
    }

    #[test]
    fn zero_thresholds_are_promoted_to_one() {
        let fleet = FleetHealth::new(1, 0, 0);
        assert!(fleet.record_failure(0, "x"), "threshold 0 behaves as 1");
        assert!(fleet.record_success(0));
        assert_eq!(fleet.up_count(), 1);
    }

    #[test]
    fn probe_reports_a_refused_connection() {
        // Bind-then-drop guarantees an unused port.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let err = probe(&format!("127.0.0.1:{port}"), Duration::from_millis(500)).unwrap_err();
        assert!(err.starts_with("connect:"), "{err}");
    }
}
