//! Per-backend keep-alive session pools.
//!
//! The router used to park exactly **one** warm [`Session`] per backend:
//! two concurrent requests hashing to the same shard would race for it,
//! the loser dialing a fresh connection and then *dropping* it on return
//! (the single slot was already occupied) — every concurrent request past
//! the first paid a TCP handshake forever. A [`SessionPool`] parks up to
//! `cap` warm sessions per backend (sized to the router's worker width,
//! the most forwards that can be in flight at once), so concurrency warms
//! the pool up instead of thrashing it.
//!
//! The pool holds plain [`Session`]s, so the reconnect-once semantics are
//! untouched: a checked-out session that finds its connection closed at a
//! request boundary re-dials transparently exactly as before, and a
//! session that errors mid-request is dropped (its connection state is
//! unknown), never parked back.

use blazer_serve::client::Session;
use std::sync::Mutex;

/// A bounded stack of warm keep-alive sessions to one backend.
pub struct SessionPool {
    /// LIFO: the most recently parked (warmest, least likely to have
    /// idle-timed-out server-side) session is checked out first.
    slots: Mutex<Vec<Session>>,
    cap: usize,
}

impl SessionPool {
    /// An empty pool parking at most `cap` sessions (at least one).
    pub fn new(cap: usize) -> SessionPool {
        SessionPool { slots: Mutex::new(Vec::new()), cap: cap.max(1) }
    }

    /// Takes the warmest parked session, if any; the caller owns it
    /// exclusively until [`SessionPool::park`] (or drop, on error).
    pub fn checkout(&self) -> Option<Session> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    /// Returns a healthy session to the pool. Beyond the cap the session
    /// is dropped (closing its connection): the cap bounds idle sockets
    /// held against one backend.
    pub fn park(&self, session: Session) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if slots.len() < self.cap {
            slots.push(session);
        }
    }

    /// Parked (idle) sessions right now.
    pub fn idle(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The park cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Sessions wrap real sockets; a loopback listener supplies them.
    fn sessions(n: usize) -> (TcpListener, Vec<Session>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let made = (0..n).map(|_| Session::connect(&addr).expect("connect")).collect();
        (listener, made)
    }

    #[test]
    fn pool_parks_up_to_cap_and_is_lifo() {
        let (_listener, mut made) = sessions(3);
        let pool = SessionPool::new(2);
        assert!(pool.checkout().is_none(), "empty pool has nothing to check out");
        pool.park(made.remove(0));
        pool.park(made.remove(0));
        assert_eq!(pool.idle(), 2);
        // The cap bounds parked sessions: the third is dropped, not queued.
        pool.park(made.remove(0));
        assert_eq!(pool.idle(), 2);
        // Concurrent checkouts get distinct sessions (no serialization on
        // one shared connection).
        let a = pool.checkout().expect("first");
        let b = pool.checkout().expect("second");
        assert_eq!(pool.idle(), 0);
        assert!(pool.checkout().is_none());
        pool.park(a);
        pool.park(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn zero_cap_is_promoted_to_one() {
        let (_listener, mut made) = sessions(1);
        let pool = SessionPool::new(0);
        assert_eq!(pool.cap(), 1);
        pool.park(made.remove(0));
        assert_eq!(pool.idle(), 1);
    }
}
