//! Router-layer fault injection, for the chaos tests.
//!
//! The analysis core already honors `BLAZER_FAULT` (`lp_call:<n>`,
//! `panic:<n>`, ... — see `blazer_ir::budget::FaultSpec`); this module
//! extends the same `|`-separated `key:<n>` syntax with two router-layer
//! points, and both parsers ignore each other's keys, so one environment
//! variable can arm faults at every layer at once:
//!
//! - `route-connect:<n>` — the next `n` backend connection attempts fail
//!   before dialing, as a refused connection would.
//! - `route-read:<n>` — the next `n` forwards fail after the connection
//!   is obtained but before a response is read, as a mid-request backend
//!   death (SIGKILL, network partition) would.
//!
//! Counts are *consumable*: each armed fault fires exactly once, so a
//! test arming `route-connect:2` sees exactly two injected failures and
//! then normal service — which is precisely the shape retry logic must
//! survive.

use std::sync::atomic::{AtomicU64, Ordering};

/// Parsed router-layer fault counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPoints {
    /// Connection attempts to fail.
    pub connect: u64,
    /// Post-connect forwards to fail.
    pub read: u64,
}

impl FaultPoints {
    /// Parses the shared `BLAZER_FAULT` syntax, keeping only the router's
    /// keys. Malformed clauses and other layers' keys are ignored (fault
    /// injection is best-effort test tooling, not user API).
    pub fn parse(spec: &str) -> FaultPoints {
        let mut points = FaultPoints::default();
        for clause in spec.split('|') {
            let Some((key, count)) = clause.split_once(':') else { continue };
            let Ok(count) = count.trim().parse::<u64>() else { continue };
            match key.trim() {
                "route-connect" => points.connect = count,
                "route-read" => points.read = count,
                _ => {}
            }
        }
        points
    }

    /// The `BLAZER_FAULT` environment variable's router-layer points
    /// (none when unset).
    pub fn from_env() -> FaultPoints {
        std::env::var("BLAZER_FAULT").map(|spec| FaultPoints::parse(&spec)).unwrap_or_default()
    }

    /// Whether any router-layer fault is armed.
    pub fn is_empty(&self) -> bool {
        *self == FaultPoints::default()
    }
}

/// Armed, consumable fault counters shared by every router worker.
#[derive(Debug, Default)]
pub struct Armed {
    connect: AtomicU64,
    read: AtomicU64,
}

impl Armed {
    /// Arms the given counts.
    pub fn new(points: FaultPoints) -> Armed {
        Armed { connect: AtomicU64::new(points.connect), read: AtomicU64::new(points.read) }
    }

    fn take(counter: &AtomicU64) -> bool {
        counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
    }

    /// Consumes one `route-connect` fault if armed.
    pub fn take_connect(&self) -> bool {
        Armed::take(&self.connect)
    }

    /// Consumes one `route-read` fault if armed.
    pub fn take_read(&self) -> bool {
        Armed::take(&self.read)
    }

    /// The counts still armed (tests).
    pub fn remaining(&self) -> FaultPoints {
        FaultPoints {
            connect: self.connect.load(Ordering::SeqCst),
            read: self.read.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_router_keys_and_ignores_the_rest() {
        let points = FaultPoints::parse("lp_call:5|route-connect:2|junk|route-read:1|panic:3");
        assert_eq!(points, FaultPoints { connect: 2, read: 1 });
        assert!(FaultPoints::parse("lp_call:5|overflow:1").is_empty());
        assert!(FaultPoints::parse("route-connect:bogus").is_empty());
        assert!(FaultPoints::parse("").is_empty());
    }

    #[test]
    fn armed_faults_fire_exactly_their_count() {
        let armed = Armed::new(FaultPoints { connect: 2, read: 0 });
        assert!(armed.take_connect());
        assert!(armed.take_connect());
        assert!(!armed.take_connect(), "the third attempt is clean");
        assert!(!armed.take_read(), "read faults were never armed");
        assert!(armed.remaining().is_empty());
    }
}
