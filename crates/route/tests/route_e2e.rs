//! End-to-end router tests: a real `Router` fronting real `Server`
//! backends on ephemeral ports, spoken to over TCP by the real client —
//! the same path `blazer client` takes against a fleet.

use blazer_core::{Blazer, Config, Verdict};
use blazer_ir::json::{fnv1a64, Json};
use blazer_route::fault::FaultPoints;
use blazer_route::health::HealthOptions;
use blazer_route::ring::Ring;
use blazer_route::{RetryPolicy, RouteOptions, Router};
use blazer_serve::{client, AnalyzeRequest, ServeOptions, Server};
use std::sync::atomic::Ordering;
use std::time::Duration;

const SAFE_SRC: &str = "fn check(high: int #high, low: int) { \
    if (high == 0) { let i: int = 0; while (i < low) { i = i + 1; } } \
    else { let i: int = low; while (i > 0) { i = i - 1; } } }";

const UNSAFE_SRC: &str = "fn leak(h: int #high) { if (h == 0) { tick(90); } else { tick(1); } }";

fn start_backend() -> Server {
    Server::start(ServeOptions { addr: "127.0.0.1:0".to_string(), ..ServeOptions::default() })
        .expect("bind backend")
}

/// Router options for tests: ephemeral port, fast retries, and a parked
/// health checker (interval measured in minutes) so the request path alone
/// drives the health state machine deterministically.
fn route_opts(backends: Vec<String>) -> RouteOptions {
    RouteOptions {
        addr: "127.0.0.1:0".to_string(),
        backends,
        retry: RetryPolicy { base: Duration::from_millis(1), cap: Duration::from_millis(4) },
        health: HealthOptions { interval: Duration::from_secs(300), ..HealthOptions::default() },
        ..RouteOptions::default()
    }
}

/// The ring hash the router shards this request by.
fn shard_hash(req: &AnalyzeRequest) -> u64 {
    fnv1a64(req.cache_key().canonical().as_bytes())
}

/// A trivially-safe request whose primary shard is backend `want` — found
/// by walking distinct sources, so the test controls placement without
/// reaching into the router.
fn request_with_primary(backends: &[String], want: usize, salt: u64) -> AnalyzeRequest {
    let ring = Ring::new(backends);
    (salt..salt + 100_000)
        .map(|n| AnalyzeRequest::new(format!("fn f(h: int #high) {{ tick({n}); }}")))
        .find(|req| ring.primary(shard_hash(req)) == Some(want))
        .expect("some source must hash to the wanted shard")
}

fn direct_verdict(source: &str, function: &str) -> Verdict {
    let program = blazer_lang::compile(source).expect("test source compiles");
    Blazer::new(Config::microbench()).analyze(&program, function).expect("analysis runs").verdict
}

#[test]
fn routed_verdicts_match_the_direct_driver() {
    let backends = [start_backend(), start_backend()];
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(route_opts(addrs)).expect("router starts");
    let addr = router.addr().to_string();
    for (source, function) in [(SAFE_SRC, "check"), (UNSAFE_SRC, "leak")] {
        let (status, doc) =
            client::analyze(&addr, &AnalyzeRequest::new(source)).expect("routed request");
        assert_eq!(status, 200, "{doc}");
        let direct = direct_verdict(source, function);
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some(direct.code()));
        assert_eq!(doc.get("function").and_then(Json::as_str), Some(function));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
    // The same submissions again are verbatim re-answers (backend cache),
    // still through the router.
    let (status, doc) =
        client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("cached request");
    assert_eq!(status, 200);
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(router.stats().fleet_unavailable.load(Ordering::SeqCst), 0);
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

#[test]
fn identical_submissions_coalesce_to_one_fleet_run() {
    let backends = [start_backend(), start_backend()];
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(route_opts(addrs.clone())).expect("router starts");
    let addr = router.addr().to_string();
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let answers = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                let req = req.clone();
                scope.spawn(move || client::analyze(&addr, &req).expect("routed request"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect::<Vec<_>>()
    });
    for (status, doc) in &answers {
        assert_eq!(*status, 200, "{doc}");
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("attack"));
    }
    // However the stampede was sliced between the router's single-flight
    // and the backends' own, the driver ran exactly once fleet-wide.
    let mut fleet_analyses = 0;
    for backend_addr in &addrs {
        let (_, stats) = client::stats(backend_addr).expect("backend stats");
        fleet_analyses += stats.get("analyses_run").and_then(Json::as_u64).unwrap_or(0);
    }
    assert_eq!(fleet_analyses, 1, "identical submissions must not duplicate driver runs");
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

#[test]
fn a_dead_backend_is_ejected_and_its_keys_fail_over() {
    let alive = start_backend();
    // The dead shard is a blackhole address that never serves: every
    // connect fails outright (or times out at the health timeout), which
    // is deterministic in a way a stopped in-process server is not — a
    // freed ephemeral port can be rebound by a concurrent test.
    let addrs = vec![alive.addr().to_string(), "10.255.255.1:9".to_string()];
    let mut opts = route_opts(addrs.clone());
    opts.health.eject_after = 1;
    opts.health.timeout = Duration::from_millis(250);
    let router = Router::start(opts).expect("router starts");
    let addr = router.addr().to_string();
    // A dead-primary key fails over to the survivor: the client still
    // sees 200, the router counts the retry and ejects the corpse.
    let (status, doc) =
        client::analyze(&addr, &request_with_primary(&addrs, 1, 0)).expect("failover");
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("safe"));
    let stats = router.stats();
    assert!(stats.retries.load(Ordering::SeqCst) >= 1);
    assert!(stats.failovers.load(Ordering::SeqCst) >= 1);
    assert!(!router.health().is_up(1), "one connect failure must eject at eject_after = 1");
    assert!(router.health().ejections.load(Ordering::SeqCst) >= 1);
    // With the backend ejected, its next key skips straight to the
    // survivor — a failover without a retry.
    let retries_before = stats.retries.load(Ordering::SeqCst);
    let (status, _) =
        client::analyze(&addr, &request_with_primary(&addrs, 1, 1_000_000)).expect("ejected");
    assert_eq!(status, 200);
    assert_eq!(stats.retries.load(Ordering::SeqCst), retries_before, "no retry once ejected");
    assert_eq!(stats.fleet_unavailable.load(Ordering::SeqCst), 0);
    // The router's own health reflects the half-dead fleet but stays up.
    let (status, health) = client::health(&addr).expect("router health");
    assert_eq!(status, 200);
    assert_eq!(health.get("backends_up").and_then(Json::as_u64), Some(1));
    assert_eq!(health.get("backends_total").and_then(Json::as_u64), Some(2));
    router.stop();
    alive.stop();
}

/// One submission against a two-backend fleet with a single armed fault:
/// returns the router's (retries, failovers) counters after it answers.
fn run_one_fault_scenario(fault: FaultPoints) -> (u64, u64) {
    let backends = [start_backend(), start_backend()];
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let mut opts = route_opts(addrs);
    opts.fault = Some(fault);
    let router = Router::start(opts).expect("router starts");
    let addr = router.addr().to_string();
    let (status, doc) = client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("request");
    assert_eq!(status, 200, "one fault must not surface: {doc}");
    let stats = router.stats();
    assert_eq!(stats.fleet_unavailable.load(Ordering::SeqCst), 0);
    // One isolated failure per backend at most: nobody was ejected.
    assert_eq!(router.health().ejections.load(Ordering::SeqCst), 0);
    let counters = (stats.retries.load(Ordering::SeqCst), stats.failovers.load(Ordering::SeqCst));
    router.stop();
    for backend in backends {
        backend.stop();
    }
    counters
}

#[test]
fn injected_faults_are_retried_onto_the_next_candidate() {
    // A connect fault (refused dial) and a read fault (mid-request death)
    // each cost exactly one retry onto the next ring candidate.
    for fault in [FaultPoints { connect: 1, read: 0 }, FaultPoints { connect: 0, read: 1 }] {
        let (retries, failovers) = run_one_fault_scenario(fault);
        assert_eq!(retries, 1, "{fault:?}");
        assert_eq!(failovers, 1, "{fault:?}");
    }
}

#[test]
fn an_unreachable_fleet_answers_a_structured_503() {
    // Two addresses that were never served: bind-and-drop reserves them.
    let addrs: Vec<String> = (0..2)
        .map(|_| {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve");
            listener.local_addr().expect("addr").to_string()
        })
        .collect();
    let mut opts = route_opts(addrs);
    opts.health.eject_after = 1;
    let router = Router::start(opts).expect("router starts");
    let addr = router.addr().to_string();
    let (status, body) = client::raw_request(
        &addr,
        "POST",
        "/analyze",
        Some(&AnalyzeRequest::new(UNSAFE_SRC).to_json().to_string()),
    )
    .expect("round-trips");
    assert_eq!(status, 503, "{body}");
    let doc = Json::parse(&body).expect("structured error");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert!(doc.get("error").and_then(Json::as_str).unwrap_or("").starts_with("fleet:"));
    let fleet = doc.get("fleet").expect("fleet block");
    assert!(fleet.get("key").and_then(Json::as_str).is_some());
    let attempts = match fleet.get("attempts") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("attempts must be an array, got {other:?}"),
    };
    assert_eq!(attempts.len(), 2, "every candidate was tried exactly once");
    for attempt in &attempts {
        assert!(attempt.get("backend").and_then(Json::as_str).is_some());
        assert!(attempt.get("error").and_then(Json::as_str).is_some());
    }
    assert_eq!(router.stats().fleet_unavailable.load(Ordering::SeqCst), 1);
    // With every backend ejected the router's own health goes 503.
    let (status, health) = client::health(&addr).expect("router health");
    assert_eq!(status, 503);
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(health.get("backends_up").and_then(Json::as_u64), Some(0));
    router.stop();
}

#[test]
fn batches_split_across_shards_and_remerge_in_submission_order() {
    let backends = [start_backend(), start_backend()];
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(route_opts(addrs)).expect("router starts");
    let addr = router.addr().to_string();
    let attack = AnalyzeRequest::new(UNSAFE_SRC).to_json().to_string();
    let safe = AnalyzeRequest::new(SAFE_SRC).to_json().to_string();
    let body = format!("[{attack}, {{\"frobnicate\": 1}}, {safe}, {attack}]");
    let (status, response) =
        client::raw_request(&addr, "POST", "/analyze", Some(&body)).expect("batch");
    assert_eq!(status, 200, "{response}");
    let items = match Json::parse(&response) {
        Ok(Json::Arr(items)) => items,
        other => panic!("batch answer must be an array, got {other:?}"),
    };
    assert_eq!(items.len(), 4);
    let statuses: Vec<u64> =
        items.iter().map(|i| i.get("status").and_then(Json::as_u64).unwrap_or(0)).collect();
    assert_eq!(statuses, vec![200, 400, 200, 200], "{response}");
    // Submission order survived the shard split: the verdicts and analyzed
    // functions line up with the submitted positions.
    assert_eq!(items[0].get("verdict").and_then(Json::as_str), Some("attack"));
    assert_eq!(items[0].get("function").and_then(Json::as_str), Some("leak"));
    assert_eq!(items[2].get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(items[2].get("function").and_then(Json::as_str), Some("check"));
    assert_eq!(items[3].get("verdict").and_then(Json::as_str), Some("attack"));
    assert!(items[1].get("error").and_then(Json::as_str).is_some(), "{response}");
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

#[test]
fn a_batch_survives_losing_a_backend_between_rounds() {
    let alive = start_backend();
    // The doomed backend closes every connection after one request so the
    // router never holds a parked session into it and `stop()` below
    // returns without waiting out an idle keep-alive timeout.
    let doomed = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        max_requests_per_connection: 1,
        ..ServeOptions::default()
    })
    .expect("bind backend");
    let addrs = vec![alive.addr().to_string(), doomed.addr().to_string()];
    let mut opts = route_opts(addrs);
    opts.health.eject_after = 1;
    let router = Router::start(opts).expect("router starts");
    let addr = router.addr().to_string();
    let round = |salt: u64| -> Vec<AnalyzeRequest> {
        (0..8)
            .map(|n| AnalyzeRequest::new(format!("fn f(h: int #high) {{ tick({}); }}", salt + n)))
            .collect()
    };
    let (status, doc) = client::analyze_batch(&addr, &round(100)).expect("round 1");
    assert_eq!(status, 200, "{doc}");
    doomed.stop();
    // Round 2: whatever lands on the doomed shard fails over per item —
    // every item still answers 200, nothing surfaces a 5xx.
    let (status, doc) = client::analyze_batch(&addr, &round(200)).expect("round 2");
    assert_eq!(status, 200, "{doc}");
    let items = match doc {
        Json::Arr(items) => items,
        other => panic!("batch answer must be an array, got {other:?}"),
    };
    assert_eq!(items.len(), 8);
    for (n, item) in items.iter().enumerate() {
        assert_eq!(item.get("status").and_then(Json::as_u64), Some(200), "item {n}: {item}");
        assert_eq!(item.get("verdict").and_then(Json::as_str), Some("safe"), "item {n}");
    }
    assert_eq!(router.stats().fleet_unavailable.load(Ordering::SeqCst), 0);
    router.stop();
    alive.stop();
}

#[test]
fn router_stats_aggregate_the_fleet() {
    let backends = [start_backend(), start_backend()];
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(route_opts(addrs.clone())).expect("router starts");
    let addr = router.addr().to_string();
    let (status, _) = client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("analyze");
    assert_eq!(status, 200);
    let reqs = [AnalyzeRequest::new(SAFE_SRC), AnalyzeRequest::new(UNSAFE_SRC)];
    let (status, _) = client::analyze_batch(&addr, &reqs).expect("batch");
    assert_eq!(status, 200);
    let (status, stats) = client::stats(&addr).expect("router stats");
    assert_eq!(status, 200);
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get("service").and_then(Json::as_str), Some("blazer-route"));
    assert_eq!(stats.get("backends_total").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("backends_up").and_then(Json::as_u64), Some(2));
    let router_block = stats.get("router").expect("router block");
    for field in [
        "workers",
        "queue_depth",
        "connections",
        "requests",
        "analyze_requests",
        "batch_requests",
        "retries",
        "failovers",
        "ejections",
        "reinstatements",
        "coalesced",
        "fleet_unavailable",
        "client_errors",
        "busy_rejections",
    ] {
        assert!(router_block.get(field).is_some(), "missing router.{field}: {stats}");
    }
    assert_eq!(router_block.get("analyze_requests").and_then(Json::as_u64), Some(3));
    assert_eq!(router_block.get("batch_requests").and_then(Json::as_u64), Some(1));
    // The fleet block sums what the backends report; both distinct
    // analyses ran exactly once somewhere in the fleet.
    let fleet = stats.get("fleet").expect("fleet block");
    assert_eq!(fleet.get("analyses_run").and_then(Json::as_u64), Some(2), "{stats}");
    assert!(fleet.get("cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1);
    // Fleet-wide cache aggregates computed over the summed counters.
    assert!(fleet.get("cache_evictions").and_then(Json::as_u64).is_some(), "{stats}");
    let hit_rate = fleet.get("cache_hit_rate").and_then(Json::as_f64).expect("fleet hit rate");
    assert!((0.0..=1.0).contains(&hit_rate), "{stats}");
    assert!(hit_rate > 0.0, "at least one hit was recorded: {stats}");
    // Per-backend entries carry health and the backend's own stats.
    let listed = match stats.get("backends") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("backends must be an array, got {other:?}"),
    };
    assert_eq!(listed.len(), 2);
    for (index, entry) in listed.iter().enumerate() {
        assert_eq!(entry.get("addr").and_then(Json::as_str), Some(addrs[index].as_str()));
        assert_eq!(entry.get("health").and_then(Json::as_str), Some("up"));
        let backend_stats = entry.get("stats").expect("reachable backend stats");
        assert!(backend_stats.get("analyses_run").and_then(Json::as_u64).is_some());
    }
    router.stop();
    for backend in backends {
        backend.stop();
    }
}
