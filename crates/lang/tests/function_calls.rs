//! Intra-program function calls: checked against signatures, inlined at
//! lowering (the paper's tool has no recursion support either — Sec. 1
//! footnote 2 — so cyclic call graphs are rejected up front).

use blazer_interp::{Interp, SeededOracle, Value};
use blazer_lang::compile;

fn run(src: &str, func: &str, inputs: &[Value]) -> (u64, Option<i64>) {
    let p = compile(src).unwrap();
    let t = Interp::new(&p).run(func, inputs, &mut SeededOracle::new(0)).unwrap();
    (t.cost, t.ret.and_then(|v| v.as_int()))
}

#[test]
fn simple_call_returns_value() {
    let src = "\
fn double(x: int) -> int { return x * 2; }
fn f(n: int) -> int { return double(n) + 1; }
";
    let (_, r) = run(src, "f", &[Value::Int(20)]);
    assert_eq!(r, Some(41));
}

#[test]
fn nested_calls_and_branching_callee() {
    let src = "\
fn abs(x: int) -> int { if (x < 0) { return 0 - x; } return x; }
fn dist(a: int, b: int) -> int { return abs(a - b); }
fn f(a: int, b: int) -> int { return dist(a, b) + dist(b, a); }
";
    let (_, r) = run(src, "f", &[Value::Int(3), Value::Int(10)]);
    assert_eq!(r, Some(14));
}

#[test]
fn callee_loops_are_inlined() {
    let src = "\
fn sum(n: int) -> int { \
    let acc: int = 0; \
    for (let i: int = 0; i < n; i = i + 1) { acc = acc + i; } \
    return acc; \
}
fn f(n: int) -> int { return sum(n) + sum(n); }
";
    let (_, r) = run(src, "f", &[Value::Int(5)]);
    assert_eq!(r, Some(20));
    // Cost scales with two inlined copies.
    let (c1, _) = run(src, "f", &[Value::Int(1)]);
    let (c5, _) = run(src, "f", &[Value::Int(5)]);
    assert!(c5 > c1);
}

#[test]
fn void_call_as_statement() {
    let src = "\
fn spin(n: int) { for (let i: int = 0; i < n; i = i + 1) { tick(3); } }
fn f(n: int) { spin(n); spin(2); }
";
    let (c0, _) = run(src, "f", &[Value::Int(0)]);
    let (c4, _) = run(src, "f", &[Value::Int(4)]);
    assert!(c4 > c0);
}

#[test]
fn callee_scope_is_isolated() {
    // The callee cannot see the caller's locals; same names are distinct.
    let src = "\
fn g(x: int) -> int { let t: int = x + 1; return t; }
fn f() -> int { let t: int = 100; let r: int = g(5); return t + r; }
";
    let (_, r) = run(src, "f", &[]);
    assert_eq!(r, Some(106));
}

#[test]
fn direct_recursion_rejected() {
    let e = compile("fn f(n: int) -> int { return f(n - 1); }").unwrap_err();
    assert!(e.message.contains("recursive"), "{e}");
}

#[test]
fn mutual_recursion_rejected() {
    let src = "\
fn even(n: int) -> int { if (n == 0) { return 1; } return odd(n - 1); }
fn odd(n: int) -> int { if (n == 0) { return 0; } return even(n - 1); }
";
    let e = compile(src).unwrap_err();
    assert!(e.message.contains("recursive"), "{e}");
}

#[test]
fn call_arity_and_types_checked() {
    assert!(compile("fn g(x: int) -> int { return x; } fn f() -> int { return g(); }").is_err());
    assert!(
        compile("fn g(x: array) -> int { return len(x); } fn f() -> int { return g(3); }").is_err()
    );
}

#[test]
fn inlined_calls_analyze_end_to_end() {
    use blazer_core::{Blazer, Config};
    // Balanced helper called from both secret arms: safe.
    let src = "\
fn work(n: int) { for (let i: int = 0; i < n; i = i + 1) { tick(2); } }
fn f(high: int #high, low: int) { \
    if (high == 0) { work(low); } else { work(low); } \
}
";
    let p = compile(src).unwrap();
    let outcome = Blazer::new(Config::microbench()).analyze(&p, "f").unwrap();
    assert!(outcome.verdict.is_safe());

    // Helper called only on one secret arm: attack.
    let src = "\
fn work(n: int) { for (let i: int = 0; i < n; i = i + 1) { tick(2); } }
fn f(high: int #high, low: int) { \
    if (high == 0) { work(low); } else { tick(1); } \
}
";
    let p = compile(src).unwrap();
    let outcome = Blazer::new(Config::microbench()).analyze(&p, "f").unwrap();
    assert!(outcome.verdict.is_attack());
}
