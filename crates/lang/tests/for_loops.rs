//! Tests for the `for`-loop sugar: parsing, scoping, and semantics
//! (desugaring to `while` must preserve both behaviour and cost).

use blazer_interp::{Interp, SeededOracle, Value};
use blazer_lang::compile;

fn run(src: &str, func: &str, inputs: &[Value]) -> (u64, Option<i64>) {
    let p = compile(src).unwrap();
    let t = Interp::new(&p).run(func, inputs, &mut SeededOracle::new(0)).unwrap();
    (t.cost, t.ret.and_then(|v| v.as_int()))
}

#[test]
fn for_loop_equals_while_loop() {
    let with_for = "fn f(n: int) -> int { \
        let acc: int = 0; \
        for (let i: int = 0; i < n; i = i + 1) { acc = acc + i; } \
        return acc; \
    }";
    let with_while = "fn f(n: int) -> int { \
        let acc: int = 0; \
        let i: int = 0; \
        while (i < n) { acc = acc + i; i = i + 1; } \
        return acc; \
    }";
    for n in [0i64, 1, 5, 12] {
        let (cf, rf) = run(with_for, "f", &[Value::Int(n)]);
        let (cw, rw) = run(with_while, "f", &[Value::Int(n)]);
        assert_eq!(rf, rw, "n={n}");
        assert_eq!(cf, cw, "desugaring must preserve cost (n={n})");
    }
}

#[test]
fn for_variable_is_scoped_to_the_loop() {
    // `i` is not visible after the loop...
    assert!(compile(
        "fn f(n: int) -> int { \
            for (let i: int = 0; i < n; i = i + 1) { tick(1); } \
            return i; \
        }"
    )
    .is_err());
    // ...so two sequential for-loops can reuse the name.
    compile(
        "fn f(n: int) { \
            for (let i: int = 0; i < n; i = i + 1) { tick(1); } \
            for (let i: int = 0; i < n; i = i + 1) { tick(2); } \
        }",
    )
    .unwrap();
}

#[test]
fn for_with_assignment_init() {
    let src = "fn f(n: int) -> int { \
        let i: int = 100; \
        for (i = 0; i < n; i = i + 1) { tick(1); } \
        return i; \
    }";
    let (_, r) = run(src, "f", &[Value::Int(7)]);
    assert_eq!(r, Some(7));
}

#[test]
fn nested_for_loops() {
    let src = "fn f(n: int) -> int { \
        let acc: int = 0; \
        for (let i: int = 0; i < n; i = i + 1) { \
            for (let j: int = 0; j < i; j = j + 1) { acc = acc + 1; } \
        } \
        return acc; \
    }";
    let (_, r) = run(src, "f", &[Value::Int(5)]);
    assert_eq!(r, Some(10)); // 0+1+2+3+4
}

#[test]
fn for_loops_analyze_like_while_loops() {
    use blazer_core::{Blazer, Config};
    let src = "fn f(high: int #high, low: int) { \
        if (high == 0) { \
            for (let i: int = 0; i < low; i = i + 1) { tick(2); } \
        } else { \
            for (let j: int = 0; j < low; j = j + 1) { tick(2); } \
        } \
    }";
    let p = compile(src).unwrap();
    let outcome = Blazer::new(Config::microbench()).analyze(&p, "f").unwrap();
    assert!(outcome.verdict.is_safe(), "balanced for-loops verify");
}

#[test]
fn parse_errors_are_reported() {
    // Missing step.
    assert!(compile("fn f(n: int) { for (let i: int = 0; i < n;) { } }").is_err());
    // Missing condition semicolon.
    assert!(compile("fn f(n: int) { for (let i: int = 0 i < n; i = i + 1) { } }").is_err());
}
