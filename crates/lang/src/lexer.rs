//! The hand-written lexer.

use crate::token::{Span, Token, TokenKind};
use crate::LangError;

/// Lexes a whole source file.
///
/// Comments are `//` to end of line. Whitespace is insignificant.
///
/// # Errors
///
/// Returns an error for unknown characters, malformed labels, and integer
/// literals out of `i64` range.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer { chars: source.chars().peekable(), line: 1, col: 1, out: Vec::new() }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn span(&self) -> Span {
        Span::at(self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.out.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while let Some(c) = self.peek() {
            let span = self.span();
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        _ => self.push(TokenKind::Slash, span),
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut text = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let n: i64 = text
                        .parse()
                        .map_err(|_| LangError::new("integer literal out of range", span))?;
                    self.push(TokenKind::Int(n), span);
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut text = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let kind = match text.as_str() {
                        "fn" => TokenKind::Fn,
                        "extern" => TokenKind::Extern,
                        "let" => TokenKind::Let,
                        "if" => TokenKind::If,
                        "else" => TokenKind::Else,
                        "while" => TokenKind::While,
                        "for" => TokenKind::For,
                        "return" => TokenKind::Return,
                        "true" => TokenKind::True,
                        "false" => TokenKind::False,
                        "null" => TokenKind::Null,
                        "int" => TokenKind::TyInt,
                        "bool" => TokenKind::TyBool,
                        "array" => TokenKind::TyArray,
                        "len" => TokenKind::Len,
                        "tick" => TokenKind::Tick,
                        "havoc" => TokenKind::Havoc,
                        "cost" => TokenKind::Cost,
                        _ => TokenKind::Ident(text),
                    };
                    self.push(kind, span);
                }
                '#' => {
                    self.bump();
                    let mut text = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphabetic() {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    match text.as_str() {
                        "high" => self.push(TokenKind::LabelHigh, span),
                        "low" => self.push(TokenKind::LabelLow, span),
                        other => {
                            return Err(LangError::new(
                                format!("unknown label `#{other}` (expected #high or #low)"),
                                span,
                            ))
                        }
                    }
                }
                _ => {
                    self.bump();
                    let two = |this: &mut Lexer<'a>, next: char, yes: TokenKind, no: TokenKind| {
                        if this.peek() == Some(next) {
                            this.bump();
                            yes
                        } else {
                            no
                        }
                    };
                    let kind = match c {
                        '(' => TokenKind::LParen,
                        ')' => TokenKind::RParen,
                        '{' => TokenKind::LBrace,
                        '}' => TokenKind::RBrace,
                        '[' => TokenKind::LBracket,
                        ']' => TokenKind::RBracket,
                        ',' => TokenKind::Comma,
                        ';' => TokenKind::Semi,
                        ':' => TokenKind::Colon,
                        '+' => TokenKind::Plus,
                        '*' => TokenKind::Star,
                        '%' => TokenKind::Percent,
                        '-' => two(&mut self, '>', TokenKind::Arrow, TokenKind::Minus),
                        '=' => two(&mut self, '=', TokenKind::EqEq, TokenKind::Assign),
                        '!' => two(&mut self, '=', TokenKind::NotEq, TokenKind::Not),
                        '<' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                TokenKind::Le
                            } else if self.peek() == Some('<') {
                                self.bump();
                                TokenKind::Shl
                            } else {
                                TokenKind::Lt
                            }
                        }
                        '>' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                TokenKind::Ge
                            } else if self.peek() == Some('>') {
                                self.bump();
                                TokenKind::Shr
                            } else {
                                TokenKind::Gt
                            }
                        }
                        '&' => {
                            if self.peek() == Some('&') {
                                self.bump();
                                TokenKind::AndAnd
                            } else {
                                return Err(LangError::new("expected `&&`", span));
                            }
                        }
                        '|' => {
                            if self.peek() == Some('|') {
                                self.bump();
                                TokenKind::OrOr
                            } else {
                                return Err(LangError::new("expected `||`", span));
                            }
                        }
                        '.' => {
                            if self.peek() == Some('.') {
                                self.bump();
                                TokenKind::DotDot
                            } else {
                                return Err(LangError::new("expected `..`", span));
                            }
                        }
                        other => {
                            return Err(LangError::new(
                                format!("unexpected character `{other}`"),
                                span,
                            ))
                        }
                    };
                    self.push(kind, span);
                }
            }
        }
        let span = self.span();
        self.push(TokenKind::Eof, span);
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fn foo while whilex"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("foo".into()),
                TokenKind::While,
                TokenKind::Ident("whilex".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            kinds("<= < << == = != ! -> - .. >= >>"),
            vec![
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Shl,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::Not,
                TokenKind::Arrow,
                TokenKind::Minus,
                TokenKind::DotDot,
                TokenKind::Ge,
                TokenKind::Shr,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn labels() {
        assert_eq!(
            kinds("#high #low"),
            vec![TokenKind::LabelHigh, TokenKind::LabelLow, TokenKind::Eof]
        );
        assert!(lex("#secret").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // comment with fn if\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span::at(1, 1));
        assert_eq!(toks[1].span, Span::at(2, 3));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 1234567"),
            vec![TokenKind::Int(0), TokenKind::Int(42), TokenKind::Int(1234567), TokenKind::Eof]
        );
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn error_on_stray_chars() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a . b").is_err());
    }
}
