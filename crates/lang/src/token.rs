//! Tokens and source spans.

use std::fmt;

/// A position range in the source text (1-based line/column of the start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line of the token start.
    pub line: u32,
    /// 1-based column of the token start.
    pub col: u32,
}

impl Span {
    /// A span at the given position.
    pub fn at(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

/// The kind of a [`Token`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal.
    Int(i64),
    /// An identifier.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `extern`
    Extern,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `int`
    TyInt,
    /// `bool`
    TyBool,
    /// `array`
    TyArray,
    /// `len`
    Len,
    /// `tick`
    Tick,
    /// `havoc`
    Havoc,
    /// `cost`
    Cost,
    /// `#high`
    LabelHigh,
    /// `#low`
    LabelLow,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `..`
    DotDot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Fn => f.write_str("fn"),
            TokenKind::Extern => f.write_str("extern"),
            TokenKind::Let => f.write_str("let"),
            TokenKind::If => f.write_str("if"),
            TokenKind::Else => f.write_str("else"),
            TokenKind::While => f.write_str("while"),
            TokenKind::For => f.write_str("for"),
            TokenKind::Return => f.write_str("return"),
            TokenKind::True => f.write_str("true"),
            TokenKind::False => f.write_str("false"),
            TokenKind::Null => f.write_str("null"),
            TokenKind::TyInt => f.write_str("int"),
            TokenKind::TyBool => f.write_str("bool"),
            TokenKind::TyArray => f.write_str("array"),
            TokenKind::Len => f.write_str("len"),
            TokenKind::Tick => f.write_str("tick"),
            TokenKind::Havoc => f.write_str("havoc"),
            TokenKind::Cost => f.write_str("cost"),
            TokenKind::LabelHigh => f.write_str("#high"),
            TokenKind::LabelLow => f.write_str("#low"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Arrow => f.write_str("->"),
            TokenKind::DotDot => f.write_str(".."),
            TokenKind::Assign => f.write_str("="),
            TokenKind::EqEq => f.write_str("=="),
            TokenKind::NotEq => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Shl => f.write_str("<<"),
            TokenKind::Shr => f.write_str(">>"),
            TokenKind::AndAnd => f.write_str("&&"),
            TokenKind::OrOr => f.write_str("||"),
            TokenKind::Not => f.write_str("!"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}
