//! The recursive-descent parser.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use crate::LangError;
use blazer_ir::{SecurityLabel, Type};

/// Parses a whole source file into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_program(source: &str) -> Result<ProgramAst, LangError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, LangError> {
        let span = self.span();
        if *self.peek() == kind {
            self.bump();
            Ok(span)
        } else {
            Err(LangError::new(format!("expected `{kind}`, found `{}`", self.peek()), span))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        let span = self.span();
        match self.bump() {
            TokenKind::Ident(s) => Ok((s, span)),
            other => Err(LangError::new(format!("expected identifier, found `{other}`"), span)),
        }
    }

    fn int(&mut self) -> Result<(i64, Span), LangError> {
        let span = self.span();
        let neg = self.eat(TokenKind::Minus);
        match self.bump() {
            TokenKind::Int(n) => Ok((if neg { -n } else { n }, span)),
            other => Err(LangError::new(format!("expected integer, found `{other}`"), span)),
        }
    }

    fn ty(&mut self) -> Result<Type, LangError> {
        let span = self.span();
        match self.bump() {
            TokenKind::TyInt => Ok(Type::Int),
            TokenKind::TyBool => Ok(Type::Bool),
            TokenKind::TyArray => Ok(Type::Array),
            other => Err(LangError::new(format!("expected type, found `{other}`"), span)),
        }
    }

    fn label(&mut self) -> SecurityLabel {
        if self.eat(TokenKind::LabelHigh) {
            SecurityLabel::High
        } else {
            self.eat(TokenKind::LabelLow);
            SecurityLabel::Low
        }
    }

    // ---- top level -------------------------------------------------------

    fn program(&mut self) -> Result<ProgramAst, LangError> {
        let mut externs = Vec::new();
        let mut functions = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Extern => externs.push(self.extern_decl()?),
                TokenKind::Fn => functions.push(self.function()?),
                other => {
                    return Err(LangError::new(
                        format!("expected `fn` or `extern`, found `{other}`"),
                        self.span(),
                    ))
                }
            }
        }
        Ok(ProgramAst { externs, functions })
    }

    fn extern_decl(&mut self) -> Result<ExternAst, LangError> {
        let span = self.expect(TokenKind::Extern)?;
        self.expect(TokenKind::Fn)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let _ = self.ident()?; // parameter name (documentation only)
                self.expect(TokenKind::Colon)?;
                params.push(self.ty()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let (ret, ret_label) = if self.eat(TokenKind::Arrow) {
            let t = self.ty()?;
            (Some(t), self.label())
        } else {
            (None, SecurityLabel::Low)
        };
        self.expect(TokenKind::Cost)?;
        let cost = self.cost_annotation(params.len())?;
        let ret_len = if matches!(self.peek(), TokenKind::Ident(s) if s == "len")
            || *self.peek() == TokenKind::Len
        {
            self.bump();
            let (lo, _) = self.int()?;
            self.expect(TokenKind::DotDot)?;
            let (hi, hspan) = self.int()?;
            if hi < lo {
                return Err(LangError::new("empty length range", hspan));
            }
            Some((lo, hi))
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(ExternAst { name, params, ret, ret_label, cost, ret_len, span })
    }

    /// `cost INT` or `cost INT * argN + INT`.
    fn cost_annotation(&mut self, n_params: usize) -> Result<CostAst, LangError> {
        let (first, span) = self.int()?;
        if first < 0 {
            return Err(LangError::new("cost must be non-negative", span));
        }
        if self.eat(TokenKind::Star) {
            let (arg_name, aspan) = self.ident()?;
            let arg: usize = arg_name
                .strip_prefix("arg")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| LangError::new("expected `argN` after `*` in cost", aspan))?;
            if arg >= n_params {
                return Err(LangError::new(
                    format!("cost references arg{arg} but only {n_params} params"),
                    aspan,
                ));
            }
            self.expect(TokenKind::Plus)?;
            let (constant, cspan) = self.int()?;
            if constant < 0 {
                return Err(LangError::new("cost must be non-negative", cspan));
            }
            Ok(CostAst::Linear { arg, coeff: first as u64, constant: constant as u64 })
        } else {
            Ok(CostAst::Const(first as u64))
        }
    }

    fn function(&mut self) -> Result<FunctionAst, LangError> {
        let span = self.expect(TokenKind::Fn)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let (pname, pspan) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                let label = self.label();
                params.push(ParamAst { name: pname, ty, label, span: pspan });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(TokenKind::Arrow) { Some(self.ty()?) } else { None };
        let body = self.block()?;
        Ok(FunctionAst { name, params, ret, body, span })
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek() {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Let { name, ty, init, span })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::For => {
                // `for (init; cond; step) { body }` desugars to
                // `{ init; while (cond) { body; step; } }`.
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = self.simple_stmt()?;
                let cond = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let step = self.assignment_no_semi()?;
                self.expect(TokenKind::RParen)?;
                let mut body = self.block()?;
                body.push(step);
                Ok(Stmt::Block { body: vec![init, Stmt::While { cond, body, span }], span })
            }
            TokenKind::Return => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi { None } else { Some(self.expr()?) };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Tick => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (n, nspan) = self.int()?;
                if n < 0 {
                    return Err(LangError::new("tick amount must be non-negative", nspan));
                }
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Tick { amount: n as u64, span })
            }
            TokenKind::Ident(_) => {
                // assignment, indexed store, or a call statement.
                if *self.peek2() == TokenKind::Assign {
                    let (name, _) = self.ident()?;
                    self.bump(); // `=`
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign { name, value, span })
                } else if *self.peek2() == TokenKind::LBracket {
                    // Could be `a[i] = e;` — parse the index then decide.
                    let (name, _) = self.ident()?;
                    self.bump(); // `[`
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    self.expect(TokenKind::Assign)?;
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::StoreIndex { array: name, index, value, span })
                } else {
                    let expr = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::ExprStmt { expr, span })
                }
            }
            other => Err(LangError::new(format!("expected statement, found `{other}`"), span)),
        }
    }

    /// A `let` or assignment statement (the init slot of a `for`).
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek() {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Let { name, ty, init, span })
            }
            _ => {
                let s = self.assignment_no_semi()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment without its trailing semicolon (a `for` step).
    fn assignment_no_semi(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        let (name, _) = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let value = self.expr()?;
        Ok(Stmt::Assign { name, value, span })
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(TokenKind::Else) {
            if *self.peek() == TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body, span })
    }

    // ---- expressions (precedence climbing) -------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::OrOr {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(AstBinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == TokenKind::AndAnd {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(AstBinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.shift_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => Some(AstBinOp::Eq),
            TokenKind::NotEq => Some(AstBinOp::Ne),
            TokenKind::Lt => Some(AstBinOp::Lt),
            TokenKind::Le => Some(AstBinOp::Le),
            TokenKind::Gt => Some(AstBinOp::Gt),
            TokenKind::Ge => Some(AstBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.span();
            self.bump();
            let rhs = self.shift_expr()?;
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), span))
        } else {
            Ok(lhs)
        }
    }

    fn shift_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => AstBinOp::Shl,
                TokenKind::Shr => AstBinOp::Shr,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => AstBinOp::Add,
                TokenKind::Minus => AstBinOp::Sub,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => AstBinOp::Mul,
                TokenKind::Slash => AstBinOp::Div,
                TokenKind::Percent => AstBinOp::Rem,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(AstUnOp::Neg, Box::new(e), span))
            }
            TokenKind::Not => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(AstUnOp::Not, Box::new(e), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary_expr()?;
        while *self.peek() == TokenKind::LBracket {
            let span = self.span();
            self.bump();
            let idx = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(idx), span);
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.bump() {
            TokenKind::Int(n) => Ok(Expr::Int(n, span)),
            TokenKind::True => Ok(Expr::Bool(true, span)),
            TokenKind::False => Ok(Expr::Bool(false, span)),
            TokenKind::Null => Ok(Expr::Null(span)),
            TokenKind::Len => {
                self.expect(TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Len(Box::new(e), span))
            }
            TokenKind::Havoc => {
                self.expect(TokenKind::LParen)?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Havoc(span))
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call(name, args, span))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => Err(LangError::new(format!("expected expression, found `{other}`"), span)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse_program("fn f() { }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "f");
        assert!(p.functions[0].body.is_empty());
    }

    #[test]
    fn parses_params_with_labels() {
        let p = parse_program("fn f(h: int #high, l: int, a: array #low) { }").unwrap();
        let params = &p.functions[0].params;
        assert_eq!(params[0].label, SecurityLabel::High);
        assert_eq!(params[1].label, SecurityLabel::Low);
        assert_eq!(params[2].ty, Type::Array);
    }

    #[test]
    fn parses_extern_with_costs() {
        let p = parse_program(
            "extern fn md5(p: array) -> array cost 500 len 16..16;\n\
             extern fn hashN(p: array) -> int cost 3 * arg0 + 7;",
        )
        .unwrap();
        assert_eq!(p.externs.len(), 2);
        assert_eq!(p.externs[0].cost, CostAst::Const(500));
        assert_eq!(p.externs[0].ret_len, Some((16, 16)));
        assert_eq!(p.externs[1].cost, CostAst::Linear { arg: 0, coeff: 3, constant: 7 });
    }

    #[test]
    fn parses_extern_with_high_nullable_result() {
        let p = parse_program(
            "extern fn retrievePassword(u: array) -> array #high cost 30 len -1..64;",
        )
        .unwrap();
        let e = &p.externs[0];
        assert_eq!(e.ret_label, SecurityLabel::High);
        assert_eq!(e.ret_len, Some((-1, 64)));
    }

    #[test]
    fn parses_control_flow() {
        let src = "fn f(n: int) { \
            let i: int = 0; \
            while (i < n) { \
                if (i % 2 == 0) { i = i + 1; } else if (i > 10) { return; } else { i = i + 2; } \
            } \
        }";
        let p = parse_program(src).unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_array_ops() {
        let src = "fn f(a: array) -> int { a[0] = 1; let x: int = a[len(a) - 1]; return x; }";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::StoreIndex { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse_program("fn f() { let x: int = 1 + 2 * 3; }").unwrap();
        // 1 + (2 * 3)
        if let Stmt::Let { init: Expr::Binary(AstBinOp::Add, _, rhs, _), .. } =
            &p.functions[0].body[0]
        {
            assert!(matches!(**rhs, Expr::Binary(AstBinOp::Mul, _, _, _)));
        } else {
            panic!("wrong shape");
        }
    }

    #[test]
    fn logical_operators_and_null() {
        let src = "fn f(a: array, i: int) -> bool { return a != null && i < len(a) || false; }";
        let p = parse_program(src).unwrap();
        if let Stmt::Return { value: Some(Expr::Binary(AstBinOp::Or, _, _, _)), .. } =
            &p.functions[0].body[0]
        {
        } else {
            panic!("|| should bind loosest");
        }
    }

    #[test]
    fn call_statement_and_tick() {
        let src = "extern fn log(x: int) cost 1;\n fn f() { log(3); tick(9); }";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::ExprStmt { .. }));
        assert!(matches!(p.functions[0].body[1], Stmt::Tick { amount: 9, .. }));
    }

    #[test]
    fn error_messages_have_positions() {
        let err = parse_program("fn f( { }").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("expected identifier"), "{err}");
    }

    #[test]
    fn rejects_garbage_between_items() {
        assert!(parse_program("fn f() { } 42").is_err());
        assert!(parse_program("let x: int = 1;").is_err());
    }

    #[test]
    fn havoc_expression() {
        let p = parse_program("fn f() { let x: int = havoc(); }").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Let { init: Expr::Havoc(_), .. }));
    }
}
