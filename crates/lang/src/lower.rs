//! Lowering from the AST to the `blazer-ir` control-flow graph.
//!
//! Comparisons and short-circuit connectives in *value* position lower to
//! branch diamonds, exactly as javac compiles them to bytecode — so the CFG
//! shapes (and therefore trails) match what the original tool saw.

use crate::ast::*;
use blazer_ir::builder::FunctionBuilder;
use blazer_ir::{
    BinOp, BlockId, CallCost, CmpOp, Cond, Expr as IrExpr, ExternDecl, Operand, Program, Type,
    UnOp, VarId,
};
use std::collections::BTreeMap;

/// Lowers a checked program. Call [`crate::check_program`] first — lowering
/// assumes (and debug-asserts) well-typedness.
pub fn lower_program(ast: &ProgramAst) -> Program {
    let mut program = Program::new();
    for e in &ast.externs {
        program.add_extern(ExternDecl {
            name: e.name.clone(),
            params: e.params.clone(),
            ret: e.ret,
            ret_label: e.ret_label,
            cost: lower_cost(e.cost),
            ret_len: e.ret_len,
        });
    }
    let externs: BTreeMap<&str, &ExternAst> =
        ast.externs.iter().map(|e| (e.name.as_str(), e)).collect();
    let functions: BTreeMap<&str, &FunctionAst> =
        ast.functions.iter().map(|f| (f.name.as_str(), f)).collect();
    for f in &ast.functions {
        let lowerer = Lowerer {
            b: FunctionBuilder::new(&f.name),
            externs: &externs,
            functions: &functions,
            scopes: Vec::new(),
            inline_frames: Vec::new(),
        };
        program.add_function(lowerer.function(f));
    }
    debug_assert_eq!(program.validate(), Ok(()));
    program
}

fn ast_arith_op(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Rem => BinOp::Rem,
        AstBinOp::Shl => BinOp::Shl,
        AstBinOp::Shr => BinOp::Shr,
        _ => unreachable!("comparisons and logicals lower via diamonds"),
    }
}

fn lower_cost(c: CostAst) -> CallCost {
    match c {
        CostAst::Const(n) => CallCost::Const(n),
        CostAst::Linear { arg, coeff, constant } => CallCost::Linear { arg, coeff, constant },
    }
}

struct Lowerer<'a> {
    b: FunctionBuilder,
    externs: &'a BTreeMap<&'a str, &'a ExternAst>,
    functions: &'a BTreeMap<&'a str, &'a FunctionAst>,
    scopes: Vec<BTreeMap<String, VarId>>,
    /// Inline frames: result variable and continuation block of each
    /// enclosing inlined call (innermost last). `return` inside an inlined
    /// body targets the top frame instead of emitting a Return terminator.
    inline_frames: Vec<InlineFrame>,
}

#[derive(Debug, Clone, Copy)]
struct InlineFrame {
    ret_var: Option<VarId>,
    cont: BlockId,
}

impl<'a> Lowerer<'a> {
    fn function(mut self, f: &FunctionAst) -> blazer_ir::Function {
        if let Some(rt) = f.ret {
            self.b.returns(rt);
        }
        self.scopes.push(BTreeMap::new());
        for p in &f.params {
            let v = self.b.param(&p.name, p.ty, p.label);
            self.scopes[0].insert(p.name.clone(), v);
        }
        let terminated = self.stmts(&f.body);
        if !terminated {
            self.b.ret(None);
        }
        self.scopes.pop();
        self.b.finish()
    }

    fn lookup(&self, name: &str) -> VarId {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .copied()
            .unwrap_or_else(|| panic!("unbound variable `{name}` (checker should reject)"))
    }

    /// Lowers a statement list; returns whether control definitely left the
    /// current block (so no fall-through edge is needed).
    fn stmts(&mut self, stmts: &[Stmt]) -> bool {
        self.scopes.push(BTreeMap::new());
        let mut terminated = false;
        for s in stmts {
            if terminated {
                break; // unreachable code after return
            }
            terminated = self.stmt(s);
        }
        self.scopes.pop();
        terminated
    }

    fn stmt(&mut self, s: &Stmt) -> bool {
        match s {
            Stmt::Let { name, ty, init, .. } => {
                let v = self.b.local(name, *ty);
                self.expr_into(v, init);
                self.scopes.last_mut().expect("inside scope").insert(name.clone(), v);
                false
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.lookup(name);
                self.expr_into(v, value);
                false
            }
            Stmt::StoreIndex { array, index, value, .. } => {
                let idx = self.expr(index);
                let val = self.expr(value);
                let arr = self.lookup(array);
                self.b.array_set(arr, idx, val);
                false
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                self.cond_branch(cond, then_bb, else_bb);

                self.b.switch_to(then_bb);
                let t_done = self.stmts(then_body);
                let mut join: Option<BlockId> = None;
                if !t_done {
                    let j = self.b.new_block();
                    join = Some(j);
                    self.b.goto(j);
                }
                self.b.switch_to(else_bb);
                let e_done = self.stmts(else_body);
                if !e_done {
                    let j = match join {
                        Some(j) => j,
                        None => {
                            let j = self.b.new_block();
                            join = Some(j);
                            j
                        }
                    };
                    self.b.goto(j);
                }
                match join {
                    Some(j) => {
                        self.b.switch_to(j);
                        false
                    }
                    None => true, // both arms returned
                }
            }
            Stmt::While { cond, body, .. } => {
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let after = self.b.new_block();
                self.b.goto(head);
                self.b.switch_to(head);
                self.cond_branch(cond, body_bb, after);
                self.b.switch_to(body_bb);
                let done = self.stmts(body);
                if !done {
                    self.b.goto(head);
                }
                self.b.switch_to(after);
                false
            }
            Stmt::Return { value, .. } => {
                match self.inline_frames.last().copied() {
                    // Inside an inlined call: store the result and jump to
                    // the caller's continuation.
                    Some(frame) => {
                        if let (Some(rv), Some(e)) = (frame.ret_var, value.as_ref()) {
                            self.expr_into(rv, e);
                        }
                        self.b.goto(frame.cont);
                    }
                    None => {
                        let op = value.as_ref().map(|e| self.expr(e));
                        self.b.ret(op);
                    }
                }
                true
            }
            Stmt::Tick { amount, .. } => {
                self.b.tick(*amount);
                false
            }
            Stmt::Block { body, .. } => self.stmts(body),
            Stmt::ExprStmt { expr, .. } => {
                if let Expr::Call(name, args, _) = expr {
                    self.lower_call(name, args, /* want_result = */ false);
                } else {
                    let _ = self.expr(expr);
                }
                false
            }
        }
    }

    /// Lowers an expression directly into destination `dst`, avoiding the
    /// temp-plus-copy pair that `expr` would produce.
    fn expr_into(&mut self, dst: VarId, e: &Expr) {
        match e {
            Expr::Int(n, _) => self.b.copy(dst, Operand::Const(*n)),
            Expr::Bool(v, _) => self.b.copy(dst, Operand::Const(i64::from(*v))),
            Expr::Var(name, _) => {
                let src = self.lookup(name);
                self.b.copy(dst, src);
            }
            Expr::Index(arr, idx, _) => {
                let Expr::Var(aname, _) = &**arr else {
                    unreachable!("checker enforces named arrays")
                };
                let idx_op = self.expr(idx);
                let arr_v = self.lookup(aname);
                self.b.array_get(dst, arr_v, idx_op);
            }
            Expr::Len(inner, _) => {
                let Expr::Var(aname, _) = &**inner else {
                    unreachable!("checker enforces named arrays")
                };
                let arr_v = self.lookup(aname);
                self.b.array_len(dst, arr_v);
            }
            Expr::Havoc(_) => self.b.havoc(dst),
            Expr::Call(name, args, _) => {
                if let Some(decl) = self.externs.get(name.as_str()) {
                    let arg_ops: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
                    self.b.call(Some(dst), name, arg_ops, lower_cost(decl.cost));
                } else {
                    let op = self
                        .lower_call(name, args, true)
                        .expect("inlined call in value position returns");
                    self.b.copy(dst, op);
                }
            }
            Expr::Unary(AstUnOp::Neg, inner, _) => {
                let op = self.expr(inner);
                self.b.assign(dst, IrExpr::Unary(UnOp::Neg, op));
            }
            Expr::Unary(AstUnOp::Not, inner, _) => {
                let op = self.expr(inner);
                self.b.assign(dst, IrExpr::Unary(UnOp::Not, op));
            }
            Expr::Binary(op, _, _, _) if op.is_comparison() || op.is_logical() => {
                // Branch diamond writing straight into dst.
                let true_bb = self.b.new_block();
                let false_bb = self.b.new_block();
                let join = self.b.new_block();
                self.cond_branch(e, true_bb, false_bb);
                self.b.switch_to(true_bb);
                self.b.copy(dst, Operand::Const(1));
                self.b.goto(join);
                self.b.switch_to(false_bb);
                self.b.copy(dst, Operand::Const(0));
                self.b.goto(join);
                self.b.switch_to(join);
            }
            Expr::Binary(op, lhs, rhs, _) => {
                let a = self.expr(lhs);
                let b_op = self.expr(rhs);
                let ir_op = ast_arith_op(*op);
                self.b.assign(dst, IrExpr::Binary(ir_op, a, b_op));
            }
            Expr::Null(_) => unreachable!("checker rejects bare null"),
        }
    }

    /// Lowers an expression in value position; returns the operand holding
    /// its value.
    fn expr(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Int(n, _) => Operand::Const(*n),
            Expr::Bool(b, _) => Operand::Const(i64::from(*b)),
            Expr::Null(_) => unreachable!("checker rejects bare null"),
            Expr::Var(name, _) => Operand::Var(self.lookup(name)),
            Expr::Index(arr, idx, _) => {
                let Expr::Var(aname, _) = &**arr else {
                    unreachable!("checker enforces named arrays")
                };
                let idx_op = self.expr(idx);
                let arr_v = self.lookup(aname);
                let t = self.b.temp(Type::Int);
                self.b.array_get(t, arr_v, idx_op);
                Operand::Var(t)
            }
            Expr::Len(inner, _) => {
                let Expr::Var(aname, _) = &**inner else {
                    unreachable!("checker enforces named arrays")
                };
                let arr_v = self.lookup(aname);
                let t = self.b.temp(Type::Int);
                self.b.array_len(t, arr_v);
                Operand::Var(t)
            }
            Expr::Havoc(_) => {
                let t = self.b.temp(Type::Int);
                self.b.havoc(t);
                Operand::Var(t)
            }
            Expr::Call(name, args, _) => {
                self.lower_call(name, args, true).expect("call in value position returns")
            }
            Expr::Unary(AstUnOp::Neg, inner, _) => {
                let op = self.expr(inner);
                let t = self.b.temp(Type::Int);
                self.b.assign(t, IrExpr::Unary(UnOp::Neg, op));
                Operand::Var(t)
            }
            Expr::Unary(AstUnOp::Not, inner, _) => {
                let op = self.expr(inner);
                let t = self.b.temp(Type::Bool);
                self.b.assign(t, IrExpr::Unary(UnOp::Not, op));
                Operand::Var(t)
            }
            Expr::Binary(op, lhs, rhs, _) if op.is_comparison() || op.is_logical() => {
                // Comparison / logical value: materialize via a branch
                // diamond, as bytecode does.
                let t = self.b.temp(Type::Bool);
                let true_bb = self.b.new_block();
                let false_bb = self.b.new_block();
                let join = self.b.new_block();
                self.cond_branch(e, true_bb, false_bb);
                self.b.switch_to(true_bb);
                self.b.copy(t, Operand::Const(1));
                self.b.goto(join);
                self.b.switch_to(false_bb);
                self.b.copy(t, Operand::Const(0));
                self.b.goto(join);
                self.b.switch_to(join);
                Operand::Var(t)
            }
            Expr::Binary(op, lhs, rhs, _) => {
                let a = self.expr(lhs);
                let b_op = self.expr(rhs);
                let ir_op = ast_arith_op(*op);
                let t = self.b.temp(Type::Int);
                self.b.assign(t, IrExpr::Binary(ir_op, a, b_op));
                Operand::Var(t)
            }
        }
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], want_result: bool) -> Option<Operand> {
        if let Some(decl) = self.externs.get(name) {
            let arg_ops: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
            let dst = if want_result {
                let ty = decl.ret.unwrap_or(Type::Int);
                Some(self.b.temp(ty))
            } else {
                None
            };
            self.b.call(dst, name, arg_ops, lower_cost(decl.cost));
            return dst.map(Operand::Var);
        }
        // A program function: inline its body (the checker guarantees the
        // call graph is acyclic).
        let callee = self.functions[name];
        let arg_ops: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
        let ret_var = if want_result {
            Some(self.b.temp(callee.ret.unwrap_or(Type::Int)))
        } else if callee.ret.is_some() {
            // Result discarded but returns must still have a target slot.
            Some(self.b.temp(callee.ret.unwrap()))
        } else {
            None
        };
        let cont = self.b.new_block();
        // Fresh scope binding the callee's parameters to argument copies.
        let mut frame_scope = BTreeMap::new();
        for (p, op) in callee.params.iter().zip(&arg_ops) {
            let v = self.b.local(format!("%{}.{}", name, p.name), p.ty);
            self.b.copy(v, *op);
            frame_scope.insert(p.name.clone(), v);
        }
        // Swap in an isolated scope stack: the callee must not see the
        // caller's locals.
        let saved_scopes = std::mem::replace(&mut self.scopes, vec![frame_scope]);
        self.inline_frames.push(InlineFrame { ret_var, cont });
        let terminated = self.stmts(&callee.body);
        if !terminated {
            self.b.goto(cont);
        }
        self.inline_frames.pop();
        self.scopes = saved_scopes;
        self.b.switch_to(cont);
        if want_result {
            ret_var.map(Operand::Var)
        } else {
            None
        }
    }

    /// Lowers `cond` in branch position, jumping to `then_bb` when true and
    /// `else_bb` when false. Handles short-circuiting and null tests.
    fn cond_branch(&mut self, cond: &Expr, then_bb: BlockId, else_bb: BlockId) {
        match cond {
            Expr::Bool(true, _) => self.b.goto(then_bb),
            Expr::Bool(false, _) => self.b.goto(else_bb),
            Expr::Unary(AstUnOp::Not, inner, _) => self.cond_branch(inner, else_bb, then_bb),
            Expr::Binary(AstBinOp::And, lhs, rhs, _) => {
                let mid = self.b.new_block();
                self.cond_branch(lhs, mid, else_bb);
                self.b.switch_to(mid);
                self.cond_branch(rhs, then_bb, else_bb);
            }
            Expr::Binary(AstBinOp::Or, lhs, rhs, _) => {
                let mid = self.b.new_block();
                self.cond_branch(lhs, then_bb, mid);
                self.b.switch_to(mid);
                self.cond_branch(rhs, then_bb, else_bb);
            }
            Expr::Binary(op, lhs, rhs, _) if op.is_comparison() => match (&**lhs, &**rhs) {
                (Expr::Null(_), other) | (other, Expr::Null(_)) => {
                    let Expr::Var(aname, _) = other else {
                        unreachable!("checker enforces named arrays for null tests")
                    };
                    let arr = self.lookup(aname);
                    let is_null = match op {
                        AstBinOp::Eq => true,
                        AstBinOp::Ne => false,
                        _ => unreachable!("checker restricts null to ==/!="),
                    };
                    self.b.branch(Cond::Null { arr, is_null }, then_bb, else_bb);
                }
                _ => {
                    let a = self.expr(lhs);
                    let b_op = self.expr(rhs);
                    let cmp = match op {
                        AstBinOp::Eq => CmpOp::Eq,
                        AstBinOp::Ne => CmpOp::Ne,
                        AstBinOp::Lt => CmpOp::Lt,
                        AstBinOp::Le => CmpOp::Le,
                        AstBinOp::Gt => CmpOp::Gt,
                        AstBinOp::Ge => CmpOp::Ge,
                        _ => unreachable!(),
                    };
                    self.b.branch(Cond::cmp(cmp, a, b_op), then_bb, else_bb);
                }
            },
            // A boolean-typed value: compare against 0.
            other => {
                let op = self.expr(other);
                self.b.branch(Cond::cmp(CmpOp::Ne, op, Operand::Const(0)), then_bb, else_bb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use blazer_ir::{Cfg, Inst, Terminator};

    #[test]
    fn lowers_straightline() {
        let p = compile("fn f(x: int) -> int { let y: int = x * 2 + 1; return y; }").unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.blocks().len(), 1);
        assert!(matches!(f.block(f.entry()).term, Terminator::Return(Some(_))));
    }

    #[test]
    fn lowers_if_else_diamond() {
        let p = compile("fn f(x: int) { if (x > 0) { tick(1); } else { tick(2); } }").unwrap();
        let f = p.function("f").unwrap();
        // entry + then + else + join.
        assert_eq!(f.blocks().len(), 4);
        assert!(f.block(f.entry()).term.is_branch());
    }

    #[test]
    fn lowers_while_loop() {
        let p = compile("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }").unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        // A back edge exists: some successor pair forms a cycle.
        let loops = blazer_ir::dominators::natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn implicit_return_added() {
        let p = compile("fn f() { tick(1); }").unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(f.block(f.entry()).term, Terminator::Return(None)));
    }

    #[test]
    fn both_arms_return_means_no_join() {
        let p =
            compile("fn f(x: int) -> int { if (x > 0) { return 1; } else { return 2; } }").unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.blocks().len(), 3); // entry + two returning arms
    }

    #[test]
    fn null_test_lowered_to_null_condition() {
        let p = compile(
            "extern fn get() -> array cost 1 len -1..8;\n\
             fn f() -> bool { let a: array = get(); if (a == null) { return true; } return false; }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        let has_null_test = f.blocks().iter().any(|b| {
            matches!(&b.term, Terminator::Branch { cond: Cond::Null { is_null: true, .. }, .. })
        });
        assert!(has_null_test, "{f}");
    }

    #[test]
    fn short_circuit_and_creates_two_branches() {
        let p = compile("fn f(a: int, b: int) { if (a > 0 && b > 0) { tick(1); } }").unwrap();
        let f = p.function("f").unwrap();
        let n_branches = f.blocks().iter().filter(|b| b.term.is_branch()).count();
        assert_eq!(n_branches, 2);
    }

    #[test]
    fn comparison_as_value_makes_diamond() {
        let p = compile("fn f(a: int) -> bool { let b: bool = a > 3; return b; }").unwrap();
        let f = p.function("f").unwrap();
        assert!(f.blocks().len() >= 4, "{f}");
    }

    #[test]
    fn call_costs_are_attached() {
        let p = compile(
            "extern fn mul(a: int) -> int cost 4096;\n\
             fn f(x: int) -> int { return mul(x); }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        let found = f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { cost: CallCost::Const(4096), .. }));
        assert!(found);
    }

    #[test]
    fn scoped_redeclaration_gets_fresh_slots() {
        let p = compile(
            "fn f(c: bool) { if (c) { let t: int = 1; t = t; } else { let t: int = 2; t = t; } }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        let t_vars = f.vars().iter().filter(|v| v.name == "t").count();
        assert_eq!(t_vars, 2);
    }

    #[test]
    fn validates_against_ir_invariants() {
        // compile() runs Program::validate via debug_assert; also run the
        // public one.
        let p = compile(
            "extern fn g(a: int) cost 2;\n fn f(n: int #high) { g(n); while (n > 0) { n = n - 1; } }",
        )
        .unwrap();
        assert_eq!(p.validate(), Ok(()));
        assert!(p.function("f").unwrap().has_high_input());
    }
}
