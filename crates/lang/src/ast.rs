//! The abstract syntax tree.

use crate::token::Span;
use blazer_ir::{SecurityLabel, Type};

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramAst {
    /// External declarations with cost summaries.
    pub externs: Vec<ExternAst>,
    /// Function definitions.
    pub functions: Vec<FunctionAst>,
}

/// `extern fn name(params) -> ret #label cost ... len lo..hi;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternAst {
    /// Declared name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Label of the returned value (defaults to low).
    pub ret_label: SecurityLabel,
    /// Cost summary.
    pub cost: CostAst,
    /// Length range for array results (`-1` lower bound ⇒ may be null).
    pub ret_len: Option<(i64, i64)>,
    /// Source position.
    pub span: Span,
}

/// A cost annotation: `cost 5` or `cost 3 * arg0 + 7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostAst {
    /// A fixed cost.
    Const(u64),
    /// `coeff * arg<index> + constant`.
    Linear {
        /// Argument index the cost scales with.
        arg: usize,
        /// Units per argument unit.
        coeff: u64,
        /// Constant part.
        constant: u64,
    },
}

/// `fn name(x: int #high, ...) -> ret { body }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionAst {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamAst>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position.
    pub span: Span,
}

/// One declared parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamAst {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Security label (defaults to low).
    pub label: SecurityLabel,
    /// Source position.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let x: ty = e;`
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer.
        init: Expr,
        /// Position.
        span: Span,
    },
    /// `x = e;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: Expr,
        /// Position.
        span: Span,
    },
    /// `a[i] = e;`
    StoreIndex {
        /// Array variable.
        array: String,
        /// Index expression.
        index: Expr,
        /// Stored value.
        value: Expr,
        /// Position.
        span: Span,
    },
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (empty if absent).
        else_body: Vec<Stmt>,
        /// Position.
        span: Span,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Position.
        span: Span,
    },
    /// `return e?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Position.
        span: Span,
    },
    /// `tick(n);` — consume `n` cost units.
    Tick {
        /// Units consumed.
        amount: u64,
        /// Position.
        span: Span,
    },
    /// An expression evaluated for effect (a call).
    ExprStmt {
        /// The expression (must be a call).
        expr: Expr,
        /// Position.
        span: Span,
    },
    /// A scoped statement group (produced by `for`-loop desugaring).
    Block {
        /// The grouped statements.
        body: Vec<Stmt>,
        /// Position.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source position.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::StoreIndex { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Tick { span, .. }
            | Stmt::ExprStmt { span, .. }
            | Stmt::Block { span, .. } => *span,
        }
    }
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl AstBinOp {
    /// Whether this is a comparison producing `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            AstBinOp::Eq | AstBinOp::Ne | AstBinOp::Lt | AstBinOp::Le | AstBinOp::Gt | AstBinOp::Ge
        )
    }

    /// Whether this is a logical connective.
    pub fn is_logical(self) -> bool {
        matches!(self, AstBinOp::And | AstBinOp::Or)
    }
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstUnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// `true` / `false`.
    Bool(bool, Span),
    /// `null` (only valid against arrays in `==`/`!=`).
    Null(Span),
    /// Variable reference.
    Var(String, Span),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>, Span),
    /// `len(e)`.
    Len(Box<Expr>, Span),
    /// `havoc()` — an unknown integer.
    Havoc(Span),
    /// `f(args)` — a call to an extern.
    Call(String, Vec<Expr>, Span),
    /// Unary operation.
    Unary(AstUnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(AstBinOp, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Null(s)
            | Expr::Var(_, s)
            | Expr::Index(_, _, s)
            | Expr::Len(_, s)
            | Expr::Havoc(s)
            | Expr::Call(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s) => *s,
        }
    }
}
