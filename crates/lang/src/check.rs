//! Name resolution, type checking, and label validation.

use crate::ast::*;
use crate::LangError;
use blazer_ir::Type;
use std::collections::{BTreeMap, BTreeSet};

/// Checks a parsed program: unique names, well-typed expressions and
/// statements, call-site/declaration agreement.
///
/// # Errors
///
/// Returns the first semantic error found.
pub fn check_program(p: &ProgramAst) -> Result<(), LangError> {
    let mut extern_names = BTreeSet::new();
    for e in &p.externs {
        if !extern_names.insert(e.name.clone()) {
            return Err(LangError::new(format!("duplicate extern `{}`", e.name), e.span));
        }
    }
    let mut fn_names = BTreeSet::new();
    for f in &p.functions {
        if !fn_names.insert(f.name.clone()) {
            return Err(LangError::new(format!("duplicate function `{}`", f.name), f.span));
        }
        if extern_names.contains(&f.name) {
            return Err(LangError::new(
                format!("`{}` is declared both extern and fn", f.name),
                f.span,
            ));
        }
    }
    let externs: BTreeMap<&str, &ExternAst> =
        p.externs.iter().map(|e| (e.name.as_str(), e)).collect();
    let functions: BTreeMap<&str, &FunctionAst> =
        p.functions.iter().map(|f| (f.name.as_str(), f)).collect();
    for f in &p.functions {
        Checker { externs: &externs, functions: &functions, ret: f.ret, scopes: Vec::new() }
            .function(f)?;
    }
    // Calls are inlined at lowering, so the call graph must be acyclic
    // (the paper's tool likewise "does not yet support recursive
    // functions", Sec. 1 fn. 2).
    check_no_recursion(p)?;
    Ok(())
}

/// Rejects direct or mutual recursion among program functions.
fn check_no_recursion(p: &ProgramAst) -> Result<(), LangError> {
    fn callees(stmts: &[Stmt], fns: &BTreeSet<&str>, out: &mut BTreeSet<String>) {
        fn expr(e: &Expr, fns: &BTreeSet<&str>, out: &mut BTreeSet<String>) {
            match e {
                Expr::Call(name, args, _) => {
                    if fns.contains(name.as_str()) {
                        out.insert(name.clone());
                    }
                    for a in args {
                        expr(a, fns, out);
                    }
                }
                Expr::Index(a, b, _) => {
                    expr(a, fns, out);
                    expr(b, fns, out);
                }
                Expr::Len(a, _) | Expr::Unary(_, a, _) => expr(a, fns, out),
                Expr::Binary(_, a, b, _) => {
                    expr(a, fns, out);
                    expr(b, fns, out);
                }
                _ => {}
            }
        }
        for s in stmts {
            match s {
                Stmt::Let { init, .. } => expr(init, fns, out),
                Stmt::Assign { value, .. } => expr(value, fns, out),
                Stmt::StoreIndex { index, value, .. } => {
                    expr(index, fns, out);
                    expr(value, fns, out);
                }
                Stmt::If { cond, then_body, else_body, .. } => {
                    expr(cond, fns, out);
                    callees(then_body, fns, out);
                    callees(else_body, fns, out);
                }
                Stmt::While { cond, body, .. } => {
                    expr(cond, fns, out);
                    callees(body, fns, out);
                }
                Stmt::Return { value: Some(e), .. } => expr(e, fns, out),
                Stmt::ExprStmt { expr: e, .. } => expr(e, fns, out),
                Stmt::Block { body, .. } => callees(body, fns, out),
                _ => {}
            }
        }
    }
    let names: BTreeSet<&str> = p.functions.iter().map(|f| f.name.as_str()).collect();
    let graph: BTreeMap<&str, BTreeSet<String>> = p
        .functions
        .iter()
        .map(|f| {
            let mut out = BTreeSet::new();
            callees(&f.body, &names, &mut out);
            (f.name.as_str(), out)
        })
        .collect();
    // DFS cycle detection.
    fn visit<'a>(
        n: &'a str,
        graph: &'a BTreeMap<&str, BTreeSet<String>>,
        visiting: &mut BTreeSet<&'a str>,
        done: &mut BTreeSet<&'a str>,
    ) -> Result<(), String> {
        if done.contains(n) {
            return Ok(());
        }
        if !visiting.insert(n) {
            return Err(n.to_string());
        }
        if let Some(cs) = graph.get(n) {
            for c in cs {
                if let Some((k, _)) = graph.get_key_value(c.as_str()) {
                    visit(k, graph, visiting, done)?;
                }
            }
        }
        visiting.remove(n);
        done.insert(n);
        Ok(())
    }
    let mut visiting = BTreeSet::new();
    let mut done = BTreeSet::new();
    for f in &p.functions {
        if let Err(name) = visit(f.name.as_str(), &graph, &mut visiting, &mut done) {
            return Err(LangError::new(
                format!("recursive functions are not supported (cycle through `{name}`)"),
                f.span,
            ));
        }
    }
    Ok(())
}

struct Checker<'a> {
    externs: &'a BTreeMap<&'a str, &'a ExternAst>,
    functions: &'a BTreeMap<&'a str, &'a FunctionAst>,
    ret: Option<Type>,
    scopes: Vec<BTreeMap<String, Type>>,
}

impl<'a> Checker<'a> {
    fn function(&mut self, f: &FunctionAst) -> Result<(), LangError> {
        self.scopes.push(BTreeMap::new());
        for p in &f.params {
            if self.scopes[0].insert(p.name.clone(), p.ty).is_some() {
                return Err(LangError::new(format!("duplicate parameter `{}`", p.name), p.span));
            }
        }
        self.block(&f.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(BTreeMap::new());
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn declare(&mut self, name: &str, ty: Type, span: crate::Span) -> Result<(), LangError> {
        if self.lookup(name).is_some() {
            return Err(LangError::new(
                format!("`{name}` is already declared (shadowing is not allowed)"),
                span,
            ));
        }
        self.scopes.last_mut().expect("always inside a scope").insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Let { name, ty, init, span } => {
                let ity = self.expr(init)?;
                self.type_eq(*ty, ity, init.span())?;
                self.declare(name, *ty, *span)
            }
            Stmt::Assign { name, value, span } => {
                let vty = self.expr(value)?;
                let ty = self
                    .lookup(name)
                    .ok_or_else(|| LangError::new(format!("unknown variable `{name}`"), *span))?;
                self.type_eq(ty, vty, value.span())
            }
            Stmt::StoreIndex { array, index, value, span } => {
                let aty = self
                    .lookup(array)
                    .ok_or_else(|| LangError::new(format!("unknown variable `{array}`"), *span))?;
                self.type_eq(Type::Array, aty, *span)?;
                let ity = self.expr(index)?;
                self.type_eq(Type::Int, ity, index.span())?;
                let vty = self.expr(value)?;
                self.type_eq(Type::Int, vty, value.span())
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                let cty = self.expr(cond)?;
                self.type_eq(Type::Bool, cty, cond.span())?;
                self.block(then_body)?;
                self.block(else_body)
            }
            Stmt::While { cond, body, .. } => {
                let cty = self.expr(cond)?;
                self.type_eq(Type::Bool, cty, cond.span())?;
                self.block(body)
            }
            Stmt::Return { value, span } => match (value, self.ret) {
                (None, None) => Ok(()),
                (Some(e), Some(rt)) => {
                    let ty = self.expr(e)?;
                    self.type_eq(rt, ty, e.span())
                }
                (None, Some(rt)) => Err(LangError::new(
                    format!("function returns {rt} but `return;` has no value"),
                    *span,
                )),
                (Some(e), None) => {
                    Err(LangError::new("function has no return type but returns a value", e.span()))
                }
            },
            Stmt::Tick { .. } => Ok(()),
            Stmt::Block { body, .. } => self.block(body),
            Stmt::ExprStmt { expr, span } => match expr {
                Expr::Call(..) => {
                    let _ = self.expr(expr)?;
                    Ok(())
                }
                _ => Err(LangError::new("only calls may be used as statements", *span)),
            },
        }
    }

    /// Types an expression. `null` types as `Array` but is only accepted
    /// directly under `==`/`!=`, which is enforced structurally here.
    fn expr(&mut self, e: &Expr) -> Result<Type, LangError> {
        match e {
            Expr::Int(..) => Ok(Type::Int),
            Expr::Bool(..) => Ok(Type::Bool),
            Expr::Null(span) => Err(LangError::new(
                "`null` may only appear in `==`/`!=` comparisons with arrays",
                *span,
            )),
            Expr::Var(name, span) => self
                .lookup(name)
                .ok_or_else(|| LangError::new(format!("unknown variable `{name}`"), *span)),
            Expr::Index(arr, idx, span) => {
                let aty = self.expr(arr)?;
                self.type_eq(Type::Array, aty, *span)?;
                if !matches!(**arr, Expr::Var(..)) {
                    return Err(LangError::new("can only index named arrays", *span));
                }
                let ity = self.expr(idx)?;
                self.type_eq(Type::Int, ity, idx.span())?;
                Ok(Type::Int)
            }
            Expr::Len(inner, span) => {
                let ity = self.expr(inner)?;
                self.type_eq(Type::Array, ity, *span)?;
                if !matches!(**inner, Expr::Var(..)) {
                    return Err(LangError::new("can only take len of named arrays", *span));
                }
                Ok(Type::Int)
            }
            Expr::Havoc(_) => Ok(Type::Int),
            Expr::Call(name, args, span) => {
                // Extern or program function (inlined at lowering).
                let (params, ret): (Vec<Type>, Option<Type>) =
                    if let Some(decl) = self.externs.get(name.as_str()) {
                        (decl.params.clone(), decl.ret)
                    } else if let Some(f) = self.functions.get(name.as_str()) {
                        (f.params.iter().map(|p| p.ty).collect(), f.ret)
                    } else {
                        return Err(LangError::new(format!("unknown function `{name}`"), *span));
                    };
                if params.len() != args.len() {
                    return Err(LangError::new(
                        format!("`{name}` expects {} arguments, got {}", params.len(), args.len()),
                        *span,
                    ));
                }
                for (a, &pt) in args.iter().zip(&params) {
                    let at = self.expr(a)?;
                    self.type_eq(pt, at, a.span())?;
                }
                Ok(ret.unwrap_or(Type::Int))
            }
            Expr::Unary(op, inner, span) => {
                let ty = self.expr(inner)?;
                match op {
                    AstUnOp::Neg => {
                        self.type_eq(Type::Int, ty, *span)?;
                        Ok(Type::Int)
                    }
                    AstUnOp::Not => {
                        self.type_eq(Type::Bool, ty, *span)?;
                        Ok(Type::Bool)
                    }
                }
            }
            Expr::Binary(op, lhs, rhs, span) => {
                // Null comparisons are special-cased before recursive typing.
                if matches!(op, AstBinOp::Eq | AstBinOp::Ne) {
                    let lhs_null = matches!(**lhs, Expr::Null(_));
                    let rhs_null = matches!(**rhs, Expr::Null(_));
                    if lhs_null || rhs_null {
                        let other = if lhs_null { rhs } else { lhs };
                        if lhs_null && rhs_null {
                            return Err(LangError::new("cannot compare null to null", *span));
                        }
                        let oty = self.expr(other)?;
                        self.type_eq(Type::Array, oty, other.span())?;
                        return Ok(Type::Bool);
                    }
                }
                let lt = self.expr(lhs)?;
                let rt = self.expr(rhs)?;
                if op.is_logical() {
                    self.type_eq(Type::Bool, lt, lhs.span())?;
                    self.type_eq(Type::Bool, rt, rhs.span())?;
                    Ok(Type::Bool)
                } else if op.is_comparison() {
                    // Boolean equality is allowed; everything else is int.
                    if matches!(op, AstBinOp::Eq | AstBinOp::Ne)
                        && lt == Type::Bool
                        && rt == Type::Bool
                    {
                        return Ok(Type::Bool);
                    }
                    self.type_eq(Type::Int, lt, lhs.span())?;
                    self.type_eq(Type::Int, rt, rhs.span())?;
                    Ok(Type::Bool)
                } else {
                    self.type_eq(Type::Int, lt, lhs.span())?;
                    self.type_eq(Type::Int, rt, rhs.span())?;
                    Ok(Type::Int)
                }
            }
        }
    }

    fn type_eq(&self, expected: Type, found: Type, span: crate::Span) -> Result<(), LangError> {
        if expected == found {
            Ok(())
        } else {
            Err(LangError::new(format!("type mismatch: expected {expected}, found {found}"), span))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), LangError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_wellformed() {
        check(
            "extern fn md5(p: array) -> array cost 500 len 16..16;\n\
             fn f(a: array, n: int #high) -> bool {\n\
               let h: array = md5(a);\n\
               let i: int = 0;\n\
               let ok: bool = true;\n\
               while (i < len(h) && i < n) {\n\
                 if (h[i] == 0) { ok = false; }\n\
                 i = i + 1;\n\
               }\n\
               return ok;\n\
             }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = check("fn f() { x = 1; }").unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn rejects_type_mismatches() {
        assert!(check("fn f() { let x: int = true; }").is_err());
        assert!(check("fn f(b: bool) { let x: int = b + 1; }").is_err());
        assert!(check("fn f(a: array) { let x: int = a; }").is_err());
        assert!(check("fn f(n: int) { if (n) { } }").is_err());
    }

    #[test]
    fn rejects_shadowing_and_duplicates() {
        assert!(check("fn f(x: int, x: int) { }").is_err());
        assert!(check("fn f(x: int) { let x: int = 1; }").is_err());
        assert!(check("fn f() { } fn f() { }").is_err());
        assert!(check("extern fn g() cost 1; extern fn g() cost 2;").is_err());
    }

    #[test]
    fn block_scoping_allows_disjoint_lets() {
        check(
            "fn f(c: bool) { if (c) { let t: int = 1; t = 2; } else { let t: int = 3; t = 4; } }",
        )
        .unwrap();
        // But the variable is not visible outside its block.
        assert!(check("fn f(c: bool) { if (c) { let t: int = 1; } t = 2; }").is_err());
    }

    #[test]
    fn null_comparisons() {
        check("fn f(a: array) -> bool { return a == null; }").unwrap();
        check("fn f(a: array) -> bool { return null != a; }").unwrap();
        assert!(check("fn f(n: int) -> bool { return n == null; }").is_err());
        assert!(check("fn f() -> bool { return null == null; }").is_err());
        assert!(check("fn f(a: array) { let x: array = null; }").is_err());
    }

    #[test]
    fn call_checking() {
        let hdr = "extern fn two(a: int, b: array) -> int cost 1;\n";
        check(&format!("{hdr}fn f(a: array) {{ let x: int = two(1, a); }}")).unwrap();
        assert!(check(&format!("{hdr}fn f(a: array) {{ let x: int = two(1); }}")).is_err());
        assert!(check(&format!("{hdr}fn f(a: array) {{ let x: int = two(a, a); }}")).is_err());
        assert!(check("fn f() { mystery(); }").is_err());
    }

    #[test]
    fn return_type_agreement() {
        assert!(check("fn f() -> int { return; }").is_err());
        assert!(check("fn f() { return 1; }").is_err());
        check("fn f() -> bool { return true; }").unwrap();
    }

    #[test]
    fn boolean_equality_allowed() {
        check("fn f(a: bool, b: bool) -> bool { return a == b; }").unwrap();
        assert!(check("fn f(a: bool) -> bool { return a < true; }").is_err());
    }

    #[test]
    fn only_calls_as_statements() {
        assert!(check("fn f(x: int) { x + 1; }").is_err());
        check("extern fn g() cost 1; fn f() { g(); }").unwrap();
    }
}
