//! # blazer-lang
//!
//! The surface language and front-end of the Blazer reproduction.
//!
//! The original tool consumed Java bytecode through WALA. Since the analyses
//! in this workspace only ever see the `blazer-ir` control-flow graph, this
//! crate provides the substitute front-end: a small imperative language with
//! integers, booleans, and arrays, security labels on parameters, and
//! `extern` declarations carrying manual running-time summaries (exactly the
//! summaries Blazer used for `BigInteger` and other library calls).
//!
//! ```text
//! extern fn retrievePassword(u: array) -> array #high cost 30 len -1..64;
//!
//! fn login(username: array, guess: array) -> bool {
//!     let user_pw: array = retrievePassword(username);
//!     if (user_pw == null) { return false; }
//!     let i: int = 0;
//!     let matches: bool = true;
//!     while (i < len(guess)) {
//!         if (i < len(user_pw)) {
//!             if (guess[i] != user_pw[i]) { matches = false; }
//!         } else { matches = false; }
//!         i = i + 1;
//!     }
//!     return matches;
//! }
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`check`] (names,
//! types, labels) → [`lower`] (AST → [`blazer_ir::Program`]).
//!
//! The one modeling convention worth knowing: *nullable arrays*. `null` is
//! encoded as an array of length `-1`, so `x == null` lowers to
//! `len(x) < 0`. This keeps nullness inside the numeric domains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use check::check_program;
pub use lower::lower_program;
pub use parser::parse_program;
pub use token::{Span, Token, TokenKind};

/// A front-end error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Human-readable message.
    pub message: String,
    /// Where in the source the error was detected.
    pub span: Span,
}

impl LangError {
    /// Creates an error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        LangError { message: message.into(), span }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

impl std::error::Error for LangError {}

/// Parses, checks, and lowers a full source file to an IR program.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error encountered.
pub fn compile(source: &str) -> Result<blazer_ir::Program, LangError> {
    let ast = parse_program(source)?;
    check_program(&ast)?;
    Ok(lower_program(&ast))
}
