//! # blazer-absint
//!
//! The trail-restricted abstract interpreter.
//!
//! Blazer "built a custom abstract interpreter on top of WALA, using the
//! Parma Polyhedra Library to compute numerical invariants. The abstract
//! interpreter can be directed to restrict analysis to a given trail."
//! (Sec. 5). This crate is that component:
//!
//! * [`dims::DimMap`] maps IR variables to abstract-domain dimensions —
//!   scalars by value, arrays by length — plus one frozen *seed* dimension
//!   per parameter, so invariants can mention initial input values
//!   symbolically (the "seeding technique" of Berdine et al., used for
//!   transition invariants);
//! * [`alphabet::EdgeAlphabet`] interns CFG edges as automaton symbols;
//! * [`product::ProductGraph`] is the synchronous product of the CFG with a
//!   trail DFA — restricting analysis to a trail is just analyzing this
//!   graph, so partition-specific invariants fall out of the ordinary
//!   fixpoint;
//! * [`engine`] runs the worklist fixpoint with delayed widening and a
//!   narrowing pass, generic over any [`blazer_domains::AbstractDomain`];
//! * [`seeding`] computes per-loop *transition invariants* (the relation
//!   between one loop-header visit and the next) by re-running the engine
//!   on a header-split copy of the loop;
//! * [`incremental`] carries converged per-location post-states across
//!   trail-tree splits ([`incremental::SeedMap`]), so a child trail's
//!   fixpoint starts from its parent's invariants instead of ⊥ — distinct
//!   from [`seeding`], which is the transition-invariant technique.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod dims;
pub mod engine;
pub mod incremental;
pub mod product;
pub mod seeding;
pub mod transfer;

pub use alphabet::EdgeAlphabet;
pub use dims::DimMap;
pub use engine::{analyze, analyze_from, AnalysisResult, FixpointStats};
pub use incremental::SeedMap;
pub use product::{ProductGraph, ProductNodeId};
pub use seeding::loop_transition_invariant;
