//! The synchronous product of a CFG with a trail DFA.
//!
//! "We equip a standard abstract interpreter with the ability to consult an
//! oracle (the synthesized trails) to decide which CFG arcs to follow"
//! (Sec. 1). Here the oracle is compiled away: analyzing the product graph
//! *is* following only the arcs the trail allows.

use crate::alphabet::EdgeAlphabet;
use blazer_automata::{Dfa, Nfa};
use blazer_ir::budget::{self, Exhausted};
use blazer_ir::{Cfg, Cond, Edge, Function, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Index of a node in a [`ProductGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProductNodeId(pub usize);

/// A node of the product graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductNode {
    /// The underlying CFG node (block or virtual exit).
    pub cfg_node: NodeId,
    /// The trail-DFA state, or `None` for the unrestricted graph.
    pub dfa_state: Option<usize>,
}

/// An edge of the product graph.
#[derive(Debug, Clone)]
pub struct ProductEdge {
    /// Source node.
    pub from: ProductNodeId,
    /// Target node.
    pub to: ProductNodeId,
    /// The CFG edge this product edge projects to.
    pub cfg_edge: Edge,
    /// For branch edges: the condition and whether this is the taken arm.
    pub cond: Option<(Cond, bool)>,
}

/// A (possibly trail-restricted) product graph ready for abstract
/// interpretation and bound analysis.
#[derive(Debug, Clone)]
pub struct ProductGraph {
    nodes: Vec<ProductNode>,
    edges: Vec<ProductEdge>,
    entry: ProductNodeId,
    /// Nodes representing an *accepted* exit (CFG exit + accepting DFA
    /// state).
    exits: Vec<ProductNodeId>,
    succs: Vec<Vec<usize>>, // edge indices
    preds: Vec<Vec<usize>>, // edge indices
}

impl ProductGraph {
    /// The unrestricted graph: isomorphic to the CFG itself.
    pub fn full(f: &Function, cfg: &Cfg) -> Self {
        let nodes: Vec<ProductNode> =
            cfg.nodes().map(|n| ProductNode { cfg_node: n, dfa_state: None }).collect();
        let mut edges = Vec::new();
        for e in cfg.edges() {
            edges.push(ProductEdge {
                from: ProductNodeId(e.from.index()),
                to: ProductNodeId(e.to.index()),
                cfg_edge: e,
                cond: branch_info(f, cfg, e),
            });
        }
        Self::assemble(
            nodes,
            edges,
            ProductNodeId(cfg.entry().index()),
            vec![ProductNodeId(cfg.exit().index())],
        )
    }

    /// The product of the CFG with a trail DFA over `alphabet`.
    ///
    /// Product states whose DFA component cannot reach an accepting state
    /// are pruned (an execution prefix that can no longer match the trail is
    /// not in the trail's language).
    pub fn restricted(f: &Function, cfg: &Cfg, dfa: &Dfa, alphabet: &EdgeAlphabet) -> Self {
        assert_eq!(
            dfa.alphabet_size() as usize,
            alphabet.len(),
            "trail DFA alphabet must match the CFG edge alphabet"
        );
        let live = coaccessible(dfa);
        let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut nodes: Vec<ProductNode> = Vec::new();
        let mut edges: Vec<ProductEdge> = Vec::new();
        let start = (cfg.entry().index(), dfa.start());
        if !live[dfa.start()] {
            // The trail is empty: produce a graph with just the entry.
            let nodes = vec![ProductNode { cfg_node: cfg.entry(), dfa_state: Some(dfa.start()) }];
            return Self::assemble(nodes, Vec::new(), ProductNodeId(0), Vec::new());
        }
        index.insert(start, 0);
        nodes.push(ProductNode { cfg_node: cfg.entry(), dfa_state: Some(dfa.start()) });
        let mut work = vec![0usize];
        while let Some(i) = work.pop() {
            let (cn_idx, q) = {
                let n = nodes[i];
                (n.cfg_node, n.dfa_state.unwrap())
            };
            for &succ in cfg.succs(cn_idx) {
                let e = Edge::new(cn_idx, succ);
                let q2 = dfa.next(q, alphabet.sym(e));
                if !live[q2] {
                    continue;
                }
                let key = (succ.index(), q2);
                let j = match index.get(&key) {
                    Some(&j) => j,
                    None => {
                        let j = nodes.len();
                        index.insert(key, j);
                        nodes.push(ProductNode { cfg_node: succ, dfa_state: Some(q2) });
                        work.push(j);
                        j
                    }
                };
                edges.push(ProductEdge {
                    from: ProductNodeId(i),
                    to: ProductNodeId(j),
                    cfg_edge: e,
                    cond: branch_info(f, cfg, e),
                });
            }
        }
        let exits = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.cfg_node == cfg.exit() && n.dfa_state.is_some_and(|q| dfa.is_accepting(q))
            })
            .map(|(i, _)| ProductNodeId(i))
            .collect();
        Self::assemble(nodes, edges, ProductNodeId(0), exits)
    }

    /// The product of the CFG with a trail NFA, determinized *on demand*:
    /// nodes are (CFG node, ε-closed NFA state set) pairs, so only the
    /// subset states reachable under the CFG's own edge structure are ever
    /// built — the trail's full subset DFA (worst-case exponential in the
    /// NFA) is never materialized, and no Moore minimization runs.
    ///
    /// Pairs whose automaton component is dead (no contained NFA state can
    /// reach an accepting state) are pruned, exactly as the eager
    /// [`ProductGraph::restricted`] prunes non-coaccessible DFA states. The
    /// `dfa_state` of each node is a synthetic index numbering the subset
    /// states in discovery order.
    ///
    /// Polls the installed `blazer_ir::budget` periodically and returns
    /// [`Exhausted`] instead of completing when it trips.
    pub fn try_restricted_lazy(
        f: &Function,
        cfg: &Cfg,
        nfa: &Nfa,
        alphabet: &EdgeAlphabet,
    ) -> Result<Self, Exhausted> {
        const POLL_PERIOD: usize = 16;
        assert_eq!(
            nfa.alphabet_size() as usize,
            alphabet.len(),
            "trail NFA alphabet must match the CFG edge alphabet"
        );
        let live = nfa.coaccessible();
        let is_live = |s: &BTreeSet<usize>| s.iter().any(|&q| live[q]);
        let start_set = nfa.eps_closure(&BTreeSet::from([nfa.start()]));
        if !is_live(&start_set) {
            // The trail is empty: produce a graph with just the entry.
            let nodes = vec![ProductNode { cfg_node: cfg.entry(), dfa_state: Some(0) }];
            return Ok(Self::assemble(nodes, Vec::new(), ProductNodeId(0), Vec::new()));
        }
        let mut subset_index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        subset_index.insert(start_set.clone(), 0);
        subsets.push(start_set);
        let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut nodes = vec![ProductNode { cfg_node: cfg.entry(), dfa_state: Some(0) }];
        let mut edges: Vec<ProductEdge> = Vec::new();
        index.insert((cfg.entry().index(), 0), 0);
        let mut work = vec![0usize];
        let mut pops = 0usize;
        while let Some(i) = work.pop() {
            pops += 1;
            if pops % POLL_PERIOD == 1 {
                budget::check()?;
            }
            let (cn_idx, mid) = {
                let n = nodes[i];
                (n.cfg_node, n.dfa_state.unwrap())
            };
            for &succ in cfg.succs(cn_idx) {
                let e = Edge::new(cn_idx, succ);
                let s2 = nfa.eps_closure(&nfa.step(&subsets[mid], alphabet.sym(e)));
                if !is_live(&s2) {
                    continue;
                }
                let m2 = match subset_index.get(&s2) {
                    Some(&m) => m,
                    None => {
                        let m = subsets.len();
                        subset_index.insert(s2.clone(), m);
                        subsets.push(s2);
                        m
                    }
                };
                let key = (succ.index(), m2);
                let j = match index.get(&key) {
                    Some(&j) => j,
                    None => {
                        let j = nodes.len();
                        index.insert(key, j);
                        nodes.push(ProductNode { cfg_node: succ, dfa_state: Some(m2) });
                        work.push(j);
                        j
                    }
                };
                edges.push(ProductEdge {
                    from: ProductNodeId(i),
                    to: ProductNodeId(j),
                    cfg_edge: e,
                    cond: branch_info(f, cfg, e),
                });
            }
        }
        let exits = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.cfg_node == cfg.exit()
                    && n.dfa_state
                        .is_some_and(|m| subsets[m].iter().any(|q| nfa.accepting().contains(q)))
            })
            .map(|(i, _)| ProductNodeId(i))
            .collect();
        Ok(Self::assemble(nodes, edges, ProductNodeId(0), exits))
    }

    /// Assembles a graph from explicit parts (used by the seeding module to
    /// build header-split loop bodies).
    pub fn from_parts(
        nodes: Vec<ProductNode>,
        edges: Vec<ProductEdge>,
        entry: ProductNodeId,
        exits: Vec<ProductNodeId>,
    ) -> Self {
        Self::assemble(nodes, edges, entry, exits)
    }

    fn assemble(
        nodes: Vec<ProductNode>,
        edges: Vec<ProductEdge>,
        entry: ProductNodeId,
        exits: Vec<ProductNodeId>,
    ) -> Self {
        let mut succs = vec![Vec::new(); nodes.len()];
        let mut preds = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            succs[e.from.0].push(i);
            preds[e.to.0].push(i);
        }
        ProductGraph { nodes, edges, entry, exits, succs, preds }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[ProductNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[ProductEdge] {
        &self.edges
    }

    /// One node.
    pub fn node(&self, id: ProductNodeId) -> ProductNode {
        self.nodes[id.0]
    }

    /// The entry node.
    pub fn entry(&self) -> ProductNodeId {
        self.entry
    }

    /// Accepted exit nodes.
    pub fn exits(&self) -> &[ProductNodeId] {
        &self.exits
    }

    /// Indices into [`ProductGraph::edges`] of edges leaving `n`.
    pub fn succ_edges(&self, n: ProductNodeId) -> &[usize] {
        &self.succs[n.0]
    }

    /// Indices into [`ProductGraph::edges`] of edges entering `n`.
    pub fn pred_edges(&self, n: ProductNodeId) -> &[usize] {
        &self.preds[n.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true: entry always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> Vec<ProductNodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(self.entry.0, 0)];
        visited[self.entry.0] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs[n].len() {
                let t = self.edges[self.succs[n][*i]].to.0;
                *i += 1;
                if !visited[t] {
                    visited[t] = true;
                    stack.push((t, 0));
                }
            } else {
                order.push(ProductNodeId(n));
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Targets of back edges with respect to a DFS from the entry — the
    /// widening points.
    pub fn back_edge_targets(&self) -> Vec<ProductNodeId> {
        let rpo = self.reverse_postorder();
        let mut pos = vec![usize::MAX; self.nodes.len()];
        for (i, n) in rpo.iter().enumerate() {
            pos[n.0] = i;
        }
        let mut targets = Vec::new();
        for e in &self.edges {
            if pos[e.from.0] != usize::MAX
                && pos[e.to.0] != usize::MAX
                && pos[e.to.0] <= pos[e.from.0]
                && !targets.contains(&e.to)
            {
                targets.push(e.to);
            }
        }
        targets
    }

    /// Strongly connected components with more than one node or a self
    /// loop (i.e., the loops), in reverse topological order of Tarjan's
    /// algorithm (inner-to-outer is *not* guaranteed; the bound analysis
    /// recurses explicitly).
    pub fn cyclic_sccs(&self) -> Vec<Vec<ProductNodeId>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<ProductNodeId>> = Vec::new();

        // Iterative Tarjan.
        #[derive(Debug)]
        struct Frame {
            node: usize,
            succ_pos: usize,
        }
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames = vec![Frame { node: root, succ_pos: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(frame) = frames.last_mut() {
                let v = frame.node;
                if frame.succ_pos < self.succs[v].len() {
                    let w = self.edges[self.succs[v][frame.succ_pos]].to.0;
                    frame.succ_pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push(Frame { node: w, succ_pos: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            comp.push(ProductNodeId(w));
                            if w == v {
                                break;
                            }
                        }
                        let cyclic = comp.len() > 1
                            || self.succs[v].iter().any(|&ei| self.edges[ei].to.0 == v);
                        if cyclic {
                            comp.sort();
                            sccs.push(comp);
                        }
                    }
                    let finished = frames.pop().unwrap().node;
                    if let Some(parent) = frames.last() {
                        low[parent.node] = low[parent.node].min(low[finished]);
                    }
                }
            }
        }
        sccs
    }
}

/// DFA states from which some accepting state is reachable.
fn coaccessible(dfa: &Dfa) -> Vec<bool> {
    let n = dfa.n_states();
    // Reverse edges.
    let mut rev = vec![Vec::new(); n];
    for q in 0..n {
        for s in 0..dfa.alphabet_size() {
            rev[dfa.next(q, s)].push(q);
        }
    }
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&q| dfa.is_accepting(q)).collect();
    for &q in &stack {
        live[q] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &rev[q] {
            if !live[p] {
                live[p] = true;
                stack.push(p);
            }
        }
    }
    live
}

/// The branch condition attached to a CFG edge, if its source is a branch.
fn branch_info(f: &Function, cfg: &Cfg, e: Edge) -> Option<(Cond, bool)> {
    let bid = e.from.as_block(cfg.n_blocks())?;
    match &f.block(bid).term {
        blazer_ir::Terminator::Branch { cond, then_bb, else_bb } => {
            if then_bb == else_bb {
                // Both arms coincide: the edge carries no information.
                return None;
            }
            let taken = NodeId::block(*then_bb) == e.to;
            Some((cond.clone(), taken))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::EdgeAlphabet;
    use blazer_automata::{graph_to_regex, Dfa, Regex};
    use blazer_lang::compile;

    fn loop_fn() -> (blazer_ir::Program, String) {
        let src = "fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }";
        (compile(src).unwrap(), "f".to_string())
    }

    #[test]
    fn full_graph_mirrors_cfg() {
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let g = ProductGraph::full(f, &cfg);
        assert_eq!(g.len(), cfg.n_nodes());
        assert_eq!(g.edges().len(), cfg.edges().len());
        assert_eq!(g.exits().len(), 1);
        // Branch edges carry their conditions.
        let n_cond = g.edges().iter().filter(|e| e.cond.is_some()).count();
        assert_eq!(n_cond, 2);
    }

    #[test]
    fn back_edges_and_sccs_found() {
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let g = ProductGraph::full(f, &cfg);
        assert_eq!(g.back_edge_targets().len(), 1);
        let sccs = g.cyclic_sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2); // loop head + body
    }

    #[test]
    fn restriction_to_most_general_trail_is_identity_like() {
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        // Most general trail: the CFG automaton's own language.
        let edges: Vec<(usize, blazer_automata::Sym, usize)> =
            cfg.edges().into_iter().map(|e| (e.from.index(), alpha.sym(e), e.to.index())).collect();
        let r = graph_to_regex(cfg.n_nodes(), &edges, cfg.entry().index(), &[cfg.exit().index()]);
        let dfa = Dfa::from_regex(&r, alpha.len() as u32).minimize();
        let g = ProductGraph::restricted(f, &cfg, &dfa, &alpha);
        // Every CFG node appears, and there is at least one accepted exit.
        assert!(g.len() >= cfg.n_nodes());
        assert!(!g.exits().is_empty());
        assert_eq!(g.cyclic_sccs().len(), 1);
    }

    #[test]
    fn restriction_to_empty_trail_has_no_exit() {
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        let dfa = Dfa::from_regex(&Regex::Empty, alpha.len() as u32);
        let g = ProductGraph::restricted(f, &cfg, &dfa, &alpha);
        assert!(g.exits().is_empty());
    }

    #[test]
    fn restriction_unrolls_loops() {
        // Trail taking the loop exactly once: product duplicates the head.
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        // Build the trail: entry→head (head→body body→head) head→after
        // after→exit, i.e. exactly one iteration.
        let find = |from: usize, to: usize| {
            alpha.sym(Edge::new(
                NodeId::block(blazer_ir::BlockId::new(from as u32)),
                if to == cfg.n_blocks() {
                    cfg.exit()
                } else {
                    NodeId::block(blazer_ir::BlockId::new(to as u32))
                },
            ))
        };
        let r = Regex::symbol(find(0, 1))
            .then(Regex::symbol(find(1, 2)))
            .then(Regex::symbol(find(2, 1)))
            .then(Regex::symbol(find(1, 3)))
            .then(Regex::symbol(find(3, 4)));
        let dfa = Dfa::from_regex(&r, alpha.len() as u32).minimize();
        let g = ProductGraph::restricted(f, &cfg, &dfa, &alpha);
        // The loop head appears twice (before and after the iteration), and
        // the product graph is acyclic.
        let head_copies = g
            .nodes()
            .iter()
            .filter(|n| n.cfg_node == NodeId::block(blazer_ir::BlockId::new(1)))
            .count();
        assert_eq!(head_copies, 2);
        assert!(g.cyclic_sccs().is_empty());
        assert_eq!(g.exits().len(), 1);

        // The lazy construction restricts identically: acyclic, one exit,
        // the head duplicated across the two subset states it pairs with.
        let nfa = blazer_automata::Nfa::from_regex(&r, alpha.len() as u32);
        let lazy = ProductGraph::try_restricted_lazy(f, &cfg, &nfa, &alpha).unwrap();
        let lazy_head_copies = lazy
            .nodes()
            .iter()
            .filter(|n| n.cfg_node == NodeId::block(blazer_ir::BlockId::new(1)))
            .count();
        assert_eq!(lazy_head_copies, 2);
        assert!(lazy.cyclic_sccs().is_empty());
        assert_eq!(lazy.exits().len(), 1);
    }

    #[test]
    fn lazy_restriction_mirrors_eager_structure() {
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        let edges: Vec<(usize, blazer_automata::Sym, usize)> =
            cfg.edges().into_iter().map(|e| (e.from.index(), alpha.sym(e), e.to.index())).collect();
        let r = graph_to_regex(cfg.n_nodes(), &edges, cfg.entry().index(), &[cfg.exit().index()]);
        let nfa = blazer_automata::Nfa::from_regex(&r, alpha.len() as u32);
        let g = ProductGraph::try_restricted_lazy(f, &cfg, &nfa, &alpha).unwrap();
        // Every CFG node appears, there is an accepted exit, and the loop
        // survives restriction to the most general trail.
        let cfg_nodes: std::collections::BTreeSet<usize> =
            g.nodes().iter().map(|n| n.cfg_node.index()).collect();
        assert_eq!(cfg_nodes.len(), cfg.n_nodes());
        assert!(!g.exits().is_empty());
        assert_eq!(g.cyclic_sccs().len(), 1);
    }

    #[test]
    fn lazy_restriction_to_empty_trail_has_no_exit() {
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        let nfa = blazer_automata::Nfa::from_regex(&Regex::Empty, alpha.len() as u32);
        let g = ProductGraph::try_restricted_lazy(f, &cfg, &nfa, &alpha).unwrap();
        assert!(g.exits().is_empty());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn lazy_restriction_cooperates_with_the_budget() {
        use blazer_ir::budget::{Budget, Resource};
        let (p, name) = loop_fn();
        let f = p.function(&name).unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        let edges: Vec<(usize, blazer_automata::Sym, usize)> =
            cfg.edges().into_iter().map(|e| (e.from.index(), alpha.sym(e), e.to.index())).collect();
        let r = graph_to_regex(cfg.n_nodes(), &edges, cfg.entry().index(), &[cfg.exit().index()]);
        let nfa = blazer_automata::Nfa::from_regex(&r, alpha.len() as u32);
        let _g = Budget::unlimited().with_deadline(std::time::Duration::ZERO).install();
        let err = ProductGraph::try_restricted_lazy(f, &cfg, &nfa, &alpha)
            .expect_err("dead deadline trips the first poll");
        assert_eq!(err.resource, Resource::WallClock);
    }
}
