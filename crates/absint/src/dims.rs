//! Mapping IR variables to abstract-domain dimensions.

use blazer_ir::{Function, Operand, Type, VarId};

/// The dimension layout used by every analysis in this workspace:
///
/// * dimension `v.index()` holds variable `v`'s numeric value — the integer
///   itself for scalars, the *length* for arrays (with `-1` meaning null);
/// * dimension `n_vars + i` is the frozen *seed* of the `i`-th parameter:
///   its value at function entry. Seeds are never assigned, so invariants
///   and bounds can be expressed over them symbolically.
#[derive(Debug, Clone)]
pub struct DimMap {
    n_vars: usize,
    params: Vec<VarId>,
    snapshots: bool,
}

impl DimMap {
    /// The layout for `f`.
    pub fn new(f: &Function) -> Self {
        DimMap {
            n_vars: f.vars().len(),
            params: f.params().iter().map(|p| p.var).collect(),
            snapshots: false,
        }
    }

    /// The layout for `f` extended with one *snapshot* dimension per
    /// variable. Snapshot dimensions are never assigned by the transfer
    /// functions; the seeding module pins them to the loop-header values so
    /// the fixpoint computes a transition invariant (old vs. new).
    pub fn with_snapshots(f: &Function) -> Self {
        DimMap { snapshots: true, ..DimMap::new(f) }
    }

    /// Total number of dimensions (variables + seeds + snapshots if any).
    pub fn n_dims(&self) -> usize {
        let base = self.n_vars + self.params.len();
        if self.snapshots {
            base + self.n_vars
        } else {
            base
        }
    }

    /// The snapshot dimension of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if this layout was not created by [`DimMap::with_snapshots`].
    pub fn snap(&self, v: VarId) -> usize {
        assert!(self.snapshots, "layout has no snapshot dimensions");
        self.n_vars + self.params.len() + v.index()
    }

    /// Number of variables (snapshot dimensions mirror `0..n_vars`).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The dimension of a variable's numeric value.
    pub fn var(&self, v: VarId) -> usize {
        v.index()
    }

    /// The dimension of an operand, if it is a variable.
    pub fn operand(&self, op: Operand) -> Option<usize> {
        op.as_var().map(|v| self.var(v))
    }

    /// The seed dimension of the `i`-th parameter.
    pub fn seed(&self, i: usize) -> usize {
        self.n_vars + i
    }

    /// The seed dimension of parameter variable `v`, if `v` is a parameter.
    pub fn seed_of_var(&self, v: VarId) -> Option<usize> {
        self.params.iter().position(|&p| p == v).map(|i| self.seed(i))
    }

    /// All seed dimensions.
    pub fn seeds(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.params.len()).map(|i| self.seed(i))
    }

    /// The parameter variable of a seed dimension, if `dim` is a seed.
    pub fn param_of_seed(&self, dim: usize) -> Option<VarId> {
        dim.checked_sub(self.n_vars).and_then(|i| self.params.get(i)).copied()
    }

    /// A human-readable name for a dimension.
    pub fn describe(&self, f: &Function, dim: usize) -> String {
        if let Some(v) = self.param_of_seed(dim) {
            let name = &f.var(v).name;
            if f.var(v).ty == Type::Array {
                format!("{name}.len")
            } else {
                name.clone()
            }
        } else {
            let v = VarId::new(dim as u32);
            let name = &f.var(v).name;
            if f.var(v).ty == Type::Array {
                format!("len({name})")
            } else {
                name.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    #[test]
    fn layout() {
        let p = compile("fn f(a: int, b: array) { let c: int = a; }").unwrap();
        let f = p.function("f").unwrap();
        let dm = DimMap::new(f);
        assert_eq!(dm.n_dims(), f.vars().len() + 2);
        let a = f.var_by_name("a").unwrap();
        let b = f.var_by_name("b").unwrap();
        let c = f.var_by_name("c").unwrap();
        assert_eq!(dm.var(a), 0);
        assert_eq!(dm.seed_of_var(a), Some(f.vars().len()));
        assert_eq!(dm.seed_of_var(b), Some(f.vars().len() + 1));
        assert_eq!(dm.seed_of_var(c), None);
        assert_eq!(dm.param_of_seed(dm.seed(0)), Some(a));
        assert_eq!(dm.param_of_seed(0), None);
    }

    #[test]
    fn descriptions() {
        let p = compile("fn f(a: int, b: array) { }").unwrap();
        let f = p.function("f").unwrap();
        let dm = DimMap::new(f);
        assert_eq!(dm.describe(f, 0), "a");
        assert_eq!(dm.describe(f, 1), "len(b)");
        assert_eq!(dm.describe(f, dm.seed(0)), "a");
        assert_eq!(dm.describe(f, dm.seed(1)), "b.len");
    }
}
