//! Transition invariants via the seeding technique.
//!
//! "We leverage the seeding technique [Berdine et al.] to compute transition
//! invariants [Podelski–Rybalchenko], and match these invariants against a
//! database of complexity-bound lemmas" (Sec. 5). This module computes, for
//! one loop of a product graph, the relation between the variable values at
//! a loop-header visit and at the *next* header visit.
//!
//! Mechanically: every variable gets a frozen *snapshot* dimension pinned to
//! its value at the header; back edges into the header are redirected to a
//! fresh copy of the header ("header split"), and the ordinary fixpoint
//! engine is run on that graph. The state reaching the header copy relates
//! snapshots (old) to variables (new) after exactly one full iteration —
//! inner nested loops are summarized by the fixpoint as usual.

use crate::dims::DimMap;
use crate::engine::{analyze, AnalysisResult};
use crate::product::{ProductEdge, ProductGraph, ProductNode, ProductNodeId};
use blazer_domains::{AbstractDomain, Constraint, LinExpr, Polyhedron};
use blazer_ir::{Function, Program, VarId};

/// A loop's transition invariant: a polyhedron over variables (new values),
/// seeds, and snapshots (values at the previous header visit).
#[derive(Debug, Clone)]
pub struct TransitionInvariant {
    /// The dimension layout (with snapshots) the relation is expressed in.
    pub dims: DimMap,
    /// The relation. Bottom means the loop body cannot complete an
    /// iteration (the header is never re-reached).
    pub relation: Polyhedron,
}

impl TransitionInvariant {
    /// Bounds of `expr(new) − expr(old)` over one iteration: how much a
    /// linear expression over *variables* changes per iteration.
    ///
    /// Returns `(inf, sup)` with `None` for unbounded directions.
    pub fn delta_bounds(
        &self,
        expr_over_vars: &LinExpr,
    ) -> (Option<blazer_domains::Rat>, Option<blazer_domains::Rat>) {
        // new − old: rewrite var dims into snapshot dims for the "old" copy.
        let old = expr_over_vars.rename(|d| {
            if d < self.dims.n_vars() {
                self.dims.snap(VarId::new(d as u32))
            } else {
                d // seeds are constant across iterations
            }
        });
        let delta = expr_over_vars.sub(&old);
        self.relation.bounds(&delta)
    }
}

/// Computes the transition invariant of the loop (SCC) of `graph` with the
/// given `header`, starting from the abstract `head_state` the main analysis
/// computed there.
pub fn loop_transition_invariant<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    graph: &ProductGraph,
    scc: &[ProductNodeId],
    header: ProductNodeId,
    head_state: &D,
) -> TransitionInvariant {
    let dims = DimMap::with_snapshots(f);
    let n_vars = dims.n_vars();

    // Initial state: the header invariant, with every snapshot pinned to
    // its variable. The fixpoint runs in the same domain D as the caller's
    // analysis; the relation is concretized to a polyhedron at the end.
    let base = head_state.to_polyhedron();
    let mut init = D::top(dims.n_dims());
    for c in base.constraints() {
        init.meet_constraint(c);
    }
    for v in 0..n_vars {
        let var = VarId::new(v as u32);
        init.meet_constraint(&Constraint::eq(&LinExpr::var(v), &LinExpr::var(dims.snap(var))));
    }

    let (split, sink) = header_split_graph(graph, scc, header);
    let result: AnalysisResult<D> = analyze(program, f, &dims, &split, init);
    TransitionInvariant { dims, relation: result.states[sink.0].to_polyhedron() }
}

/// Builds the header-split copy of a loop: the SCC's nodes with back edges
/// into `header` redirected to a fresh copy of it. Paths from the entry
/// (the original header) to the returned sink node are exactly the
/// one-iteration paths; inner nested loops remain as cycles.
///
/// Also used by `blazer-bounds` to bound per-iteration cost and the partial
/// paths taken when exiting a loop mid-body.
pub fn header_split_graph(
    graph: &ProductGraph,
    scc: &[ProductNodeId],
    header: ProductNodeId,
) -> (ProductGraph, ProductNodeId) {
    let mut node_index: Vec<Option<usize>> = vec![None; graph.len()];
    let mut nodes: Vec<ProductNode> = Vec::new();
    for &n in scc {
        node_index[n.0] = Some(nodes.len());
        nodes.push(graph.node(n));
    }
    let sink = nodes.len();
    nodes.push(graph.node(header)); // the header copy
    let mut edges = Vec::new();
    for e in graph.edges() {
        let (Some(from), Some(_)) = (node_index[e.from.0], node_index[e.to.0]) else {
            continue;
        };
        if !scc.contains(&e.from) || !scc.contains(&e.to) {
            continue;
        }
        let to = if e.to == header { sink } else { node_index[e.to.0].unwrap() };
        edges.push(ProductEdge {
            from: ProductNodeId(from),
            to: ProductNodeId(to),
            cfg_edge: e.cfg_edge,
            cond: e.cond.clone(),
        });
    }
    let entry = ProductNodeId(node_index[header.0].expect("header in scc"));
    let split = ProductGraph::from_parts(nodes, edges, entry, vec![ProductNodeId(sink)]);
    (split, ProductNodeId(sink))
}

/// Maps a node of the split graph built by [`header_split_graph`] back to
/// the original graph node (the sink maps to the header).
pub fn split_node_origin(
    scc: &[ProductNodeId],
    header: ProductNodeId,
    split_node: ProductNodeId,
) -> ProductNodeId {
    if split_node.0 == scc.len() {
        header
    } else {
        scc[split_node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::EdgeAlphabet;
    use crate::transfer::entry_state;
    use blazer_domains::Rat;
    use blazer_ir::Cfg;
    use blazer_lang::compile;

    fn setup(src: &str) -> (blazer_ir::Program, DimMap, ProductGraph, AnalysisResult<Polyhedron>) {
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let g = ProductGraph::full(f, &cfg);
        let init: Polyhedron = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        let _ = EdgeAlphabet::new(&cfg);
        (p, dims, g, r)
    }

    /// The unique loop of the graph: (scc, header).
    fn the_loop(g: &ProductGraph) -> (Vec<ProductNodeId>, ProductNodeId) {
        let sccs = g.cyclic_sccs();
        assert_eq!(sccs.len(), 1, "expected exactly one loop");
        let scc = sccs[0].clone();
        let headers = g.back_edge_targets();
        let header = *headers.iter().find(|h| scc.contains(h)).expect("header in scc");
        (scc, header)
    }

    #[test]
    fn increment_loop_has_unit_delta() {
        let (p, dims, g, r) =
            setup("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }");
        let f = p.function("f").unwrap();
        let (scc, header) = the_loop(&g);
        let ti = loop_transition_invariant(&p, f, &g, &scc, header, r.state(header));
        assert!(!ti.relation.is_empty());
        let i = dims.var(f.var_by_name("i").unwrap());
        let (lo, hi) = ti.delta_bounds(&LinExpr::var(i));
        assert_eq!(lo, Some(Rat::ONE));
        assert_eq!(hi, Some(Rat::ONE));
    }

    #[test]
    fn decrement_loop_has_negative_delta() {
        let (p, dims, g, r) =
            setup("fn f(n: int) { let i: int = n; while (i > 0) { i = i - 2; } }");
        let f = p.function("f").unwrap();
        let (scc, header) = the_loop(&g);
        let ti = loop_transition_invariant(&p, f, &g, &scc, header, r.state(header));
        let i = dims.var(f.var_by_name("i").unwrap());
        let (lo, hi) = ti.delta_bounds(&LinExpr::var(i));
        assert_eq!(lo, Some(Rat::int(-2)));
        assert_eq!(hi, Some(Rat::int(-2)));
    }

    #[test]
    fn branchy_body_gives_delta_range() {
        let (p, dims, g, r) = setup(
            "fn f(n: int, c: int) { \
                let i: int = 0; \
                while (i < n) { \
                    if (c > 0) { i = i + 1; } else { i = i + 3; } \
                } \
            }",
        );
        let f = p.function("f").unwrap();
        let (scc, header) = the_loop(&g);
        let ti = loop_transition_invariant(&p, f, &g, &scc, header, r.state(header));
        let i = dims.var(f.var_by_name("i").unwrap());
        let (lo, hi) = ti.delta_bounds(&LinExpr::var(i));
        assert_eq!(lo, Some(Rat::ONE));
        assert_eq!(hi, Some(Rat::int(3)));
    }

    #[test]
    fn seeds_are_iteration_invariant() {
        let (p, dims, g, r) =
            setup("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }");
        let f = p.function("f").unwrap();
        let (scc, header) = the_loop(&g);
        let ti = loop_transition_invariant(&p, f, &g, &scc, header, r.state(header));
        // The seed of n does not change across an iteration.
        let (lo, hi) = ti.delta_bounds(&LinExpr::var(dims.seed(0)));
        assert_eq!((lo, hi), (Some(Rat::ZERO), Some(Rat::ZERO)));
    }

    #[test]
    fn guard_holds_inside_relation() {
        // Iterations only happen while i < n: the relation entails
        // old_i ≤ n − 1.
        let (p, dims, g, r) =
            setup("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }");
        let f = p.function("f").unwrap();
        let (scc, header) = the_loop(&g);
        let ti = loop_transition_invariant(&p, f, &g, &scc, header, r.state(header));
        let i_var = f.var_by_name("i").unwrap();
        let old_i = LinExpr::var(ti.dims.snap(i_var));
        let n_seed = LinExpr::var(dims.seed(0));
        assert!(ti.relation.entails(&Constraint::le(&old_i.add_constant(Rat::ONE), &n_seed)));
    }
}
