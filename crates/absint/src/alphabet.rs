//! Interning CFG edges as automaton symbols.

use blazer_automata::Sym;
use blazer_ir::{Cfg, Edge};
use std::collections::BTreeMap;

/// A bijection between the edges of one CFG and the dense symbol range
/// `0..len`. Trails over the CFG are regular expressions over these symbols.
#[derive(Debug, Clone)]
pub struct EdgeAlphabet {
    edges: Vec<Edge>,
    index: BTreeMap<Edge, Sym>,
}

impl EdgeAlphabet {
    /// The alphabet of all edges of `cfg`, in `cfg.edges()` order.
    pub fn new(cfg: &Cfg) -> Self {
        let edges = cfg.edges();
        let index = edges.iter().enumerate().map(|(i, &e)| (e, i as Sym)).collect();
        EdgeAlphabet { edges, index }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the CFG had no edges at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The symbol of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not an edge of the underlying CFG.
    pub fn sym(&self, edge: Edge) -> Sym {
        self.index[&edge]
    }

    /// The edge of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is out of range.
    pub fn edge(&self, sym: Sym) -> Edge {
        self.edges[sym as usize]
    }

    /// Converts a trace's edge sequence to a word over this alphabet.
    pub fn word_of(&self, edges: &[Edge]) -> Vec<Sym> {
        edges.iter().map(|e| self.sym(*e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    #[test]
    fn round_trip() {
        let p = compile("fn f(n: int) { if (n > 0) { tick(1); } }").unwrap();
        let cfg = Cfg::new(p.function("f").unwrap());
        let alpha = EdgeAlphabet::new(&cfg);
        assert!(!alpha.is_empty());
        for (i, e) in cfg.edges().into_iter().enumerate() {
            assert_eq!(alpha.sym(e), i as Sym);
            assert_eq!(alpha.edge(i as Sym), e);
        }
    }

    #[test]
    fn word_of_trace_edges() {
        let p = compile("fn f() { tick(1); }").unwrap();
        let cfg = Cfg::new(p.function("f").unwrap());
        let alpha = EdgeAlphabet::new(&cfg);
        let word = alpha.word_of(&cfg.edges());
        assert_eq!(word, (0..alpha.len() as Sym).collect::<Vec<_>>());
    }
}
