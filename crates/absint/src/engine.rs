//! The worklist fixpoint engine over product graphs.

use crate::dims::DimMap;
use crate::product::{ProductGraph, ProductNodeId};
use crate::transfer::{apply_cond, transfer_block};
use blazer_domains::AbstractDomain;
use blazer_ir::{Function, Program};

/// How many joins a widening point absorbs before widening kicks in.
const WIDENING_DELAY: usize = 2;

/// How many decreasing (narrowing) passes run after stabilization.
const NARROWING_PASSES: usize = 2;

/// The result of an abstract interpretation run.
#[derive(Debug, Clone)]
pub struct AnalysisResult<D> {
    /// Abstract state at each product node, *before* the node's block
    /// executes. Unreachable nodes are bottom.
    pub states: Vec<D>,
}

impl<D: AbstractDomain> AnalysisResult<D> {
    /// The state at `n`.
    pub fn state(&self, n: ProductNodeId) -> &D {
        &self.states[n.0]
    }

    /// The state flowing along edge `edge_idx`: the source state pushed
    /// through the source block and refined by the edge's branch condition.
    pub fn edge_output(
        &self,
        program: &Program,
        f: &Function,
        dims: &DimMap,
        graph: &ProductGraph,
        edge_idx: usize,
    ) -> D {
        let e = &graph.edges()[edge_idx];
        let mut d = self.states[e.from.0].clone();
        if let Some(bid) = graph
            .node(e.from)
            .cfg_node
            .as_block(usize::MAX)
            .filter(|b| b.index() < f.blocks().len())
        {
            transfer_block(program, f, dims, bid, &mut d);
        }
        if let Some((cond, taken)) = &e.cond {
            apply_cond(dims, cond, *taken, &mut d);
        }
        d
    }

    /// Whether an edge can ever be taken (its output is non-bottom). This
    /// is the infeasible-path pruning that lets Blazer verify examples like
    /// `loopAndBranch` where "the potentially vulnerable trail is
    /// infeasible, which is caught by the abstract interpreter" (Sec. 6).
    pub fn edge_feasible(
        &self,
        program: &Program,
        f: &Function,
        dims: &DimMap,
        graph: &ProductGraph,
        edge_idx: usize,
    ) -> bool {
        !self.edge_output(program, f, dims, graph, edge_idx).is_bottom()
    }
}

/// What one fixpoint run cost and how it started — surfaced so the driver
/// can report the pass savings of incremental seeding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Iteration passes consumed: increasing (widening) plus decreasing
    /// (narrowing) sweeps over the graph.
    pub passes: u64,
    /// Whether the run started from a non-⊥ seed iterate.
    pub seeded: bool,
}

/// Runs the fixpoint on `graph` starting from `init` at the entry node.
///
/// Widening (with a small delay counted in back-edge-contributing joins) is
/// applied at targets of back edges; after stabilization, two decreasing
/// passes recover precision lost to widening (e.g. loop exit bounds).
pub fn analyze<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    init: D,
) -> AnalysisResult<D> {
    analyze_from(program, f, dims, graph, init, None).0
}

/// [`analyze`], but starting the increasing iteration from `seed` (one
/// state per product node) instead of ⊥-everywhere, and reporting pass
/// counts.
///
/// Any seed is sound: the increasing loop is inflationary (each update
/// joins the previous iterate), so whatever it starts from, the converged
/// states satisfy `state ⊇ F(state)` at every node — a post-fixpoint of
/// the abstract transition function, which over-approximates concrete
/// reachability — and narrowing preserves that. A seed *above* the least
/// fixpoint (e.g. a parent trail's post-states) converges in fewer passes;
/// a seed unrelated to it merely wastes precision, never soundness.
pub fn analyze_from<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    graph: &ProductGraph,
    init: D,
    seed: Option<Vec<D>>,
) -> (AnalysisResult<D>, FixpointStats) {
    let n = graph.len();
    let mut stats = FixpointStats { passes: 0, seeded: seed.is_some() };
    let mut states: Vec<D> = match seed {
        Some(seed) => {
            debug_assert_eq!(seed.len(), n, "seed must cover every product node");
            seed
        }
        None => (0..n).map(|_| D::bottom(dims.n_dims())).collect(),
    };
    states[graph.entry().0] = if stats.seeded {
        // Keep the seeded entry state too: the iterate may only grow.
        states[graph.entry().0].join(&init)
    } else {
        init.clone()
    };

    let widen_at: Vec<bool> = {
        let mut v = vec![false; n];
        for t in graph.back_edge_targets() {
            v[t.0] = true;
        }
        v
    };
    let rpo = graph.reverse_postorder();
    // Back edges: source at or after the target in reverse postorder.
    let mut rpo_pos = vec![usize::MAX; n];
    for (i, nd) in rpo.iter().enumerate() {
        rpo_pos[nd.0] = i;
    }
    let is_back_edge = |ei: usize| {
        let e = &graph.edges()[ei];
        rpo_pos[e.from.0] != usize::MAX
            && rpo_pos[e.to.0] != usize::MAX
            && rpo_pos[e.to.0] <= rpo_pos[e.from.0]
    };
    // The widening delay counts only updates where a back edge actually
    // contributes: churn from upstream stabilization must not exhaust the
    // delay before the loop's own relation has a chance to form.
    let mut join_counts = vec![0usize; n];

    // Increasing iteration with widening. The pass cap is a safety valve:
    // saturated widening stabilizes in a handful of passes in practice, but
    // if it ever oscillated we fall back to widening straight to top
    // (always sound).
    const MAX_PASSES: usize = 64;
    let mut result = AnalysisResult { states };
    // Edge-output memoization: a transfer only needs recomputing when its
    // source state changed.
    let mut node_version: Vec<u64> = vec![0; n];
    let mut edge_cache: Vec<Option<(u64, D)>> = vec![None; graph.edges().len()];
    let mut passes = 0usize;
    loop {
        if blazer_ir::budget::consume_fixpoint_pass().is_err() {
            // Budget exhausted mid-fixpoint: the current iterate is not yet a
            // post-fixpoint, so it cannot be used as an invariant. Widen every
            // state to top — trivially sound — and skip narrowing.
            blazer_ir::budget::note_degradation(
                "absint: fixpoint aborted by exhausted budget; states widened to top",
            );
            for s in result.states.iter_mut() {
                *s = D::top(dims.n_dims());
            }
            return (result, stats);
        }
        passes += 1;
        stats.passes += 1;
        let mut changed = false;
        for &node in &rpo {
            // A single pass over an expensive domain can outlive the whole
            // wall-clock budget; poll the deadline per node so one pass
            // cannot overshoot by more than one transfer's work. (Softer
            // caps — LP calls etc. — deny work at their own call sites.)
            if blazer_ir::budget::deadline_exceeded() {
                blazer_ir::budget::note_degradation(
                    "absint: fixpoint aborted by deadline mid-pass; states widened to top",
                );
                for s in result.states.iter_mut() {
                    *s = D::top(dims.n_dims());
                }
                return (result, stats);
            }
            let mut incoming =
                if node == graph.entry() { init.clone() } else { D::bottom(dims.n_dims()) };
            let mut back_contributes = false;
            for &ei in graph.pred_edges(node) {
                let from = graph.edges()[ei].from;
                let out = match &edge_cache[ei] {
                    Some((v, cached)) if *v == node_version[from.0] => cached.clone(),
                    _ => {
                        let out = result.edge_output(program, f, dims, graph, ei);
                        edge_cache[ei] = Some((node_version[from.0], out.clone()));
                        out
                    }
                };
                if !out.is_bottom() && is_back_edge(ei) {
                    back_contributes = true;
                }
                incoming = if widen_at[node.0] {
                    incoming.join_widen_point(&out)
                } else {
                    incoming.join(&out)
                };
            }
            let old = &result.states[node.0];
            let new = if widen_at[node.0] && join_counts[node.0] >= WIDENING_DELAY {
                if passes > MAX_PASSES {
                    D::top(dims.n_dims())
                } else {
                    old.widen(&old.join_widen_point(&incoming))
                }
            } else if widen_at[node.0] {
                old.join_widen_point(&incoming)
            } else {
                old.join(&incoming)
            };
            if !old.includes(&new) {
                node_version[node.0] += 1;
                if back_contributes {
                    join_counts[node.0] += 1;
                }
                if let Ok(t) = std::env::var("BLAZER_TRACE_NODE") {
                    if t.parse::<usize>() == Ok(node.0) {
                        eprintln!(
                            "pass {passes} node {} count {}:\n  incoming: {}\n  new: {}",
                            node.0,
                            join_counts[node.0],
                            incoming.to_polyhedron(),
                            new.to_polyhedron()
                        );
                    }
                }
                result.states[node.0] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Decreasing iteration (narrowing): recompute states from scratch
    // inflow and *meet* with the previous iterate. The meet keeps the pass
    // sound and monotonically improving even though the weak join is not a
    // precise least upper bound.
    for _ in 0..NARROWING_PASSES {
        if blazer_ir::budget::consume_fixpoint_pass().is_err() {
            // The increasing phase converged, so `result` is already a sound
            // post-fixpoint; narrowing only refines it. Stop here.
            blazer_ir::budget::note_degradation("absint: narrowing skipped by exhausted budget");
            return (result, stats);
        }
        stats.passes += 1;
        for &node in &rpo {
            // As in the increasing phase: the converged iterate is already
            // sound, so a mid-pass deadline just stops refinement here.
            if blazer_ir::budget::deadline_exceeded() {
                blazer_ir::budget::note_degradation(
                    "absint: narrowing stopped by deadline mid-pass",
                );
                return (result, stats);
            }
            let mut incoming =
                if node == graph.entry() { init.clone() } else { D::bottom(dims.n_dims()) };
            for &ei in graph.pred_edges(node) {
                let out = result.edge_output(program, f, dims, graph, ei);
                incoming = incoming.join(&out);
            }
            if !incoming.is_bottom() {
                let old = result.states[node.0].to_polyhedron();
                for c in old.constraints() {
                    incoming.meet_constraint(c);
                }
            }
            result.states[node.0] = incoming;
        }
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::EdgeAlphabet;
    use crate::transfer::entry_state;
    use blazer_domains::{Constraint, IntervalVec, LinExpr, Polyhedron, Rat};
    use blazer_ir::{Cfg, NodeId};
    use blazer_lang::compile;

    fn analyze_full(
        src: &str,
    ) -> (blazer_ir::Program, DimMap, ProductGraph, AnalysisResult<Polyhedron>) {
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let g = ProductGraph::full(f, &cfg);
        let init: Polyhedron = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        (p, dims, g, r)
    }

    /// Find the product node for a CFG node.
    fn node_for(g: &ProductGraph, n: NodeId) -> ProductNodeId {
        ProductNodeId(g.nodes().iter().position(|pn| pn.cfg_node == n).expect("node present"))
    }

    #[test]
    fn loop_invariant_bounds_counter() {
        let (p, dims, g, r) =
            analyze_full("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }");
        let f = p.function("f").unwrap();
        let i = dims.var(f.var_by_name("i").unwrap());
        let n_seed = dims.seed(0);
        // At the exit, i == n when n ≥ 0 — narrowing must recover i ≤ n and
        // the loop exit gives i ≥ n.
        let cfg = Cfg::new(f);
        let exit_state = r.state(node_for(&g, cfg.exit()));
        assert!(!exit_state.is_bottom());
        assert!(exit_state.entails(&Constraint::ge(&LinExpr::var(i), &LinExpr::var(n_seed))));
        // Inside the loop the counter stays below n.
        let body = node_for(&g, NodeId::block(blazer_ir::BlockId::new(2)));
        let body_state = r.state(body);
        assert!(body_state.entails(&Constraint::ge(&LinExpr::var(n_seed), &LinExpr::var(i))));
        assert!(body_state.entails(&Constraint::ge(&LinExpr::var(i), &LinExpr::zero())));
    }

    #[test]
    fn infeasible_branch_detected() {
        // x = 5 then branch x > 9: the then-edge is infeasible.
        let (p, dims, g, r) = analyze_full("fn f() { let x: int = 5; if (x > 9) { tick(1); } }");
        let f = p.function("f").unwrap();
        let feasible: Vec<bool> =
            (0..g.edges().len()).map(|ei| r.edge_feasible(&p, f, &dims, &g, ei)).collect();
        assert!(feasible.iter().any(|&b| !b), "one edge must be infeasible");
        // The then-block (which contains tick) is unreachable: its state is
        // bottom.
        let tick_block = f
            .iter_blocks()
            .find(|(_, b)| b.insts.iter().any(|i| matches!(i, blazer_ir::Inst::Tick(_))))
            .map(|(bid, _)| bid)
            .unwrap();
        assert!(r.state(node_for(&g, NodeId::block(tick_block))).is_bottom());
    }

    #[test]
    fn paper_ex1_dead_code_is_unreachable() {
        // Sec. 7 ex1: `if false { while (h < x) h++ }` — the loop is dead.
        let (p, _, g, r) = analyze_full(
            "fn f(x: int, h: int #high) { \
                let c: int = 0; \
                if (c == 1) { while (h < x) { h = h + 1; } } \
            }",
        );
        let f = p.function("f").unwrap();
        // The loop head is unreachable.
        let loop_head =
            f.iter_blocks().filter(|(_, b)| b.term.is_branch()).nth(1).map(|(bid, _)| bid).unwrap();
        let _ = &p;
        assert!(r.state(node_for(&g, NodeId::block(loop_head))).is_bottom());
    }

    #[test]
    fn trail_restriction_refines_invariants() {
        // Restricting to the path that skips the loop forces i = 0 at exit.
        let src = "fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }";
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        // Trail: entry→head, head→after, after→exit (zero iterations).
        let b = |i: u32| NodeId::block(blazer_ir::BlockId::new(i));
        let r_trail = blazer_automata::Regex::symbol(alpha.sym(blazer_ir::Edge::new(b(0), b(1))))
            .then(blazer_automata::Regex::symbol(alpha.sym(blazer_ir::Edge::new(b(1), b(3)))))
            .then(blazer_automata::Regex::symbol(
                alpha.sym(blazer_ir::Edge::new(b(3), cfg.exit())),
            ));
        let dfa = blazer_automata::Dfa::from_regex(&r_trail, alpha.len() as u32).minimize();
        let g = ProductGraph::restricted(f, &cfg, &dfa, &alpha);
        let init: Polyhedron = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        let exit = g.exits()[0];
        let i = dims.var(f.var_by_name("i").unwrap());
        let st = r.state(exit);
        assert!(st.entails(&Constraint::eq(&LinExpr::var(i), &LinExpr::zero())));
        // And the zero-iteration path implies n ≤ 0.
        assert!(st.entails(&Constraint::le(&LinExpr::var(dims.seed(0)), &LinExpr::zero())));
    }

    #[test]
    fn interval_domain_also_works() {
        let src = "fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }";
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let g = ProductGraph::full(f, &cfg);
        let init: IntervalVec = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        let i = dims.var(f.var_by_name("i").unwrap());
        let exit = node_for(&g, cfg.exit());
        // Intervals at least learn i ≥ 0 (they cannot relate i to n).
        let (lo, _) = r.state(exit).bounds(&LinExpr::var(i));
        assert_eq!(lo, Some(Rat::ZERO));
    }

    #[test]
    fn nested_loops_terminate_and_bound() {
        let (p, dims, g, r) = analyze_full(
            "fn f(n: int) { \
                let i: int = 0; \
                while (i < n) { \
                    let j: int = 0; \
                    while (j < i) { j = j + 1; } \
                    i = i + 1; \
                } \
            }",
        );
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let exit = node_for(&g, cfg.exit());
        assert!(!r.state(exit).is_bottom());
        let i = dims.var(f.var_by_name("i").unwrap());
        assert!(r.state(exit).entails(&Constraint::ge(&LinExpr::var(i), &LinExpr::zero())));
        let _ = p;
    }
}
