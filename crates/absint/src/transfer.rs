//! Abstract transfer functions for IR instructions and branch conditions.

use crate::dims::DimMap;
use blazer_domains::{AbstractDomain, Constraint, LinExpr, Rat};
use blazer_ir::{BinOp, BlockId, CmpOp, Cond, Expr, Function, Inst, Operand, Program, Type, UnOp};

/// The abstract state at function entry: each parameter equals its frozen
/// seed; array parameters are non-null (length ≥ 0) and boolean parameters
/// lie in `[0, 1]`. Non-parameter locals start at their concrete defaults
/// (0 for scalars, null — length −1 — for arrays), matching the
/// interpreter.
pub fn entry_state<D: AbstractDomain>(f: &Function, dims: &DimMap) -> D {
    let mut d = D::top(dims.n_dims());
    let param_vars: Vec<_> = f.params().iter().map(|p| p.var).collect();
    for (idx, info) in f.vars().iter().enumerate() {
        let v = blazer_ir::VarId::new(idx as u32);
        if param_vars.contains(&v) {
            continue;
        }
        let default = if info.ty == Type::Array { -Rat::ONE } else { Rat::ZERO };
        d.meet_constraint(&Constraint::eq(&LinExpr::var(dims.var(v)), &LinExpr::constant(default)));
    }
    for (i, p) in f.params().iter().enumerate() {
        let var = LinExpr::var(dims.var(p.var));
        let seed = LinExpr::var(dims.seed(i));
        d.meet_constraint(&Constraint::eq(&var, &seed));
        match f.var(p.var).ty {
            Type::Array => {
                d.meet_constraint(&Constraint::ge(&var, &LinExpr::zero()));
                d.meet_constraint(&Constraint::ge(&seed, &LinExpr::zero()));
            }
            Type::Bool => {
                d.meet_constraint(&Constraint::ge(&var, &LinExpr::zero()));
                d.meet_constraint(&Constraint::le(&var, &LinExpr::constant(Rat::ONE)));
            }
            Type::Int => {}
        }
    }
    d
}

/// Converts an operand to a linear expression over dimensions. Array
/// operands denote their length dimension.
pub fn linearize_operand(dims: &DimMap, op: Operand) -> LinExpr {
    match op {
        Operand::Const(c) => LinExpr::constant(Rat::int(c as i128)),
        Operand::Var(v) => LinExpr::var(dims.var(v)),
    }
}

/// Converts an IR expression to a linear expression, when it is linear.
pub fn linearize_expr(dims: &DimMap, expr: &Expr) -> Option<LinExpr> {
    match expr {
        Expr::Operand(op) => Some(linearize_operand(dims, *op)),
        Expr::Unary(UnOp::Neg, a) => Some(linearize_operand(dims, *a).scale(-Rat::ONE)),
        Expr::Unary(UnOp::Not, _) => None,
        Expr::Binary(BinOp::Add, a, b) => {
            Some(linearize_operand(dims, *a).add(&linearize_operand(dims, *b)))
        }
        Expr::Binary(BinOp::Sub, a, b) => {
            Some(linearize_operand(dims, *a).sub(&linearize_operand(dims, *b)))
        }
        Expr::Binary(BinOp::Mul, a, b) => match (a, b) {
            (Operand::Const(c), other) | (other, Operand::Const(c)) => {
                Some(linearize_operand(dims, *other).scale(Rat::int(*c as i128)))
            }
            _ => None,
        },
        Expr::Binary(_, _, _) => None,
        // For an array variable, its numeric dimension *is* its length.
        Expr::ArrayLen(v) => Some(LinExpr::var(dims.var(*v))),
        Expr::ArrayGet(_, _) => None,
        Expr::ArrayNew(n) => Some(linearize_operand(dims, *n)),
    }
}

/// Applies one instruction to the abstract state.
pub fn transfer_inst<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    inst: &Inst,
    state: &mut D,
) {
    if state.is_bottom() {
        return;
    }
    match inst {
        Inst::Assign { dst, expr } => {
            let d = dims.var(*dst);
            match linearize_expr(dims, expr) {
                Some(e) => state.assign_linear(d, &e),
                None => {
                    // Truncating division by a positive constant gets the
                    // relational treatment (needed by the halving lemma).
                    if let Expr::Binary(BinOp::Div, a, Operand::Const(c)) = expr {
                        if *c > 0 {
                            let src = linearize_operand(dims, *a);
                            state.assign_div(d, &src, Rat::int(*c as i128));
                            return;
                        }
                    }
                    state.havoc(d);
                    // Domain-representable refinements for non-linear rhs.
                    match expr {
                        Expr::Unary(UnOp::Not, _) => {
                            let v = LinExpr::var(d);
                            state.meet_constraint(&Constraint::ge(&v, &LinExpr::zero()));
                            state
                                .meet_constraint(&Constraint::le(&v, &LinExpr::constant(Rat::ONE)));
                        }
                        Expr::Binary(BinOp::Rem, _, Operand::Const(c)) if *c != 0 => {
                            // |dst| ≤ |c| − 1.
                            let m = Rat::int((c.abs() - 1) as i128);
                            let v = LinExpr::var(d);
                            state.meet_constraint(&Constraint::le(&v, &LinExpr::constant(m)));
                            state.meet_constraint(&Constraint::ge(&v, &LinExpr::constant(-m)));
                        }
                        _ => {}
                    }
                }
            }
        }
        Inst::ArraySet { .. } => {
            // Element contents are not tracked numerically; lengths are
            // unchanged by stores.
        }
        Inst::Call { dst, callee, .. } => {
            if let Some(dst) = dst {
                let d = dims.var(*dst);
                state.havoc(d);
                let decl = program
                    .extern_decl(callee)
                    .unwrap_or_else(|| panic!("undeclared extern `{callee}`"));
                let v = LinExpr::var(d);
                match decl.ret {
                    Some(Type::Bool) => {
                        state.meet_constraint(&Constraint::ge(&v, &LinExpr::zero()));
                        state.meet_constraint(&Constraint::le(&v, &LinExpr::constant(Rat::ONE)));
                    }
                    Some(Type::Array) => {
                        if let Some((lo, hi)) = decl.ret_len {
                            state.meet_constraint(&Constraint::ge(
                                &v,
                                &LinExpr::constant(Rat::int(lo as i128)),
                            ));
                            state.meet_constraint(&Constraint::le(
                                &v,
                                &LinExpr::constant(Rat::int(hi as i128)),
                            ));
                        }
                    }
                    _ => {}
                }
            }
            let _ = f;
        }
        Inst::Havoc { dst } => state.havoc(dims.var(*dst)),
        Inst::Nop | Inst::Tick(_) => {}
    }
}

/// Applies all instructions of `block` to the state (terminator conditions
/// are applied separately, per outgoing edge, via [`apply_cond`]).
pub fn transfer_block<D: AbstractDomain>(
    program: &Program,
    f: &Function,
    dims: &DimMap,
    block: BlockId,
    state: &mut D,
) {
    for inst in &f.block(block).insts {
        transfer_inst(program, f, dims, inst, state);
    }
}

/// Refines the state with a branch condition (negated when `taken` is
/// false), using integer tightening for strict comparisons.
pub fn apply_cond<D: AbstractDomain>(dims: &DimMap, cond: &Cond, taken: bool, state: &mut D) {
    let cond = if taken { cond.clone() } else { cond.negate() };
    match cond {
        Cond::Cmp(op, a, b) => {
            let ea = linearize_operand(dims, a);
            let eb = linearize_operand(dims, b);
            let one = LinExpr::constant(Rat::ONE);
            match op {
                CmpOp::Eq => state.meet_constraint(&Constraint::eq(&ea, &eb)),
                CmpOp::Ne => {} // disjunctive; no convex refinement
                CmpOp::Lt => {
                    state.meet_constraint(&Constraint::le(&ea.add(&one), &eb));
                }
                CmpOp::Le => state.meet_constraint(&Constraint::le(&ea, &eb)),
                CmpOp::Gt => {
                    state.meet_constraint(&Constraint::ge(&ea, &eb.add(&one)));
                }
                CmpOp::Ge => state.meet_constraint(&Constraint::ge(&ea, &eb)),
            }
        }
        Cond::Null { arr, is_null } => {
            let len = LinExpr::var(dims.var(arr));
            if is_null {
                // Null arrays have length −1.
                state.meet_constraint(&Constraint::le(&len, &LinExpr::constant(-Rat::ONE)));
            } else {
                state.meet_constraint(&Constraint::ge(&len, &LinExpr::zero()));
            }
        }
        Cond::Nondet => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_domains::Polyhedron;
    use blazer_lang::compile;

    fn setup(src: &str) -> (Program, DimMap) {
        let p = compile(src).unwrap();
        let f = p.function("f").unwrap();
        let dm = DimMap::new(f);
        (p, dm)
    }

    #[test]
    fn entry_ties_params_to_seeds() {
        let (p, dm) = setup("fn f(a: int, b: array) { }");
        let f = p.function("f").unwrap();
        let d: Polyhedron = entry_state(f, &dm);
        let a = dm.var(f.var_by_name("a").unwrap());
        assert!(d.entails(&Constraint::eq(&LinExpr::var(a), &LinExpr::var(dm.seed(0)))));
        // Array params are non-null.
        let b = dm.var(f.var_by_name("b").unwrap());
        assert!(d.entails(&Constraint::ge(&LinExpr::var(b), &LinExpr::zero())));
    }

    #[test]
    fn linear_assignments_are_exact() {
        let (p, dm) = setup("fn f(a: int) { let x: int = a * 3 + 1; }");
        let f = p.function("f").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let x = dm.var(f.var_by_name("x").unwrap());
        let expected = LinExpr::var(dm.seed(0)).scale(Rat::int(3)).add_constant(Rat::ONE);
        assert!(d.entails(&Constraint::eq(&LinExpr::var(x), &expected)));
    }

    #[test]
    fn array_len_is_linear() {
        let (p, dm) = setup("fn f(a: array) { let n: int = len(a); }");
        let f = p.function("f").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let n = dm.var(f.var_by_name("n").unwrap());
        assert!(d.entails(&Constraint::eq(&LinExpr::var(n), &LinExpr::var(dm.seed(0)))));
    }

    #[test]
    fn nonlinear_havocs() {
        let (p, dm) = setup("fn f(a: int, b: int) { let x: int = a * b; }");
        let f = p.function("f").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let x = dm.var(f.var_by_name("x").unwrap());
        assert_eq!(d.bounds(&LinExpr::var(x)), (None, None));
    }

    #[test]
    fn rem_by_const_bounds_result() {
        let (p, dm) = setup("fn f(a: int) { let x: int = a % 10; }");
        let f = p.function("f").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let x = dm.var(f.var_by_name("x").unwrap());
        let (lo, hi) = d.bounds(&LinExpr::var(x));
        assert_eq!(lo, Some(Rat::int(-9)));
        assert_eq!(hi, Some(Rat::int(9)));
    }

    #[test]
    fn call_result_ranges() {
        let (p, dm) = setup(
            "extern fn get() -> array cost 1 len -1..64;\n\
             fn f() { let a: array = get(); }",
        );
        let f = p.function("f").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let a = dm.var(f.var_by_name("a").unwrap());
        let (lo, hi) = d.bounds(&LinExpr::var(a));
        assert_eq!(lo, Some(Rat::int(-1)));
        assert_eq!(hi, Some(Rat::int(64)));
    }

    #[test]
    fn cond_tightening() {
        let (p, dm) = setup("fn f(a: int) { if (a < 10) { tick(1); } }");
        let f = p.function("f").unwrap();
        let mut then_side: Polyhedron = entry_state(f, &dm);
        let mut else_side = then_side.clone();
        let blazer_ir::Terminator::Branch { cond, .. } = &f.block(f.entry()).term else {
            panic!("expected branch");
        };
        apply_cond(&dm, cond, true, &mut then_side);
        apply_cond(&dm, cond, false, &mut else_side);
        let a = LinExpr::var(dm.var(f.var_by_name("a").unwrap()));
        // a < 10 tightens to a ≤ 9; negation is a ≥ 10.
        assert_eq!(then_side.bounds(&a).1, Some(Rat::int(9)));
        assert_eq!(else_side.bounds(&a).0, Some(Rat::int(10)));
    }

    #[test]
    fn null_cond_refines_length_sign() {
        let (p, dm) = setup(
            "extern fn get() -> array cost 1 len -1..8;\n\
             fn f() { let a: array = get(); if (a == null) { tick(1); } }",
        );
        let f = p.function("f").unwrap();
        let a = f.var_by_name("a").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let mut null_side = d.clone();
        apply_cond(&dm, &Cond::Null { arr: a, is_null: true }, true, &mut null_side);
        let len = LinExpr::var(dm.var(a));
        assert_eq!(null_side.bounds(&len), (Some(Rat::int(-1)), Some(Rat::int(-1))));
        let mut nonnull_side = d;
        apply_cond(&dm, &Cond::Null { arr: a, is_null: true }, false, &mut nonnull_side);
        assert_eq!(nonnull_side.bounds(&len).0, Some(Rat::ZERO));
    }

    #[test]
    fn contradictory_cond_is_bottom() {
        let (p, dm) = setup("fn f() { let x: int = 5; if (x > 9) { tick(1); } }");
        let f = p.function("f").unwrap();
        let mut d: Polyhedron = entry_state(f, &dm);
        transfer_block(&p, f, &dm, f.entry(), &mut d);
        let blazer_ir::Terminator::Branch { cond, .. } = &f.block(f.entry()).term else {
            panic!("expected branch");
        };
        apply_cond(&dm, cond, true, &mut d);
        assert!(d.is_bottom());
    }
}
