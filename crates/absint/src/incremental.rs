//! Incremental fixpoint seeding across trail splits.
//!
//! When the driver splits a trail, each child trail's language is a subset
//! of the parent's, so every child execution is also a parent execution and
//! the parent's per-location invariants over-approximate the child's
//! reachable states. A [`SeedMap`] captures the parent's converged
//! post-states keyed by *CFG node* (the minimized child and parent DFAs
//! have no canonical state correspondence, but their product nodes project
//! onto the same CFG), and [`SeedMap::seed_states`] replays them as the
//! starting iterate of the child's fixpoint instead of ⊥-everywhere.
//!
//! Soundness does not actually depend on the seed being an
//! over-approximation: the engine's increasing iteration is inflationary
//! (every update joins the old state), so from *any* starting iterate it
//! converges to a post-fixpoint of the abstract transition function, which
//! over-approximates concrete reachability; narrowing from a post-fixpoint
//! is sound as usual. The parent-post choice matters for *precision*: it is
//! already above the child's least fixpoint, so widening has less climbing
//! to do and stabilization takes fewer passes without overshooting the
//! from-⊥ result (the driver still double-checks that on debug builds).
//!
//! States are stored domain-neutrally as [`Polyhedron`]s so one map seeds
//! every rung of the degradation ladder's domain; the round-trip through
//! [`AbstractDomain::from_polyhedron`] is exact for the workspace domains.

use crate::product::ProductGraph;
use blazer_domains::{AbstractDomain, Polyhedron};
use std::collections::BTreeMap;

/// Per-CFG-location abstract post-states of one converged trail analysis,
/// ready to seed a descendant trail's fixpoint.
#[derive(Debug, Clone)]
pub struct SeedMap {
    /// Joined post-state per CFG node index ([`blazer_ir::NodeId::index`]).
    /// Locations absent from the map were unreachable (bottom) under the
    /// parent trail.
    per_cfg: BTreeMap<usize, Polyhedron>,
    /// Dimension count of the stored polyhedra (one layout per function).
    n_dims: usize,
}

impl SeedMap {
    /// Collapses a converged fixpoint over `graph` into per-CFG-node
    /// states: product nodes projecting onto the same CFG node are joined
    /// (a child product node can correspond to any of them).
    pub fn from_states<D: AbstractDomain>(
        graph: &ProductGraph,
        states: &[D],
        n_dims: usize,
    ) -> Self {
        let mut per_cfg: BTreeMap<usize, Polyhedron> = BTreeMap::new();
        for (i, node) in graph.nodes().iter().enumerate() {
            let state = &states[i];
            if state.is_bottom() {
                continue;
            }
            let poly = state.to_polyhedron();
            match per_cfg.entry(node.cfg_node.index()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(poly);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let joined = e.get().join(&poly);
                    e.insert(joined);
                }
            }
        }
        SeedMap { per_cfg, n_dims }
    }

    /// The stored post-state at a CFG node index, if that location was
    /// reachable.
    pub fn state_at(&self, cfg_index: usize) -> Option<&Polyhedron> {
        self.per_cfg.get(&cfg_index)
    }

    /// How many CFG locations carry a (non-bottom) state.
    pub fn len(&self) -> usize {
        self.per_cfg.len()
    }

    /// Whether no location carries a state.
    pub fn is_empty(&self) -> bool {
        self.per_cfg.is_empty()
    }

    /// The dimension count the stored states are expressed over.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Materializes the starting iterate for a descendant trail's product
    /// graph: each product node gets the stored state of its CFG
    /// projection (restricted to what domain `D` can represent), or ⊥ when
    /// the location was unreachable under the ancestor.
    pub fn seed_states<D: AbstractDomain>(&self, graph: &ProductGraph) -> Vec<D> {
        graph
            .nodes()
            .iter()
            .map(|node| match self.per_cfg.get(&node.cfg_node.index()) {
                Some(poly) => D::from_polyhedron(poly, self.n_dims),
                None => D::bottom(self.n_dims),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::DimMap;
    use crate::engine::analyze;
    use crate::transfer::entry_state;
    use blazer_domains::{IntervalVec, Zone};
    use blazer_ir::Cfg;
    use blazer_lang::compile;

    #[test]
    fn roundtrips_post_states_by_cfg_node() {
        let p = compile("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }").unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let g = ProductGraph::full(f, &cfg);
        let init: Polyhedron = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        let map = SeedMap::from_states(&g, &r.states, dims.n_dims());
        // The unrestricted product is CFG-isomorphic: every reachable node
        // round-trips exactly (polyhedron → polyhedron is the identity).
        assert!(!map.is_empty());
        let seeded: Vec<Polyhedron> = map.seed_states(&g);
        for (i, node) in g.nodes().iter().enumerate() {
            if r.states[i].is_bottom() {
                continue;
            }
            assert!(seeded[i].includes(&r.states[i]), "node {i}");
            assert!(r.states[i].includes(&seeded[i]), "node {i}");
            assert!(map.state_at(node.cfg_node.index()).is_some());
        }
    }

    #[test]
    fn seeding_weaker_domains_over_approximates() {
        let p = compile("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }").unwrap();
        let f = p.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dims = DimMap::new(f);
        let g = ProductGraph::full(f, &cfg);
        let init: Polyhedron = entry_state(f, &dims);
        let r = analyze(&p, f, &dims, &g, init);
        let map = SeedMap::from_states(&g, &r.states, dims.n_dims());
        // Reconstructing into coarser domains keeps every original state
        // included (the reconstruction drops constraints, never adds).
        let zones: Vec<Zone> = map.seed_states(&g);
        let intervals: Vec<IntervalVec> = map.seed_states(&g);
        for i in 0..g.len() {
            if r.states[i].is_bottom() {
                continue;
            }
            assert!(zones[i].to_polyhedron().includes(&r.states[i]), "zone node {i}");
            assert!(intervals[i].to_polyhedron().includes(&r.states[i]), "interval node {i}");
        }
    }
}
