//! # blazer-portfolio
//!
//! Racing verification backends under one shared budget ledger.
//!
//! The paper's decomposition driver (`blazer-core`) and the
//! self-composition baseline it argues against (`blazer-selfcomp`) have
//! complementary strengths: decomposition refines a partition and can
//! conclude *safe or attack*; self-composition analyzes the doubled
//! program in one shot and — when the composed invariants survive — can
//! prove *safe* far faster than a deep refinement, but never soundly
//! reports an attack (a failed composition is a precision loss, not a
//! counterexample). [`analyze_portfolio`] races both per request:
//!
//! * Both workers run on a plain `std::thread::scope` pair and draw from
//!   **one shared [`blazer_ir::budget`] ledger** — the deadline, LP-call,
//!   and fixpoint caps stay globally enforced across the race exactly as
//!   they are across the driver's own evaluation workers.
//! * The first *sound* verdict wins: the decomposition's `Safe` or
//!   `Attack`, or the baseline's `verified = true` (⇒ `Safe`). A baseline
//!   `verified = false` is not a verdict and leaves the race running.
//! * The loser is cancelled **cooperatively** by revoking the shared
//!   ledger ([`blazer_ir::budget::BudgetHandle::revoke`]): the sticky
//!   exhaustion flag makes its next `consume_*`/`check` call fail, and it
//!   unwinds through the same give-up path budget exhaustion already
//!   exercises. No new cancellation machinery, no detached threads.
//!
//! The winning verdict is extended with a quantified [`Leakage`] estimate
//! (see [`leakage`]): `log2` of the number of attacker-distinguishable
//! trail-bound classes under the active observer — 0 bits for safe, ≥ 1
//! bit whenever an attack was found.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod leakage;

pub use leakage::Leakage;

use blazer_core::{AnalysisOutcome, Blazer, Config, CoreError, UnknownReason, Verdict};
use blazer_ir::budget::{self, BudgetReport, Resource};
use blazer_ir::Program;
use blazer_selfcomp::SelfCompResult;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Which verification engine answers a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The paper's trail-decomposition driver (`blazer-core`).
    Decomp,
    /// The self-composition baseline (`blazer-selfcomp`).
    Selfcomp,
    /// Race both under one shared budget; first sound verdict wins.
    Portfolio,
}

impl Backend {
    /// The wire/CLI vocabulary: `decomp`, `selfcomp`, `portfolio`.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Decomp => "decomp",
            Backend::Selfcomp => "selfcomp",
            Backend::Portfolio => "portfolio",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "decomp" => Ok(Backend::Decomp),
            "selfcomp" => Ok(Backend::Selfcomp),
            "portfolio" => Ok(Backend::Portfolio),
            other => Err(format!("unknown backend `{other}` (expected decomp|selfcomp|portfolio)")),
        }
    }
}

/// What one racing backend cost, measured at the moment it returned (or
/// was revoked / crashed).
///
/// The ledger is *shared*, so the LP/fixpoint numbers are snapshots of the
/// global counters at this backend's completion — an attribution of the
/// race's total, not an isolated per-backend meter. Wall time is exact.
#[derive(Debug, Clone, Default)]
pub struct BackendCost {
    /// Wall-clock time this backend ran.
    pub wall: Duration,
    /// Global LP calls consumed when this backend finished.
    pub lp_calls: u64,
    /// Global fixpoint passes consumed when this backend finished.
    pub fixpoint_passes: u64,
    /// Whether the backend ran to completion (`false`: revoked mid-run,
    /// budget-exhausted, or crashed).
    pub completed: bool,
    /// Whether the backend panicked (isolated; the race continues).
    pub crashed: bool,
}

/// The complete result of one portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// The portfolio verdict: the winner's, or the decomposition's
    /// inconclusive outcome when no backend produced a sound verdict.
    pub verdict: Verdict,
    /// The decomposition's full outcome (partition, timings, budget) —
    /// `None` only when the decomposition worker crashed.
    pub outcome: Option<AnalysisOutcome>,
    /// Which backend produced the winning sound verdict, if any.
    pub winner: Option<Backend>,
    /// Whether the shared ledger was revoked to cancel the loser.
    pub revoked: bool,
    /// The decomposition's cost.
    pub decomp: BackendCost,
    /// The baseline's cost.
    pub selfcomp: BackendCost,
    /// What the baseline concluded (`None` when it crashed).
    pub selfcomp_verified: Option<bool>,
    /// Quantified leakage under the request's observer.
    pub leakage: Leakage,
    /// The shared ledger's final totals for the whole race.
    pub budget_report: BudgetReport,
    /// Wall-clock time of the whole race.
    pub wall: Duration,
    /// Panic message of the decomposition worker, when it crashed.
    pub crash: Option<String>,
}

/// The attacker-constant the baseline must prove the composed counter
/// difference within: the degree observer's epsilon, or the threshold
/// observer's instruction threshold (the Sec. 6.1 convention).
pub fn epsilon_for(observer: &blazer_bounds::Observer) -> u64 {
    match observer {
        blazer_bounds::Observer::DegreeEquivalence { epsilon } => *epsilon,
        blazer_bounds::Observer::ConcreteThreshold { threshold, .. } => *threshold,
    }
}

/// One worker's completion message. The decomposition outcome (partition
/// tree, bounds, attack spec) dwarfs the baseline's result, so it rides
/// boxed.
enum Finish {
    Decomp(Box<Result<Result<AnalysisOutcome, CoreError>, String>>, BackendCost),
    Selfcomp(Result<SelfCompResult, String>, BackendCost),
}

/// Races the decomposition driver against the self-composition baseline on
/// `func`, under one shared budget built from `config.budget`.
///
/// See the module docs for the race protocol. The returned report always
/// carries a verdict; worker panics are isolated (a crashed backend simply
/// loses the race), and only a malformed program or missing function is an
/// error.
///
/// # Errors
///
/// Returns [`CoreError`] when the program fails validation or `func` does
/// not exist (checked up front: the baseline's API contract assumes a
/// valid target).
pub fn analyze_portfolio(
    program: &Program,
    func: &str,
    config: &Config,
) -> Result<PortfolioReport, CoreError> {
    program.validate().map_err(CoreError::InvalidProgram)?;
    if program.function(func).is_none() {
        return Err(CoreError::NoSuchFunction(func.to_string()));
    }
    let started = Instant::now();
    // One ledger for the whole race: both workers install a handle to it,
    // so caps are global and a single revoke cancels whoever still runs.
    let _guard = config.budget.install();
    let ledger = budget::handle().expect("budget installed above");
    let decomp_config = config.clone().with_ambient_budget();
    let epsilon = epsilon_for(&config.observer);

    let mut winner: Option<Backend> = None;
    let mut revoked = false;
    let mut decomp_result: Option<Result<Result<AnalysisOutcome, CoreError>, String>> = None;
    let mut decomp_cost = BackendCost::default();
    let mut selfcomp_result: Option<Result<SelfCompResult, String>> = None;
    let mut selfcomp_cost = BackendCost::default();

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<Finish>();
        let decomp_tx = tx.clone();
        let decomp_ledger = ledger.clone();
        scope.spawn(move || {
            let _g = decomp_ledger.install();
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                Blazer::new(decomp_config).analyze(program, func)
            }))
            .map_err(panic_message);
            let (lp_calls, fixpoint_passes, _) = decomp_ledger.counters();
            let completed = matches!(
                &result,
                Ok(Ok(o)) if !matches!(
                    o.verdict,
                    Verdict::Unknown(UnknownReason::BudgetExhausted(_))
                )
            );
            let cost = BackendCost {
                wall: t0.elapsed(),
                lp_calls,
                fixpoint_passes,
                completed,
                crashed: result.is_err(),
            };
            let _ = decomp_tx.send(Finish::Decomp(Box::new(result), cost));
        });
        let selfcomp_ledger = ledger.clone();
        scope.spawn(move || {
            let _g = selfcomp_ledger.install();
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                blazer_selfcomp::verify(program, func, epsilon, &config.cost_model)
            }))
            .map_err(panic_message);
            let (lp_calls, fixpoint_passes, _) = selfcomp_ledger.counters();
            let completed =
                result.is_ok() && selfcomp_ledger.exhausted() != Some(Resource::Revoked);
            let cost = BackendCost {
                wall: t0.elapsed(),
                lp_calls,
                fixpoint_passes,
                completed,
                crashed: result.is_err(),
            };
            let _ = tx.send(Finish::Selfcomp(result, cost));
        });

        // First *sound* verdict wins and revokes the ledger; an unsound
        // finish (baseline failed to verify, decomposition gave up) just
        // records its result and leaves the race to the sibling.
        for finish in rx {
            match finish {
                Finish::Decomp(result, cost) => {
                    let sound = matches!(
                        result.as_ref(),
                        Ok(Ok(o)) if matches!(o.verdict, Verdict::Safe | Verdict::Attack(_))
                    );
                    if sound && winner.is_none() {
                        winner = Some(Backend::Decomp);
                        revoked = ledger.revoke();
                    }
                    decomp_cost = cost;
                    decomp_result = Some(*result);
                }
                Finish::Selfcomp(result, cost) => {
                    let sound = matches!(&result, Ok(r) if r.verified);
                    if sound && winner.is_none() {
                        winner = Some(Backend::Selfcomp);
                        revoked = ledger.revoke();
                    }
                    selfcomp_cost = cost;
                    selfcomp_result = Some(result);
                }
            }
        }
    });

    let budget_report = budget::report();
    let selfcomp_verified = match &selfcomp_result {
        Some(Ok(r)) => Some(r.verified),
        _ => None,
    };
    let (outcome, crash) = match decomp_result {
        Some(Ok(Ok(outcome))) => (Some(outcome), None),
        Some(Ok(Err(e))) => return Err(e),
        Some(Err(panic)) => (None, Some(panic)),
        None => (None, Some("decomposition worker vanished".to_string())),
    };
    // The portfolio verdict: the winner's sound verdict, else the
    // decomposition's own (inconclusive) outcome.
    let verdict = match (winner, &outcome) {
        (Some(Backend::Selfcomp), _) => Verdict::Safe,
        (_, Some(o)) => o.verdict.clone(),
        (None, None) => Verdict::Unknown(UnknownReason::SearchExhausted),
        (Some(_), None) => unreachable!("a decomp win implies a decomp outcome"),
    };
    let leakage = if verdict.is_safe() {
        Leakage::none()
    } else {
        outcome
            .as_ref()
            .map(|o| leakage::measure(o, &config.observer))
            .unwrap_or_else(Leakage::none)
    };
    Ok(PortfolioReport {
        verdict,
        outcome,
        winner,
        revoked,
        decomp: decomp_cost,
        selfcomp: selfcomp_cost,
        selfcomp_verified,
        leakage,
        budget_report,
        wall: started.elapsed(),
        crash,
    })
}

/// Renders a panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        blazer_lang::compile(src).unwrap()
    }

    #[test]
    fn backend_round_trips_through_its_wire_name() {
        for b in [Backend::Decomp, Backend::Selfcomp, Backend::Portfolio] {
            assert_eq!(b.as_str().parse::<Backend>().unwrap(), b);
        }
        assert!("hedged".parse::<Backend>().is_err());
    }

    #[test]
    fn race_on_safe_program_concludes_safe_with_zero_leakage() {
        let p = compile(
            "fn f(h: int #high, low: int) { \
                let i: int = 0; \
                while (i < low) { i = i + 1; } \
            }",
        );
        let report = analyze_portfolio(&p, "f", &Config::microbench()).unwrap();
        assert!(report.verdict.is_safe(), "got {:?}", report.verdict);
        assert!(report.winner.is_some(), "someone must win a decidable race");
        assert_eq!((report.leakage.bits, report.leakage.classes), (0.0, 1));
    }

    #[test]
    fn race_on_attack_program_is_won_by_decomp_with_positive_leakage() {
        let p = compile("fn f(h: int #high) { if (h == 0) { tick(500); } else { tick(1); } }");
        let report = analyze_portfolio(&p, "f", &Config::microbench()).unwrap();
        // Self-composition can never soundly report an attack, so the
        // decomposition is the only possible winner here.
        assert_eq!(report.winner, Some(Backend::Decomp));
        assert!(report.verdict.is_attack(), "got {:?}", report.verdict);
        assert_eq!(report.selfcomp_verified, Some(false));
        assert!(report.leakage.bits >= 1.0, "attack must leak: {:?}", report.leakage);
        assert!(report.outcome.is_some());
    }

    #[test]
    fn winner_revokes_the_shared_ledger() {
        let p = compile("fn f(h: int #high) { if (h == 0) { tick(500); } else { tick(1); } }");
        let report = analyze_portfolio(&p, "f", &Config::microbench()).unwrap();
        // Whether the revoke landed depends on whether the loser had
        // already finished; either way the race records a coherent pair.
        if report.revoked {
            assert!(report.winner.is_some());
        } else {
            assert!(report.decomp.completed || report.selfcomp.completed);
        }
    }

    #[test]
    fn missing_function_is_an_error_not_a_panic() {
        let p = compile("fn f(h: int #high) { tick(1); }");
        let err = analyze_portfolio(&p, "nope", &Config::microbench());
        assert!(matches!(err, Err(CoreError::NoSuchFunction(_))));
    }
}
