//! Quantified leakage from the decomposition's partition structure.
//!
//! The driver's verdict is binary: safe or attack. But its trail tree
//! already contains a *quantitative* object — the partition of executions
//! into trail classes, each with symbolic `[lo, hi]` running-time bounds.
//! Following the information-theoretic reading of probabilistic
//! confinement (Di Pierro–Hankin–Wiklicky), the leakage of the partition
//! is `log2` of the number of *attacker-distinguishable* observation
//! classes: an attacker who can tell `n` cost classes apart learns at most
//! `log2(n)` bits about the secret per observed run.
//!
//! Two trail classes are merged when the active [`Observer`] cannot tell
//! their bound ranges apart. Distinguishability is not transitive (A≈B and
//! B≈C do not imply A≈C), so classes are built by *complete-linkage*
//! greedy clustering: a leaf joins a class only when it is indistinguishable
//! from **every** member. This keeps the count conservative in the right
//! direction — any pair the observer can distinguish is guaranteed to end
//! up in different classes, so an attack's witnessing pair always yields at
//! least two classes (≥ 1 bit).
//!
//! A *wide* leaf (its own `[lo, hi]` spread exceeds what the observer
//! dismisses as noise) is itself a leaking object: executions inside the
//! same trail class are mutually distinguishable. Each wide leaf therefore
//! contributes one extra distinguishable class beyond the clustering.
//!
//! A `Safe` verdict means the partition proves every pair of secret-split
//! siblings indistinguishable and every class narrow: the attacker learns
//! nothing, and the report is pinned to one class / 0 bits by definition.

use blazer_bounds::{CostExpr, Observer};
use blazer_core::{AnalysisOutcome, NodeStatus};
use blazer_domains::Rat;

/// The quantified-leakage estimate attached to a portfolio verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Leakage {
    /// Leakage in bits: `log2` of [`Leakage::classes`].
    pub bits: f64,
    /// Number of attacker-distinguishable observation classes (≥ 1).
    pub classes: usize,
    /// Feasible (non-empty-language) leaves the partition was built from.
    pub feasible_leaves: usize,
    /// Leaves whose own bound spread is observable (each adds one class).
    pub wide_leaves: usize,
    /// Largest observable gap between class representatives, in the
    /// observer's units (evaluated at its canonical input magnitudes);
    /// `None` with fewer than two bounded classes.
    pub max_gap: Option<f64>,
}

impl Leakage {
    /// The zero-leakage report of a proven-safe partition.
    pub fn none() -> Leakage {
        Leakage { bits: 0.0, classes: 1, feasible_leaves: 0, wide_leaves: 0, max_gap: None }
    }
}

/// A leaf's bound range as the observer comparison functions want it.
type Range<'a> = (&'a CostExpr, Option<&'a CostExpr>);

/// The representative concrete cost of a range: its upper bound (falling
/// back to the lower for unbounded leaves) evaluated at the observer's
/// canonical input point — the same point its distinguishability criterion
/// evaluates at.
fn representative(observer: &Observer, (lo, hi): Range<'_>) -> f64 {
    let expr = hi.unwrap_or(lo);
    match observer {
        Observer::DegreeEquivalence { .. } => expr.eval(&|_| Rat::int(1009)).to_f64(),
        Observer::ConcreteThreshold { assumed, .. } => assumed.eval(expr).to_f64(),
    }
}

/// Computes the leakage estimate for one analysis outcome under `observer`.
///
/// Safe verdicts report 0 bits unconditionally (the proof says the classes
/// are indistinguishable). Otherwise the estimate is built from the
/// feasible leaves of the trail partition as described in the module docs;
/// a partial tree (budget exhaustion, revocation) yields a *lower* bound on
/// the leakage of the full partition, which is the sound direction for an
/// estimate that answers "at least how bad is it".
pub fn measure(outcome: &AnalysisOutcome, observer: &Observer) -> Leakage {
    if outcome.verdict.is_safe() {
        return Leakage::none();
    }
    let tree = &outcome.tree;
    let mut ranges: Vec<Range<'_>> = Vec::new();
    let mut wide_leaves = 0usize;
    for id in tree.leaves() {
        let node = tree.node(id);
        let Some(bounds) = &node.bounds else { continue };
        let Some(lo) = &bounds.lower else { continue }; // infeasible: L(trail) = ∅
        ranges.push((lo, bounds.upper.as_ref()));
        if matches!(node.status, NodeStatus::Wide | NodeStatus::Attack) {
            wide_leaves += 1;
        }
    }
    // Complete-linkage greedy clustering over the observer's (symmetric,
    // non-transitive) distinguishability relation.
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (i, range) in ranges.iter().enumerate() {
        let home = classes
            .iter_mut()
            .find(|class| class.iter().all(|&j| !observer.observably_different(*range, ranges[j])));
        match home {
            Some(class) => class.push(i),
            None => classes.push(vec![i]),
        }
    }
    let distinguishable = (classes.len() + wide_leaves).max(1);
    let reps: Vec<f64> =
        classes.iter().map(|class| representative(observer, ranges[class[0]])).collect();
    let max_gap = reps
        .iter()
        .cloned()
        .reduce(f64::max)
        .zip(reps.iter().cloned().reduce(f64::min))
        .filter(|_| reps.len() >= 2)
        .map(|(max, min)| max - min);
    Leakage {
        bits: (distinguishable as f64).log2(),
        classes: distinguishable,
        feasible_leaves: ranges.len(),
        wide_leaves,
        max_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_core::{Blazer, Config};

    fn analyze(src: &str, func: &str, config: Config) -> AnalysisOutcome {
        let p = blazer_lang::compile(src).unwrap();
        Blazer::new(config).analyze(&p, func).unwrap()
    }

    #[test]
    fn safe_program_leaks_nothing() {
        let out = analyze(
            "fn f(h: int #high, low: int) { \
                if (h == 0) { \
                    let i: int = 0; \
                    while (i < low) { i = i + 1; } \
                } else { \
                    let i: int = low; \
                    while (i > 0) { i = i - 1; } \
                } \
            }",
            "f",
            Config::microbench(),
        );
        assert!(out.verdict.is_safe());
        let l = measure(&out, &Observer::degree());
        assert_eq!((l.bits, l.classes), (0.0, 1));
    }

    #[test]
    fn attack_program_leaks_at_least_one_bit() {
        let out = analyze(
            "fn f(h: int #high) { if (h == 0) { tick(500); } else { tick(1); } }",
            "f",
            Config::microbench(),
        );
        assert!(out.verdict.is_attack());
        let l = measure(&out, &Observer::degree());
        assert!(l.bits >= 1.0, "attack must leak ≥ 1 bit, got {l:?}");
        assert!(l.classes >= 2);
        assert!(l.max_gap.is_some_and(|g| g > 32.0), "gap exceeds epsilon: {l:?}");
    }

    #[test]
    fn multiway_branching_leaks_more_than_one_bit() {
        // Four observably distinct costs keyed on the secret: ~2 bits.
        let out = analyze(
            "fn f(h: int #high) { \
                if (h == 0) { tick(100); } else { \
                    if (h == 1) { tick(500); } else { \
                        if (h == 2) { tick(900); } else { tick(1300); } \
                    } \
                } \
            }",
            "f",
            Config::microbench(),
        );
        assert!(out.verdict.is_attack());
        let l = measure(&out, &Observer::degree());
        assert!(l.classes >= 3, "four separated costs collapse too far: {l:?}");
        assert!(l.bits > 1.0);
        assert!(l.max_gap.is_some_and(|g| g.is_finite() && g > 0.0));
    }
}
