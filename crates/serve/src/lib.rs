//! # blazer-serve
//!
//! A concurrent timing-channel analysis service: the decomposition driver
//! behind an HTTP/1.1 API, built on `std::net` only (the workspace has no
//! crates.io access).
//!
//! ```text
//! POST /analyze   {"source": "fn f(h: int #high) { ... }", "domain": "zone", ...}
//! POST /analyze   [{...}, {...}, ...]    batch: one array in, one array out
//! GET  /health    liveness probe
//! GET  /stats     connection, request, worker, and cache counters
//! ```
//!
//! Connections are persistent (HTTP/1.1 keep-alive with pipelining
//! support): a client analyzing a whole benchmark suite pays one TCP
//! handshake, not one per program, which is what lets the verdict cache's
//! microsecond hits actually arrive in microseconds.
//!
//! The architecture is the paper's Fig. 2 driver wrapped in four service
//! layers:
//!
//! 1. **Bounded job queue.** The accept loop pushes connections into a
//!    `sync_channel`; when the queue is full the connection is answered
//!    `503` immediately instead of piling up unbounded work.
//! 2. **Worker pool with per-request budgets.** Each worker owns one
//!    connection at a time and serves its requests in order, running every
//!    analysis under `catch_unwind` with its own installed
//!    [`blazer_core::Budget`] (deadline and LP-call caps from the request,
//!    clamped by the server's `max_timeout`). One pathological submission
//!    exhausts *its* budget — it can never take the server, or a sibling
//!    request, down. A batch submission fans its items out over
//!    [`pool::scoped_map`] and answers one array in submission order;
//!    per-item failures (400/422/500) never fail the batch.
//! 3. **Single-flight coalescing.** Concurrent identical submissions join
//!    one in-flight driver run ([`cache::SingleFlight`]) instead of
//!    stampeding past a shared cache miss.
//! 4. **Content-addressed verdict cache.** Verdicts are pure functions of
//!    `(source, config)`, so completed responses are memoized by content
//!    address ([`cache::CacheKey`]) and identical resubmissions are
//!    answered in microseconds, optionally surviving restarts via an
//!    append-only JSONL file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bench;
pub mod cache;
pub mod client;
pub mod pool;
pub mod report;
pub mod sync;

// The HTTP/1.1 subset itself moved to the shared `blazer-http` crate so
// the fleet router can speak the same wire format; the `http` path every
// existing caller uses is preserved by re-export.
pub use blazer_http as http;

pub use api::AnalyzeRequest;
pub use cache::{CacheKey, VerdictCache};

use blazer_ir::json::Json;
use cache::{FlightOutcome, Joined, SingleFlight};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (tests).
    pub addr: String,
    /// Worker-pool width; `None` defers to `BLAZER_SERVE_WORKERS`, then
    /// the machine's available parallelism plus one spare connection
    /// worker ([`pool::serving_width`]).
    pub workers: Option<usize>,
    /// Bounded job-queue depth; a full queue answers `503`.
    pub queue_depth: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Server-side clamp on every request's wall-clock deadline (`None`
    /// leaves requests without a deadline unlimited).
    pub max_timeout: Option<Duration>,
    /// Verdict-cache persistence file (`None` keeps the cache in memory).
    pub cache_file: Option<PathBuf>,
    /// Trail-evaluation threads *within* one analysis. The default of 1
    /// lets the pool parallelize across requests instead of oversubscribing
    /// every core on each one.
    pub analysis_threads: usize,
    /// Requests served on one keep-alive connection before the server
    /// closes it (resource hygiene; the close is announced in the last
    /// response's `Connection: close`).
    pub max_requests_per_connection: u64,
    /// Token gating the `POST /shutdown` admin endpoint. `None` falls
    /// back to the `BLAZER_ADMIN_TOKEN` environment variable; with
    /// neither set the endpoint is disabled (403).
    pub admin_token: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8645".to_string(),
            workers: None,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            max_timeout: None,
            cache_file: None,
            analysis_threads: 1,
            max_requests_per_connection: http::DEFAULT_MAX_REQUESTS_PER_CONNECTION,
            admin_token: None,
        }
    }
}

/// Live service counters (monotonic except the two gauges,
/// [`Stats::queue_len`] and [`Stats::workers_busy`]).
#[derive(Debug, Default)]
pub struct Stats {
    /// TCP connections handled by a worker (each may carry many requests).
    pub connections: AtomicU64,
    /// HTTP requests served, across all connections and routes (batch
    /// submissions count as one request; their items are
    /// [`Stats::analyze_requests`]).
    pub requests: AtomicU64,
    /// `/analyze` submissions (cache hits and batch items included: a
    /// batch of N counts N).
    pub analyze_requests: AtomicU64,
    /// Analyses that actually ran the driver.
    pub analyses_run: AtomicU64,
    /// Submissions answered from a concurrent identical in-flight run
    /// instead of running the driver or hitting the cache themselves.
    pub coalesced: AtomicU64,
    /// Batch (array-bodied) `/analyze` requests.
    pub batch_requests: AtomicU64,
    /// Driver panics isolated into `500` responses.
    pub crashes: AtomicU64,
    /// `/analyze` submissions that ran a portfolio race (cache hits and
    /// coalesced followers excluded: only actual races count).
    pub portfolio_requests: AtomicU64,
    /// Portfolio races won by the decomposition driver.
    pub wins_decomp: AtomicU64,
    /// Portfolio races won by the self-composition baseline.
    pub wins_selfcomp: AtomicU64,
    /// Portfolio races that revoked the shared budget to cancel the loser.
    pub revocations: AtomicU64,
    /// Analyses priced under the `weighted` cost-model preset.
    pub cost_model_weighted: AtomicU64,
    /// Analyses priced under the cache-aware cost-model preset.
    pub cost_model_cache: AtomicU64,
    /// Analyses priced under a custom (non-preset) cost model.
    pub cost_model_custom: AtomicU64,
    /// Requests answered with a `4xx` status (batch items excluded: the
    /// batch transport itself succeeded).
    pub client_errors: AtomicU64,
    /// Connections rejected `503` by the full job queue.
    pub busy_rejections: AtomicU64,
    /// Gauge: connections accepted but not yet picked up by a worker.
    /// Saturation shows here (and in [`Stats::workers_busy`]) before the
    /// queue fills and 503s start.
    pub queue_len: AtomicU64,
    /// Gauge: workers currently serving a connection.
    pub workers_busy: AtomicU64,
}

struct Ctx {
    cache: VerdictCache,
    flights: SingleFlight,
    stats: Stats,
    started: Instant,
    workers: usize,
    queue_depth: usize,
    max_body_bytes: usize,
    max_timeout: Option<Duration>,
    analysis_threads: usize,
    max_requests_per_connection: u64,
    admin_token: Option<String>,
    /// Set by `stop()` or an authorized `POST /shutdown`: the accept loop
    /// exits at its next wake-up and the workers drain what is queued.
    shutdown: Arc<AtomicBool>,
    /// The bound address, so the shutdown handler can wake the accept
    /// loop out of its blocking `incoming()` call.
    addr: SocketAddr,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running service. Dropping the handle leaves the threads running;
/// call [`Server::stop`] for an orderly shutdown or [`Server::wait`] to
/// serve until the process dies.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns
    /// immediately.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let width = pool::serving_width(opts.workers, "BLAZER_SERVE_WORKERS");
        let cache = match opts.cache_file {
            Some(path) => VerdictCache::persistent(path),
            None => VerdictCache::in_memory(),
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            cache,
            flights: SingleFlight::new(),
            stats: Stats::default(),
            started: Instant::now(),
            workers: width,
            queue_depth: opts.queue_depth,
            max_body_bytes: opts.max_body_bytes,
            max_timeout: opts.max_timeout,
            analysis_threads: opts.analysis_threads.max(1),
            max_requests_per_connection: opts.max_requests_per_connection.max(1),
            admin_token: opts
                .admin_token
                .or_else(|| std::env::var("BLAZER_ADMIN_TOKEN").ok().filter(|t| !t.is_empty())),
            shutdown: Arc::clone(&shutdown),
            addr,
        });
        let (tx, rx) = sync_channel::<TcpStream>(opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..width)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || worker_loop(&rx, &ctx))
            })
            .collect();
        let accept = {
            let ctx = Arc::clone(&ctx);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Responses are small; Nagle + the peer's delayed ACK
                    // would add ~40ms per exchange.
                    let _ = stream.set_nodelay(true);
                    // The gauge goes up *before* the send so a worker's
                    // decrement (strictly after a successful send) can
                    // never race it below zero.
                    ctx.stats.queue_len.fetch_add(1, Ordering::SeqCst);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            ctx.stats.queue_len.fetch_sub(1, Ordering::SeqCst);
                            ctx.stats.busy_rejections.fetch_add(1, Ordering::SeqCst);
                            let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
                            http::write_json_response(
                                &mut &stream,
                                503,
                                &error_body("server busy: job queue full, retry later").to_string(),
                                true,
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            ctx.stats.queue_len.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                    }
                }
            })
        };
        Ok(Server { addr, shutdown, accept: Some(accept), workers, ctx })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live service counters.
    pub fn stats(&self) -> &Stats {
        &self.ctx.stats
    }

    /// The verdict cache (for in-process inspection).
    pub fn cache(&self) -> &VerdictCache {
        &self.ctx.cache
    }

    /// Blocks the calling thread until the service shuts down (the
    /// `blazer serve` foreground mode): serves until an authorized
    /// `POST /shutdown` (or [`Server::stop`] from another thread) flips
    /// the shutdown flag, then finishes every queued job, flushes the
    /// verdict cache, and returns — the graceful-drain exit path.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.ctx.cache.flush();
    }

    /// Orderly shutdown: stop accepting, drain the workers, join every
    /// thread, flush the verdict cache.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept call; the flag makes it exit, dropping
        // the queue sender, which in turn drains and stops the workers.
        let _ = TcpStream::connect(self.addr);
        self.wait();
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx) {
    loop {
        let received = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match received {
            Ok(mut stream) => {
                ctx.stats.queue_len.fetch_sub(1, Ordering::SeqCst);
                ctx.stats.workers_busy.fetch_add(1, Ordering::SeqCst);
                handle_connection(&mut stream, ctx);
                ctx.stats.workers_busy.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => break, // queue sender dropped: shutdown drain is done
        }
    }
}

fn error_body(error: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(error.into()))])
}

/// Serves one connection to completion: a keep-alive request loop over a
/// single persistent `BufReader`, so pipelined bytes buffered past one
/// request's boundary become the next request instead of being dropped.
/// The loop ends when either side asks for `Connection: close`, the
/// request cap is reached, framing fails (the stream position is then
/// undefined), or the peer hangs up / idles out between requests.
fn handle_connection(stream: &mut TcpStream, ctx: &Ctx) {
    ctx.stats.connections.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_read_timeout(Some(http::IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
    let stream: &TcpStream = stream;
    let mut reader = BufReader::new(stream);
    for served in 1..=ctx.max_requests_per_connection {
        let request = match http::read_request(&mut reader, ctx.max_body_bytes) {
            Ok(r) => r,
            Err(http::ReadError::Closed) => return,
            Err(http::ReadError::Bad(e)) => {
                ctx.stats.requests.fetch_add(1, Ordering::SeqCst);
                ctx.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                http::write_json_response(
                    &mut { stream },
                    e.status,
                    &error_body(e.message).to_string(),
                    true,
                );
                return;
            }
        };
        ctx.stats.requests.fetch_add(1, Ordering::SeqCst);
        let mut close = request.close || served == ctx.max_requests_per_connection;
        let (status, body) = match (request.method.as_str(), request.path.as_str()) {
            // A draining server is still *serving* (it finishes queued
            // work) but must stop being picked: the probe flips to 503 so
            // a router's health checker ejects it cleanly instead of
            // seeing connection resets.
            ("GET", "/health") if ctx.draining() => (503, health_body(ctx).to_string()),
            ("GET", "/health") => (200, health_body(ctx).to_string()),
            ("GET", "/stats") => (200, stats_body(ctx).to_string()),
            ("POST", "/analyze") => handle_analyze(ctx, &request.body),
            ("POST", "/shutdown") => {
                let (status, body) = handle_shutdown(ctx, &request.body);
                if status == 200 {
                    // Don't let this keep-alive connection pin its worker
                    // through the drain.
                    close = true;
                }
                (status, body)
            }
            (_, "/health" | "/stats" | "/analyze" | "/shutdown") => {
                (405, error_body(format!("method {} not allowed here", request.method)).to_string())
            }
            (_, path) => (404, error_body(format!("no such route: {path}")).to_string()),
        };
        if (400..500).contains(&status) {
            ctx.stats.client_errors.fetch_add(1, Ordering::SeqCst);
        }
        http::write_json_response(&mut { stream }, status, &body, close);
        if close {
            return;
        }
    }
}

/// Routes an `/analyze` body: a JSON object is one submission, a JSON
/// array is a batch fanned out over the worker-pool primitive.
fn handle_analyze(ctx: &Ctx, body: &[u8]) -> (u16, String) {
    let doc = match std::str::from_utf8(body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(format!("bad request: {e}")).to_string()),
    };
    if let Json::Arr(items) = doc {
        return handle_batch(ctx, &items);
    }
    ctx.stats.analyze_requests.fetch_add(1, Ordering::SeqCst);
    match api::AnalyzeRequest::from_json(&doc) {
        Ok(req) => analyze_one(ctx, &req),
        Err(e) => (400, error_body(format!("bad request: {e}")).to_string()),
    }
}

/// A batch submission: every item is analyzed (misses fan out over
/// [`pool::scoped_map`] at the server's worker width), and the response is
/// one JSON array in submission order. Per-item failures stay per-item —
/// each element carries its own `status`, so a 400 or 422 item never
/// fails its siblings, and the batch itself answers `200`.
fn handle_batch(ctx: &Ctx, items: &[Json]) -> (u16, String) {
    ctx.stats.batch_requests.fetch_add(1, Ordering::SeqCst);
    ctx.stats.analyze_requests.fetch_add(items.len() as u64, Ordering::SeqCst);
    let width = pool::clamped_width(ctx.workers, items.len());
    let results: Vec<String> = pool::scoped_map(items, width, |_, item| {
        let (status, body) = match api::AnalyzeRequest::from_json(item) {
            Ok(req) => analyze_one(ctx, &req),
            Err(e) => (400, error_body(format!("bad request: {e}")).to_string()),
        };
        with_item_status(status, &body)
    });
    (200, format!("[{}]", results.join(", ")))
}

/// One submission through the full cache → single-flight → driver stack.
fn analyze_one(ctx: &Ctx, req: &api::AnalyzeRequest) -> (u16, String) {
    let key = req.cache_key();
    match ctx.flights.join(&key) {
        Joined::Follower(outcome) => {
            // An identical submission was already in the air: share its
            // result without touching the driver or the cache.
            ctx.stats.coalesced.fetch_add(1, Ordering::SeqCst);
            (outcome.status, with_cached_flag(&outcome.body, true))
        }
        Joined::Leader(token) => {
            if let Some(stored) = ctx.cache.get(&key) {
                token.complete(FlightOutcome { status: 200, body: stored.clone() });
                return (200, with_cached_flag(&stored, true));
            }
            let response = api::execute(req, ctx.max_timeout, ctx.analysis_threads);
            // A 400 from `execute` is a compile/lookup failure: the driver
            // never ran, so it doesn't count as an analysis.
            if response.status != 400 {
                ctx.stats.analyses_run.fetch_add(1, Ordering::SeqCst);
                if req.backend == blazer_portfolio::Backend::Portfolio {
                    ctx.stats.portfolio_requests.fetch_add(1, Ordering::SeqCst);
                }
                {
                    use blazer_ir::cost::CostModel;
                    if req.cost_model == CostModel::weighted() {
                        ctx.stats.cost_model_weighted.fetch_add(1, Ordering::SeqCst);
                    } else if req.cost_model == CostModel::cache_aware() {
                        ctx.stats.cost_model_cache.fetch_add(1, Ordering::SeqCst);
                    } else if req.cost_model != CostModel::unit() {
                        ctx.stats.cost_model_custom.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            match response.winner {
                Some(blazer_portfolio::Backend::Decomp) => {
                    ctx.stats.wins_decomp.fetch_add(1, Ordering::SeqCst);
                }
                Some(blazer_portfolio::Backend::Selfcomp) => {
                    ctx.stats.wins_selfcomp.fetch_add(1, Ordering::SeqCst);
                }
                _ => {}
            }
            if response.revoked {
                ctx.stats.revocations.fetch_add(1, Ordering::SeqCst);
            }
            if response.status == 500 {
                ctx.stats.crashes.fetch_add(1, Ordering::SeqCst);
            }
            let body = response.body.to_string();
            if response.cacheable {
                ctx.cache.insert(&key, body.clone());
            }
            token.complete(FlightOutcome { status: response.status, body: body.clone() });
            (response.status, with_cached_flag(&body, false))
        }
    }
}

/// Annotates a stored/fresh response body with its cache provenance. A
/// body that is not a JSON object (nothing the server produces today, but
/// a hand-edited persistence file can hold anything) passes through
/// verbatim — rewrapping it would change the response shape.
fn with_cached_flag(body: &str, cached: bool) -> String {
    match Json::parse(body) {
        Ok(Json::Obj(mut pairs)) => {
            pairs.retain(|(k, _)| k != "cached");
            let at = pairs.len().min(1);
            pairs.insert(at, ("cached".to_string(), Json::Bool(cached)));
            Json::Obj(pairs).to_string()
        }
        _ => body.to_string(),
    }
}

/// Prefixes a batch item's body with its per-item HTTP status.
fn with_item_status(status: u16, body: &str) -> String {
    match Json::parse(body) {
        Ok(Json::Obj(mut pairs)) => {
            pairs.retain(|(k, _)| k != "status");
            pairs.insert(0, ("status".to_string(), Json::from(u64::from(status))));
            Json::Obj(pairs).to_string()
        }
        // Mirror the verbatim rule above: an exotic body is carried, not
        // rewrapped into a different shape.
        _ => body.to_string(),
    }
}

/// `POST /shutdown`: the graceful-drain admin endpoint. The body must be
/// `{"token": "..."}` matching the configured admin token; without a
/// configured token the endpoint is disabled outright. An authorized
/// request flips the shutdown flag (new connections stop being accepted,
/// `/health` answers 503), wakes the accept loop, and answers 200 — the
/// workers then finish everything already queued, the verdict cache is
/// flushed, and [`Server::wait`] returns so the process can exit 0.
fn handle_shutdown(ctx: &Ctx, body: &[u8]) -> (u16, String) {
    let Some(expected) = &ctx.admin_token else {
        return (
            403,
            error_body("shutdown disabled: no admin token configured (BLAZER_ADMIN_TOKEN)")
                .to_string(),
        );
    };
    let presented = std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|doc| doc.get("token").and_then(Json::as_str).map(str::to_string));
    if presented.as_deref() != Some(expected.as_str()) {
        return (403, error_body("shutdown refused: bad or missing admin token").to_string());
    }
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop out of its blocking `incoming()`; it sees the
    // flag, exits, and drops the queue sender, which drains the workers.
    let addr = ctx.addr;
    std::thread::spawn(move || {
        let _ = TcpStream::connect(addr);
    });
    (200, Json::obj([("ok", Json::Bool(true)), ("draining", Json::Bool(true))]).to_string())
}

fn health_body(ctx: &Ctx) -> Json {
    Json::obj([
        ("ok", Json::Bool(!ctx.draining())),
        ("service", Json::from("blazer-serve")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("draining", Json::Bool(ctx.draining())),
        ("uptime_s", Json::secs(ctx.started.elapsed().as_secs_f64())),
    ])
}

fn stats_body(ctx: &Ctx) -> Json {
    let s = &ctx.stats;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("uptime_s", Json::secs(ctx.started.elapsed().as_secs_f64())),
        ("workers", Json::from(ctx.workers)),
        ("workers_busy", Json::from(s.workers_busy.load(Ordering::SeqCst))),
        ("queue_depth", Json::from(ctx.queue_depth)),
        ("queue_len", Json::from(s.queue_len.load(Ordering::SeqCst))),
        ("connections", Json::from(s.connections.load(Ordering::SeqCst))),
        ("requests", Json::from(s.requests.load(Ordering::SeqCst))),
        ("analyze_requests", Json::from(s.analyze_requests.load(Ordering::SeqCst))),
        ("batch_requests", Json::from(s.batch_requests.load(Ordering::SeqCst))),
        ("analyses_run", Json::from(s.analyses_run.load(Ordering::SeqCst))),
        ("coalesced", Json::from(s.coalesced.load(Ordering::SeqCst))),
        ("cache_hit_rate", Json::Num(ctx.cache.hit_rate())),
        (
            "cache",
            Json::obj([
                ("entries", Json::from(ctx.cache.len())),
                ("hits", Json::from(ctx.cache.hits())),
                ("misses", Json::from(ctx.cache.misses())),
                ("evictions", Json::from(ctx.cache.evictions())),
                ("shards", Json::from(ctx.cache.shards())),
                ("hit_rate", Json::Num(ctx.cache.hit_rate())),
            ]),
        ),
        (
            "portfolio",
            Json::obj([
                ("requests", Json::from(s.portfolio_requests.load(Ordering::SeqCst))),
                ("wins_decomp", Json::from(s.wins_decomp.load(Ordering::SeqCst))),
                ("wins_selfcomp", Json::from(s.wins_selfcomp.load(Ordering::SeqCst))),
                ("revocations", Json::from(s.revocations.load(Ordering::SeqCst))),
            ]),
        ),
        (
            "cost_models",
            Json::obj([
                ("weighted", Json::from(s.cost_model_weighted.load(Ordering::SeqCst))),
                ("cache", Json::from(s.cost_model_cache.load(Ordering::SeqCst))),
                ("custom", Json::from(s.cost_model_custom.load(Ordering::SeqCst))),
            ]),
        ),
        ("crashes", Json::from(s.crashes.load(Ordering::SeqCst))),
        ("client_errors", Json::from(s.client_errors.load(Ordering::SeqCst))),
        ("busy_rejections", Json::from(s.busy_rejections.load(Ordering::SeqCst))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_flag_is_inserted_after_ok_and_replaces_stale_flags() {
        let flagged = with_cached_flag(r#"{"ok": true, "verdict": "safe", "cached": false}"#, true);
        let doc = Json::parse(&flagged).unwrap();
        let Json::Obj(pairs) = &doc else { panic!("object in, object out") };
        assert_eq!(pairs[1].0, "cached");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(pairs.iter().filter(|(k, _)| k == "cached").count(), 1);
    }

    #[test]
    fn cached_flag_passes_non_object_bodies_through_verbatim() {
        // A non-object body (only reachable via a hand-edited persistence
        // file) must keep its exact shape — the old behavior rewrapped it
        // as a JSON *string*, silently changing the response type.
        for body in ["[1, 2, 3]", "\"just a string\"", "17", "not json at all"] {
            assert_eq!(with_cached_flag(body, true), body);
            assert_eq!(with_cached_flag(body, false), body);
        }
    }

    #[test]
    fn item_status_is_prefixed_and_never_duplicated() {
        let item = with_item_status(422, r#"{"ok": false, "error": "budget"}"#);
        let doc = Json::parse(&item).unwrap();
        let Json::Obj(pairs) = &doc else { panic!("object in, object out") };
        assert_eq!(pairs[0].0, "status");
        assert_eq!(doc.get("status").and_then(Json::as_u64), Some(422));
        let again = with_item_status(200, &item);
        let doc = Json::parse(&again).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_u64), Some(200));
    }
}
