//! # blazer-serve
//!
//! A concurrent timing-channel analysis service: the decomposition driver
//! behind an HTTP/1.1 API, built on `std::net` only (the workspace has no
//! crates.io access).
//!
//! ```text
//! POST /analyze   {"source": "fn f(h: int #high) { ... }", "domain": "zone", ...}
//! GET  /health    liveness probe
//! GET  /stats     request, worker, and cache counters
//! ```
//!
//! The architecture is the paper's Fig. 2 driver wrapped in three service
//! layers:
//!
//! 1. **Bounded job queue.** The accept loop pushes connections into a
//!    `sync_channel`; when the queue is full the request is answered
//!    `503` immediately instead of piling up unbounded work.
//! 2. **Worker pool with per-request budgets.** Each worker parses the
//!    request and runs the analysis under `catch_unwind` with its own
//!    installed [`blazer_core::Budget`] (deadline and LP-call caps from
//!    the request, clamped by the server's `max_timeout`). One
//!    pathological submission exhausts *its* budget — it can never take
//!    the server, or a sibling request, down.
//! 3. **Content-addressed verdict cache.** Verdicts are pure functions of
//!    `(source, config)`, so completed responses are memoized by content
//!    address ([`cache::CacheKey`]) and identical resubmissions are
//!    answered in microseconds, optionally surviving restarts via an
//!    append-only JSONL file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod pool;
pub mod report;

pub use api::AnalyzeRequest;
pub use cache::{CacheKey, VerdictCache};

use blazer_ir::json::Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (tests).
    pub addr: String,
    /// Worker-pool width; `None` defers to `BLAZER_SERVE_WORKERS`, then
    /// the machine's available parallelism.
    pub workers: Option<usize>,
    /// Bounded job-queue depth; a full queue answers `503`.
    pub queue_depth: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Server-side clamp on every request's wall-clock deadline (`None`
    /// leaves requests without a deadline unlimited).
    pub max_timeout: Option<Duration>,
    /// Verdict-cache persistence file (`None` keeps the cache in memory).
    pub cache_file: Option<PathBuf>,
    /// Trail-evaluation threads *within* one analysis. The default of 1
    /// lets the pool parallelize across requests instead of oversubscribing
    /// every core on each one.
    pub analysis_threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8645".to_string(),
            workers: None,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            max_timeout: None,
            cache_file: None,
            analysis_threads: 1,
        }
    }
}

/// Live service counters (all monotonic).
#[derive(Debug, Default)]
pub struct Stats {
    /// Connections handled by a worker.
    pub requests: AtomicU64,
    /// `POST /analyze` requests (cache hits included).
    pub analyze_requests: AtomicU64,
    /// Analyses that actually ran the driver.
    pub analyses_run: AtomicU64,
    /// Driver panics isolated into `500` responses.
    pub crashes: AtomicU64,
    /// Requests answered with a `4xx` status.
    pub client_errors: AtomicU64,
    /// Connections rejected `503` by the full job queue.
    pub busy_rejections: AtomicU64,
}

struct Ctx {
    cache: VerdictCache,
    stats: Stats,
    started: Instant,
    workers: usize,
    queue_depth: usize,
    max_body_bytes: usize,
    max_timeout: Option<Duration>,
    analysis_threads: usize,
}

/// A running service. Dropping the handle leaves the threads running;
/// call [`Server::stop`] for an orderly shutdown or [`Server::wait`] to
/// serve until the process dies.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns
    /// immediately.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let width = pool::effective_width(opts.workers, "BLAZER_SERVE_WORKERS");
        let cache = match opts.cache_file {
            Some(path) => VerdictCache::persistent(path),
            None => VerdictCache::in_memory(),
        };
        let ctx = Arc::new(Ctx {
            cache,
            stats: Stats::default(),
            started: Instant::now(),
            workers: width,
            queue_depth: opts.queue_depth,
            max_body_bytes: opts.max_body_bytes,
            max_timeout: opts.max_timeout,
            analysis_threads: opts.analysis_threads.max(1),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..width)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || worker_loop(&rx, &ctx))
            })
            .collect();
        let accept = {
            let ctx = Arc::clone(&ctx);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            ctx.stats.busy_rejections.fetch_add(1, Ordering::SeqCst);
                            http::write_json_response(
                                &mut stream,
                                503,
                                &error_body("server busy: job queue full, retry later").to_string(),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
        };
        Ok(Server { addr, shutdown, accept: Some(accept), workers, ctx })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live service counters.
    pub fn stats(&self) -> &Stats {
        &self.ctx.stats
    }

    /// The verdict cache (for in-process inspection).
    pub fn cache(&self) -> &VerdictCache {
        &self.ctx.cache
    }

    /// Blocks the calling thread on the accept loop (the `blazer serve`
    /// foreground mode).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Orderly shutdown: stop accepting, drain the workers, join every
    /// thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept call; the flag makes it exit, dropping
        // the queue sender, which in turn drains and stops the workers.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx) {
    loop {
        let received = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match received {
            Ok(mut stream) => handle_connection(&mut stream, ctx),
            Err(_) => break, // queue sender dropped: shutdown
        }
    }
}

fn error_body(error: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(error.into()))])
}

fn handle_connection(stream: &mut TcpStream, ctx: &Ctx) {
    ctx.stats.requests.fetch_add(1, Ordering::SeqCst);
    let request = match http::read_request(stream, ctx.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            ctx.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            http::write_json_response(stream, e.status, &error_body(e.message).to_string());
            return;
        }
    };
    let (status, body) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => (200, health_body(ctx)),
        ("GET", "/stats") => (200, stats_body(ctx)),
        ("POST", "/analyze") => handle_analyze(ctx, &request.body),
        (_, "/health" | "/stats" | "/analyze") => {
            (405, error_body(format!("method {} not allowed here", request.method)))
        }
        (_, path) => (404, error_body(format!("no such route: {path}"))),
    };
    if (400..500).contains(&status) {
        ctx.stats.client_errors.fetch_add(1, Ordering::SeqCst);
    }
    http::write_json_response(stream, status, &body.to_string());
}

fn handle_analyze(ctx: &Ctx, body: &[u8]) -> (u16, Json) {
    ctx.stats.analyze_requests.fetch_add(1, Ordering::SeqCst);
    let parsed = std::str::from_utf8(body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
        .and_then(|doc| api::AnalyzeRequest::from_json(&doc));
    let req = match parsed {
        Ok(req) => req,
        Err(e) => return (400, error_body(format!("bad request: {e}"))),
    };
    let key = req.cache_key();
    if let Some(stored) = ctx.cache.get(&key) {
        return (200, with_cached_flag(&stored, true));
    }
    ctx.stats.analyses_run.fetch_add(1, Ordering::SeqCst);
    let response = api::execute(&req, ctx.max_timeout, ctx.analysis_threads);
    if response.status == 500 {
        ctx.stats.crashes.fetch_add(1, Ordering::SeqCst);
    }
    if response.cacheable {
        ctx.cache.insert(&key, response.body.to_string());
    }
    (response.status, with_cached_flag(&response.body.to_string(), false))
}

/// Annotates a stored/fresh response body with its cache provenance.
fn with_cached_flag(body: &str, cached: bool) -> Json {
    match Json::parse(body) {
        Ok(Json::Obj(mut pairs)) => {
            pairs.retain(|(k, _)| k != "cached");
            let at = pairs.len().min(1);
            pairs.insert(at, ("cached".to_string(), Json::Bool(cached)));
            Json::Obj(pairs)
        }
        _ => Json::Str(body.to_string()),
    }
}

fn health_body(ctx: &Ctx) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("service", Json::from("blazer-serve")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("uptime_s", Json::secs(ctx.started.elapsed().as_secs_f64())),
    ])
}

fn stats_body(ctx: &Ctx) -> Json {
    let s = &ctx.stats;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("uptime_s", Json::secs(ctx.started.elapsed().as_secs_f64())),
        ("workers", Json::from(ctx.workers)),
        ("queue_depth", Json::from(ctx.queue_depth)),
        ("requests", Json::from(s.requests.load(Ordering::SeqCst))),
        ("analyze_requests", Json::from(s.analyze_requests.load(Ordering::SeqCst))),
        ("analyses_run", Json::from(s.analyses_run.load(Ordering::SeqCst))),
        (
            "cache",
            Json::obj([
                ("entries", Json::from(ctx.cache.len())),
                ("hits", Json::from(ctx.cache.hits())),
                ("misses", Json::from(ctx.cache.misses())),
            ]),
        ),
        ("crashes", Json::from(s.crashes.load(Ordering::SeqCst))),
        ("client_errors", Json::from(s.client_errors.load(Ordering::SeqCst))),
        ("busy_rejections", Json::from(s.busy_rejections.load(Ordering::SeqCst))),
    ])
}
