//! A minimal blocking HTTP client for the service — what the `blazer
//! client` subcommand, the fleet router's backend connections, the CI
//! smoke test, and the end-to-end tests use instead of curl.
//!
//! Two modes:
//!
//! - The free functions ([`health`], [`stats`], [`analyze`],
//!   [`analyze_batch`]) open one `Connection: close` connection per call —
//!   the simplest thing that works for a single request.
//! - [`Session`] holds one keep-alive connection and sends any number of
//!   requests over it, paying the TCP handshake once. Responses are framed
//!   by `Content-Length` (a keep-alive peer can't read to EOF), so a
//!   session can also be used to *pipeline*: writes and reads are separate
//!   calls on the same socket. A session whose connection was closed **at
//!   a request boundary** — the server announced `Connection: close`
//!   (request cap), or it restarted between requests — transparently
//!   re-dials once and resends; only a second consecutive failure, or a
//!   failure after response bytes have been consumed, surfaces an error.
//!
//! The wire-format primitives themselves ([`read_response`] and the
//! request formatter) live in the shared [`blazer_http`] crate.

use crate::api::AnalyzeRequest;
use blazer_http::format_request;
pub use blazer_http::read_response;
use blazer_ir::json::Json;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Whether a request failure may be answered by re-dialing: the peer went
/// away at a connection boundary (announced close, restart, idle-timeout
/// close) before any response byte arrived, so resending the identical
/// request on a fresh connection cannot duplicate an observed response.
fn retriable(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

/// One keep-alive connection to the service. Every request reuses the
/// same socket; when the server closes the connection at a request
/// boundary (its `--max-requests-per-connection` cap, a restart), the
/// next request transparently reconnects once instead of failing on the
/// dead socket.
pub struct Session {
    reader: Option<BufReader<TcpStream>>,
    addr: String,
    server_closed: bool,
}

impl Session {
    /// Connects one persistent session to `addr`.
    pub fn connect(addr: &str) -> std::io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        // Small request/response exchanges: Nagle + delayed ACK would add
        // ~40ms per round trip.
        let _ = stream.set_nodelay(true);
        Ok(Session {
            reader: Some(BufReader::new(stream)),
            addr: addr.to_string(),
            server_closed: false,
        })
    }

    /// Wraps an already-connected stream (one dialed with
    /// `TcpStream::connect_timeout`, say) as a session to `addr`; any
    /// later transparent re-dial uses a plain `connect`.
    pub fn from_stream(stream: TcpStream, addr: &str) -> Session {
        Session {
            reader: Some(BufReader::new(stream)),
            addr: addr.to_string(),
            server_closed: false,
        }
    }

    /// Whether the server announced `Connection: close` on the last
    /// response (the next request will re-dial instead of reusing the
    /// connection).
    pub fn server_closed(&self) -> bool {
        self.server_closed
    }

    /// Re-dials the session's address, replacing any previous connection.
    fn redial(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        self.reader = Some(BufReader::new(stream));
        self.server_closed = false;
        Ok(())
    }

    /// One write-request/read-response exchange on the current connection.
    fn exchange(&mut self, head: &str) -> std::io::Result<(u16, String, bool)> {
        let reader = self.reader.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "no connection")
        })?;
        // Writes go through the BufReader's inner stream; they don't
        // disturb buffered (pipelined) response bytes.
        reader.get_mut().write_all(head.as_bytes())?;
        reader.get_mut().flush()?;
        read_response(reader)
    }

    /// Sends one request and reads its framed response on the session's
    /// persistent connection, transparently reconnecting once when the
    /// previous connection ended at a request boundary.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let head = format_request(method, path, &self.addr, body.unwrap_or(""), false);
        // An announced close means the old socket is certainly dead:
        // re-dial proactively and treat the fresh connection as the one
        // attempt (a failure now is a real connectivity error).
        let announced = self.server_closed || self.reader.is_none();
        if announced {
            self.redial()?;
        }
        let (status, body, closes) = match self.exchange(&head) {
            Ok(r) => r,
            Err(e) if !announced && retriable(e.kind()) => {
                // The server hung up unannounced at a request boundary
                // (restart, idle-timeout). One silent retry on a fresh
                // connection; a second failure propagates.
                self.redial()?;
                self.exchange(&head)?
            }
            Err(e) => {
                // The connection state is unknown; drop it so the next
                // request starts from a clean dial.
                self.reader = None;
                return Err(e);
            }
        };
        self.server_closed = closes;
        Ok((status, body))
    }

    /// [`Session::request`] with a parsed JSON response.
    pub fn json_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, Json)> {
        let (status, body) = self.request(method, path, body)?;
        let doc =
            Json::parse(&body).map_err(|e| bad_data(format!("{e} in response: {body:.120}")))?;
        Ok((status, doc))
    }

    /// `POST /analyze` with one typed request.
    pub fn analyze(&mut self, req: &AnalyzeRequest) -> std::io::Result<(u16, Json)> {
        self.json_request("POST", "/analyze", Some(&req.to_json().to_string()))
    }

    /// `POST /analyze` with a batch: one array in, one array out, results
    /// in submission order with per-item `status` fields.
    pub fn analyze_batch(&mut self, reqs: &[AnalyzeRequest]) -> std::io::Result<(u16, Json)> {
        let body = Json::arr(reqs.iter().map(AnalyzeRequest::to_json)).to_string();
        self.json_request("POST", "/analyze", Some(&body))
    }

    /// `GET /health` on the session's connection.
    pub fn health(&mut self) -> std::io::Result<(u16, Json)> {
        self.json_request("GET", "/health", None)
    }

    /// `GET /stats` on the session's connection.
    pub fn stats(&mut self) -> std::io::Result<(u16, Json)> {
        self.json_request("GET", "/stats", None)
    }
}

/// Sends one `Connection: close` request and returns `(status, body)`.
/// The read blocks until the server closes the connection, so there is no
/// client-side deadline racing a long-running analysis (the server's own
/// per-request budget is the timeout mechanism).
pub fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(format_request(method, path, addr, body.unwrap_or(""), true).as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data(format!("malformed status line in: {raw:.60}")))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| bad_data("response without header/body separator"))?;
    Ok((status, payload))
}

fn json_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let (status, body) = raw_request(addr, method, path, body)?;
    let doc = Json::parse(&body).map_err(|e| bad_data(format!("{e} in response: {body:.120}")))?;
    Ok((status, doc))
}

/// `GET /health`.
pub fn health(addr: &str) -> std::io::Result<(u16, Json)> {
    json_request(addr, "GET", "/health", None)
}

/// `GET /stats`.
pub fn stats(addr: &str) -> std::io::Result<(u16, Json)> {
    json_request(addr, "GET", "/stats", None)
}

/// `POST /analyze` with a typed request.
pub fn analyze(addr: &str, req: &AnalyzeRequest) -> std::io::Result<(u16, Json)> {
    json_request(addr, "POST", "/analyze", Some(&req.to_json().to_string()))
}

/// `POST /analyze` with a batch of typed requests on a one-shot
/// connection (see [`Session::analyze_batch`] for the keep-alive way).
pub fn analyze_batch(addr: &str, reqs: &[AnalyzeRequest]) -> std::io::Result<(u16, Json)> {
    let body = Json::arr(reqs.iter().map(AnalyzeRequest::to_json)).to_string();
    json_request(addr, "POST", "/analyze", Some(&body))
}
