//! A minimal blocking HTTP client for the service — what the `blazer
//! client` subcommand, the CI smoke test, and the end-to-end tests use
//! instead of curl.

use crate::api::AnalyzeRequest;
use blazer_ir::json::Json;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Sends one `Connection: close` request and returns `(status, body)`.
/// The read blocks until the server closes the connection, so there is no
/// client-side deadline racing a long-running analysis (the server's own
/// per-request budget is the timeout mechanism).
pub fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data(format!("malformed status line in: {raw:.60}")))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| bad_data("response without header/body separator"))?;
    Ok((status, payload))
}

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn json_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let (status, body) = raw_request(addr, method, path, body)?;
    let doc = Json::parse(&body).map_err(|e| bad_data(format!("{e} in response: {body:.120}")))?;
    Ok((status, doc))
}

/// `GET /health`.
pub fn health(addr: &str) -> std::io::Result<(u16, Json)> {
    json_request(addr, "GET", "/health", None)
}

/// `GET /stats`.
pub fn stats(addr: &str) -> std::io::Result<(u16, Json)> {
    json_request(addr, "GET", "/stats", None)
}

/// `POST /analyze` with a typed request.
pub fn analyze(addr: &str, req: &AnalyzeRequest) -> std::io::Result<(u16, Json)> {
    json_request(addr, "POST", "/analyze", Some(&req.to_json().to_string()))
}
