//! A minimal blocking HTTP client for the service — what the `blazer
//! client` subcommand, the CI smoke test, and the end-to-end tests use
//! instead of curl.
//!
//! Two modes:
//!
//! - The free functions ([`health`], [`stats`], [`analyze`],
//!   [`analyze_batch`]) open one `Connection: close` connection per call —
//!   the simplest thing that works for a single request.
//! - [`Session`] holds one keep-alive connection and sends any number of
//!   requests over it, paying the TCP handshake once. Responses are framed
//!   by `Content-Length` (a keep-alive peer can't read to EOF), so a
//!   session can also be used to *pipeline*: writes and reads are separate
//!   calls on the same socket.

use crate::api::AnalyzeRequest;
use blazer_ir::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Formats one request head + body. `close` picks the `Connection` token.
fn format_request(method: &str, path: &str, host: &str, body: &str, close: bool) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
}

/// Reads one `Content-Length`-framed response from a persistent reader.
/// Returns `(status, body, server_closes)` — the last flag reports the
/// server's `Connection: close`, after which no further response will
/// arrive on this connection.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(u16, String, bool)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data(format!("malformed status line: {line:.60}")))?;
    let mut content_length: Option<usize> = None;
    let mut closes = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad_data("connection closed mid-response-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                closes = value.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"));
            }
        }
    }
    let length =
        content_length.ok_or_else(|| bad_data("response without Content-Length framing"))?;
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad_data("response body is not UTF-8"))?;
    Ok((status, body, closes))
}

/// One keep-alive connection to the service. Every request reuses the
/// same socket until the server announces `Connection: close` (request
/// cap, error) — after that, further requests fail with a clear error
/// instead of hanging on a dead socket.
pub struct Session {
    reader: BufReader<TcpStream>,
    addr: String,
    server_closed: bool,
}

impl Session {
    /// Connects one persistent session to `addr`.
    pub fn connect(addr: &str) -> std::io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        Ok(Session { reader: BufReader::new(stream), addr: addr.to_string(), server_closed: false })
    }

    /// Whether the server has announced it will close this connection.
    pub fn server_closed(&self) -> bool {
        self.server_closed
    }

    /// Sends one request and reads its framed response on the session's
    /// persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        if self.server_closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "server closed this session (Connection: close); open a new one",
            ));
        }
        let head = format_request(method, path, &self.addr, body.unwrap_or(""), false);
        // Writes go through the BufReader's inner stream; they don't
        // disturb buffered (pipelined) response bytes.
        self.reader.get_mut().write_all(head.as_bytes())?;
        self.reader.get_mut().flush()?;
        let (status, body, closes) = read_response(&mut self.reader)?;
        self.server_closed = closes;
        Ok((status, body))
    }

    /// [`Session::request`] with a parsed JSON response.
    pub fn json_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, Json)> {
        let (status, body) = self.request(method, path, body)?;
        let doc =
            Json::parse(&body).map_err(|e| bad_data(format!("{e} in response: {body:.120}")))?;
        Ok((status, doc))
    }

    /// `POST /analyze` with one typed request.
    pub fn analyze(&mut self, req: &AnalyzeRequest) -> std::io::Result<(u16, Json)> {
        self.json_request("POST", "/analyze", Some(&req.to_json().to_string()))
    }

    /// `POST /analyze` with a batch: one array in, one array out, results
    /// in submission order with per-item `status` fields.
    pub fn analyze_batch(&mut self, reqs: &[AnalyzeRequest]) -> std::io::Result<(u16, Json)> {
        let body = Json::arr(reqs.iter().map(AnalyzeRequest::to_json)).to_string();
        self.json_request("POST", "/analyze", Some(&body))
    }

    /// `GET /health` on the session's connection.
    pub fn health(&mut self) -> std::io::Result<(u16, Json)> {
        self.json_request("GET", "/health", None)
    }

    /// `GET /stats` on the session's connection.
    pub fn stats(&mut self) -> std::io::Result<(u16, Json)> {
        self.json_request("GET", "/stats", None)
    }
}

/// Sends one `Connection: close` request and returns `(status, body)`.
/// The read blocks until the server closes the connection, so there is no
/// client-side deadline racing a long-running analysis (the server's own
/// per-request budget is the timeout mechanism).
pub fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format_request(method, path, addr, body.unwrap_or(""), true).as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data(format!("malformed status line in: {raw:.60}")))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| bad_data("response without header/body separator"))?;
    Ok((status, payload))
}

fn json_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let (status, body) = raw_request(addr, method, path, body)?;
    let doc = Json::parse(&body).map_err(|e| bad_data(format!("{e} in response: {body:.120}")))?;
    Ok((status, doc))
}

/// `GET /health`.
pub fn health(addr: &str) -> std::io::Result<(u16, Json)> {
    json_request(addr, "GET", "/health", None)
}

/// `GET /stats`.
pub fn stats(addr: &str) -> std::io::Result<(u16, Json)> {
    json_request(addr, "GET", "/stats", None)
}

/// `POST /analyze` with a typed request.
pub fn analyze(addr: &str, req: &AnalyzeRequest) -> std::io::Result<(u16, Json)> {
    json_request(addr, "POST", "/analyze", Some(&req.to_json().to_string()))
}

/// `POST /analyze` with a batch of typed requests on a one-shot
/// connection (see [`Session::analyze_batch`] for the keep-alive way).
pub fn analyze_batch(addr: &str, reqs: &[AnalyzeRequest]) -> std::io::Result<(u16, Json)> {
    let body = Json::arr(reqs.iter().map(AnalyzeRequest::to_json)).to_string();
    json_request(addr, "POST", "/analyze", Some(&body))
}
