//! Worker-pool machinery shared by the service and the benchmark harness.
//!
//! [`scoped_map`] is the ordered fan-out primitive: evaluate a function
//! over a slice on `width` scoped worker threads, returning results in
//! item order no matter which worker finished first — the same
//! deterministic-merge discipline as the driver's trail-evaluation pool.
//! The HTTP server builds its long-lived worker pool on plain
//! `std::sync::mpsc` channels instead (jobs arrive over time, not as a
//! slice), but both share the rule that a panicking job never takes a
//! sibling down with it.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `width` scoped worker threads and
/// returns the results in item order. `f` receives `(index, &item)`.
///
/// `width <= 1` (or a single item) runs sequentially on the calling
/// thread with no pool at all. A panicking call is isolated until every
/// item has been processed, then the first panic (in item order) is
/// re-raised with its original payload.
pub fn scoped_map<T, R, F>(items: &[T], width: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if width <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..width.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= items.len() {
                    break;
                }
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    let mut results = Vec::with_capacity(items.len());
    let mut first_panic = None;
    for slot in slots {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok(r)) => results.push(r),
            Some(Err(payload)) => {
                first_panic.get_or_insert(payload);
            }
            None => unreachable!("every item index is claimed by some worker"),
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    results
}

/// Clamps a fan-out width to the number of items, never below one — the
/// shared rule for sizing a [`scoped_map`] call (the Table-1 harness over
/// its selected benchmarks, the batch `/analyze` handler over its items):
/// spawning more workers than items buys nothing.
pub fn clamped_width(width: usize, items: usize) -> usize {
    width.min(items).max(1)
}

/// The effective pool width for a `width` request: an explicit positive
/// value wins, then a positive value in the named environment variable,
/// then the machine's available parallelism.
pub fn effective_width(explicit: Option<usize>, env_var: &str) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) =
        std::env::var(env_var).ok().and_then(|s| s.trim().parse::<usize>().ok()).filter(|n| *n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The pool width for a *connection-serving* worker loop:
/// [`effective_width`] plus one spare worker when the width fell through
/// to the machine's parallelism (an explicit request or environment
/// override is honored verbatim). Connection workers are thread-per-
/// connection and IO-bound, not CPU-bound: a keep-alive peer — the fleet
/// router parks one warm connection per backend — idle-holds a worker for
/// the whole io timeout, and without the spare that one parked connection
/// starves every one-shot request (health probes, `/stats` scrapes) on a
/// one-core machine.
pub fn serving_width(explicit: Option<usize>, env_var: &str) -> usize {
    if explicit.is_some() || std::env::var(env_var).is_ok_and(|s| !s.trim().is_empty()) {
        effective_width(explicit, env_var)
    } else {
        effective_width(None, env_var) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_every_width() {
        let items: Vec<usize> = (0..37).collect();
        let sequential = scoped_map(&items, 1, |i, &x| (i, x * x));
        for width in [2, 4, 16] {
            assert_eq!(scoped_map(&items, width, |i, &x| (i, x * x)), sequential);
        }
    }

    #[test]
    fn reraises_the_first_panic_in_item_order() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            scoped_map(&items, 4, |_, &x| {
                if x % 5 == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "boom at 3");
    }

    #[test]
    fn serving_width_adds_a_spare_only_for_derived_widths() {
        assert_eq!(serving_width(Some(1), "BLAZER_TEST_NO_SUCH_VAR"), 1);
        assert_eq!(serving_width(Some(5), "BLAZER_TEST_NO_SUCH_VAR"), 5);
        assert_eq!(
            serving_width(None, "BLAZER_TEST_NO_SUCH_VAR"),
            effective_width(None, "BLAZER_TEST_NO_SUCH_VAR") + 1
        );
    }

    #[test]
    fn clamps_width_to_items_never_below_one() {
        assert_eq!(clamped_width(8, 3), 3);
        assert_eq!(clamped_width(2, 24), 2);
        assert_eq!(clamped_width(4, 0), 1);
        assert_eq!(clamped_width(0, 5), 1);
    }

    #[test]
    fn explicit_width_beats_environment() {
        assert_eq!(effective_width(Some(3), "BLAZER_NO_SUCH_VAR"), 3);
        assert_eq!(effective_width(Some(0), "BLAZER_NO_SUCH_VAR"), 1);
        assert!(effective_width(None, "BLAZER_NO_SUCH_VAR") >= 1);
    }
}
