//! A deliberately small HTTP/1.1 subset over `std::net` streams.
//!
//! The service speaks exactly three routes, every request and response
//! carries `Connection: close`, and bodies are delimited by
//! `Content-Length` only (no chunked transfer, no keep-alive, no TLS).
//! That subset is what `curl`, the `blazer client` subcommand, and any
//! load balancer health check need — and nothing more, because the
//! workspace is std-only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection socket read/write timeout: a stalled or malicious peer
/// must never pin a worker forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, query string included.
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A request-reading failure that should be answered with the given HTTP
/// status (or not at all, for a dead socket).
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason for the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }
}

/// Reads and parses one request from the stream, enforcing `max_body`
/// bytes on the declared `Content-Length`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| HttpError::new(400, format!("could not read request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| HttpError::new(400, format!("could not read headers: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // A negative or u64-overflowing length fails the `usize`
                // parse (400) rather than wrapping into a small allocation;
                // the 413 below then runs *before* the body buffer is
                // allocated, so a hostile length never reserves memory.
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::new(400, "unparsable Content-Length"))?;
                if content_length.replace(parsed).is_some_and(|prev| prev != parsed) {
                    // RFC 9110 §8.6: conflicting lengths are a smuggling
                    // vector; refuse rather than guess which one delimits.
                    return Err(HttpError::new(400, "conflicting Content-Length headers"));
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::new(400, format!("body shorter than Content-Length: {e}")))?;
    Ok(Request { method, path, body })
}

/// The standard reason phrase for the status codes this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` JSON response. Write errors are ignored:
/// the peer may have hung up, and the server has nothing better to do than
/// move on to the next connection.
pub fn write_json_response(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body.as_bytes()));
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        tx.write_all(raw).unwrap();
        tx.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        read_request(&mut rx, max_body)
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd", 1024)
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_and_truncated_bodies() {
        let over = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10).unwrap_err();
        assert_eq!(over.status, 413);
        let short = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nab", 1024).unwrap_err();
        assert_eq!(short.status, 400);
        let garbage = roundtrip(b"\r\n", 1024).unwrap_err();
        assert_eq!(garbage.status, 400);
    }

    #[test]
    fn accepts_zero_length_post() {
        let req = roundtrip(b"POST /analyze HTTP/1.1\r\nContent-Length: 0\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.body.is_empty());
        // No Content-Length at all reads the same as an explicit zero.
        let req = roundtrip(b"POST /analyze HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_negative_and_overflowing_content_length() {
        // A negative length must be a parse failure (400), not a wrap into
        // a huge or zero allocation.
        let neg = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 1024).unwrap_err();
        assert_eq!(neg.status, 400);
        // One past u64::MAX (and u64::MAX itself, which can't fit a body
        // limit anyway): the usize parse overflows → 400, and nothing is
        // allocated on either path.
        let wrap =
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n", 1024)
                .unwrap_err();
        assert_eq!(wrap.status, 400);
        // A huge-but-parsable length is bounced by the limit check (413)
        // before the body buffer is allocated.
        let huge =
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 9223372036854775807\r\n\r\n", 1024)
                .unwrap_err();
        assert_eq!(huge.status, 413);
        let junk =
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 4x\r\n\r\nabcd", 1024).unwrap_err();
        assert_eq!(junk.status, 400);
    }

    #[test]
    fn rejects_conflicting_content_lengths() {
        let smuggle = roundtrip(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd",
            1024,
        )
        .unwrap_err();
        assert_eq!(smuggle.status, 400);
        // Agreeing duplicates are harmless and accepted.
        let agree = roundtrip(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(agree.body, b"abcd");
    }
}
