//! The serve-throughput benchmark harness behind `blazer bench-serve`.
//!
//! Lock refactors must be measured, not asserted: this module boots a
//! real in-process [`Server`](crate::Server), drives it with 1..N client
//! threads over configurable hit/miss mixes, and reports requests/s plus
//! p50/p99 latency per `(threads, mix)` run — the numbers committed as
//! `BENCH_serve.json` and smoke-checked by CI.
//!
//! Every client thread owns one keep-alive [`Session`](crate::client::
//! Session) and issues sequential `POST /analyze` requests until the
//! run's deadline. A *hit* request cycles over a small set of programs
//! preloaded into the verdict cache before the clock starts, so it
//! exercises exactly the sharded read path; a *miss* request submits a
//! globally unique program, paying one real driver run (tiny programs —
//! a millisecond-scale analysis — so the mix measures the serve layer,
//! not refinement). Each run boots a fresh server: counters and cache
//! state never leak between configurations.

use crate::api::AnalyzeRequest;
use crate::client::Session;
use crate::{ServeOptions, Server};
use blazer_ir::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One benchmark configuration sweep.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Client-thread counts to sweep (each paired with every mix).
    pub threads: Vec<usize>,
    /// Hit percentages to sweep (`100` = pure cache hits, `0` = every
    /// request a unique program).
    pub hit_percents: Vec<u8>,
    /// Wall-clock length of each timed run.
    pub duration: Duration,
    /// Distinct preloaded programs the hit side cycles over (spreading
    /// hits across cache shards).
    pub hit_keys: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            threads: vec![1, 4],
            hit_percents: vec![100, 90],
            duration: Duration::from_secs(3),
            hit_keys: 16,
        }
    }
}

/// A tiny analyzable program, distinct per `tag` (the tick constant makes
/// the source — and so the cache key — unique).
fn program(tag: u64) -> String {
    format!("fn f(h: int #high) {{ if (h > 0) {{ tick({tag}); }} else {{ tick({tag}); }} }}")
}

/// The summary of one `(threads, mix)` run.
struct RunResult {
    threads: usize,
    hit_pct: u8,
    requests: u64,
    wall_s: f64,
    p50_us: u64,
    p99_us: u64,
    hits: u64,
    misses: u64,
    analyses_run: u64,
}

impl RunResult {
    fn rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.requests as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::from(self.threads)),
            ("hit_pct", Json::from(u64::from(self.hit_pct))),
            ("requests", Json::from(self.requests)),
            ("wall_s", Json::secs(self.wall_s)),
            ("rps", Json::secs(self.rps())),
            ("p50_us", Json::from(self.p50_us)),
            ("p99_us", Json::from(self.p99_us)),
            ("cache_hits", Json::from(self.hits)),
            ("cache_misses", Json::from(self.misses)),
            ("analyses_run", Json::from(self.analyses_run)),
        ])
    }

    fn summary(&self) -> String {
        format!(
            "threads={:<2} hit_pct={:<3} {:>9.0} req/s  p50={}us p99={}us  \
             ({} requests, {} analyses)",
            self.threads,
            self.hit_pct,
            self.rps(),
            self.p50_us,
            self.p99_us,
            self.requests,
            self.analyses_run,
        )
    }
}

/// Sorted-latency percentile (µs); zero for an empty run.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

/// One timed run against a fresh in-process server.
fn run_one(
    threads: usize,
    hit_pct: u8,
    duration: Duration,
    hit_keys: usize,
    unique: &AtomicU64,
) -> Result<RunResult, String> {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        // Thread-per-connection: every client session pins a worker, plus
        // a spare for the warmup session.
        workers: Some(threads + 1),
        queue_depth: threads + 8,
        ..ServeOptions::default()
    };
    let server = Server::start(opts).map_err(|e| format!("bench server: {e}"))?;
    let addr = server.addr().to_string();
    let hit_sources: Vec<String> = (0..hit_keys.max(1)).map(|i| program(i as u64)).collect();
    // Preload the hit set (one real run each) before the clock starts.
    {
        let mut warmup = Session::connect(&addr).map_err(|e| format!("bench warmup: {e}"))?;
        for source in &hit_sources {
            let (status, body) = warmup
                .analyze(&AnalyzeRequest::new(source.clone()))
                .map_err(|e| format!("bench warmup: {e}"))?;
            if status != 200 {
                return Err(format!("bench warmup answered {status}: {body}"));
            }
        }
    }
    let (hits_before, misses_before, runs_before) = (
        server.cache().hits(),
        server.cache().misses(),
        server.stats().analyses_run.load(Ordering::SeqCst),
    );
    let gate = std::sync::Barrier::new(threads + 1);
    let (results, wall_s) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let addr = addr.clone();
                let hit_sources = &hit_sources;
                let gate = &gate;
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut session =
                        Session::connect(&addr).map_err(|e| format!("bench client: {e}"))?;
                    let mut lats: Vec<u64> = Vec::with_capacity(4096);
                    gate.wait();
                    let deadline = Instant::now() + duration;
                    let mut seq = 0u64;
                    let miss_pct = u64::from(100 - hit_pct.min(100));
                    while Instant::now() < deadline {
                        // Bresenham-style spread: misses interleave evenly
                        // through the sequence (at 90% hits, every 10th
                        // request) instead of bunching at the end of each
                        // hundred — short runs still see the mix.
                        let miss = (seq * miss_pct) % 100 < miss_pct;
                        let source = if miss {
                            program(1_000_000 + unique.fetch_add(1, Ordering::Relaxed))
                        } else {
                            hit_sources[(seq as usize) % hit_sources.len()].clone()
                        };
                        let begun = Instant::now();
                        let (status, body) = session
                            .analyze(&AnalyzeRequest::new(source))
                            .map_err(|e| format!("bench client {worker}: {e}"))?;
                        if status != 200 {
                            return Err(format!(
                                "bench client {worker}: server answered {status}: {body}"
                            ));
                        }
                        lats.push(begun.elapsed().as_micros() as u64);
                        seq += 1;
                    }
                    Ok(lats)
                })
            })
            .collect();
        gate.wait();
        let started = Instant::now();
        let results: Vec<Result<Vec<u64>, String>> =
            handles.into_iter().map(|h| h.join().expect("bench client")).collect();
        (results, started.elapsed().as_secs_f64())
    });
    let mut latencies: Vec<u64> = Vec::new();
    let mut requests = 0u64;
    for result in results {
        let lats = result?;
        requests += lats.len() as u64;
        latencies.extend(lats);
    }
    latencies.sort_unstable();
    let result = RunResult {
        threads,
        hit_pct,
        requests,
        wall_s,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        hits: server.cache().hits() - hits_before,
        misses: server.cache().misses() - misses_before,
        analyses_run: server.stats().analyses_run.load(Ordering::SeqCst) - runs_before,
    };
    server.stop();
    Ok(result)
}

/// Runs the full `threads × mixes` sweep and returns the `BENCH_serve`
/// document. `progress` receives one human-readable line per finished run
/// (the CI log trace).
pub fn run(opts: &BenchOptions, mut progress: impl FnMut(&str)) -> Result<Json, String> {
    if opts.threads.is_empty() || opts.hit_percents.is_empty() {
        return Err("bench-serve needs at least one thread count and one mix".to_string());
    }
    // Misses must be unique across every run of the sweep: each server is
    // fresh, but reusing a tag within a run would turn a miss into a hit.
    let unique = AtomicU64::new(0);
    let mut runs = Vec::new();
    for &threads in &opts.threads {
        for &hit_pct in &opts.hit_percents {
            let result =
                run_one(threads.max(1), hit_pct.min(100), opts.duration, opts.hit_keys, &unique)?;
            progress(&result.summary());
            runs.push(result.to_json());
        }
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("bench", Json::from("serve-throughput")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("cores", Json::from(cores)),
        ("cache_shards", Json::from(crate::sync::default_shard_count())),
        ("duration_s", Json::secs(opts.duration.as_secs_f64())),
        ("hit_keys", Json::from(opts.hit_keys)),
        ("runs", Json::Arr(runs)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_sorted_run() {
        let lats: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lats, 50), 51);
        assert_eq!(percentile(&lats, 99), 100);
        assert_eq!(percentile(&[], 99), 0);
    }

    #[test]
    fn generated_programs_are_distinct_and_analyzable() {
        assert_ne!(program(1), program(2));
        assert!(blazer_lang::compile(&program(7)).is_ok());
    }

    #[test]
    fn tiny_sweep_produces_the_report_shape() {
        let opts = BenchOptions {
            threads: vec![1],
            hit_percents: vec![100],
            duration: Duration::from_millis(200),
            hit_keys: 2,
        };
        let mut lines = Vec::new();
        let doc = run(&opts, |line| lines.push(line.to_string())).expect("bench run");
        assert_eq!(lines.len(), 1);
        let Some(Json::Arr(runs)) = doc.get("runs") else { panic!("runs array") };
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("threads").and_then(Json::as_u64), Some(1));
        assert_eq!(run.get("hit_pct").and_then(Json::as_u64), Some(100));
        assert!(run.get("requests").and_then(Json::as_u64).unwrap_or(0) > 0);
        assert!(run.get("rps").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        // A pure-hit run after warmup never runs the driver.
        assert_eq!(run.get("analyses_run").and_then(Json::as_u64), Some(0));
    }
}
