//! Read-optimized sharded concurrency primitives.
//!
//! Under fleet traffic the serve layer is overwhelmingly read-mostly:
//! nearly every `/analyze` is a verdict-cache hit, yet before this module
//! every hit funneled through one `Mutex` (and every coalesced miss
//! through one flight-table mutex). [`ShardedMap`] replaces that with N
//! independent shards — the FNV-1a hash of the key picks the shard, so
//! unrelated keys never contend — and a read path that takes **no
//! exclusive lock**: a hit acquires one shard's `RwLock` in *shared* mode
//! and refreshes the entry's recency with a relaxed atomic stamp store.
//! Concurrent readers of the same shard (even of the same entry) proceed
//! in parallel; only an insert or an eviction write-locks, and then only
//! its own shard.
//!
//! Recency is approximate by design (the busy-forbidden readers-writer
//! literature's trade: exact LRU needs a write on every read, which is
//! exactly the serialization being removed). Each entry carries an atomic
//! stamp from a shared logical clock; eviction scans the inserting shard
//! for the smallest stamp — per-shard second-chance-style approximate LRU
//! driven by the stamps, never a global ordering structure.
//!
//! The capacity is likewise a *soft* global bound: a shared atomic count
//! triggers eviction, but the victim is taken from the inserting shard
//! (so no insert ever touches another shard's lock). A shard holding only
//! the entry just inserted skips the eviction, so the map can overshoot
//! its capacity by at most one entry per shard — bounded, and the price
//! of hits never waiting on unrelated inserts. At `shards = 1` the map
//! degenerates to exact LRU (tests rely on this).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

/// FNV-1a 64 — the same content-address hash the cache key reports, so a
/// key's shard is derivable from its published address.
pub use blazer_ir::json::fnv1a64;

/// The default shard count: four shards per core, rounded up to a power
/// of two and clamped to `[4, 64]`. Oversharding relative to the core
/// count keeps the probability of two concurrent writers colliding on a
/// shard low without making per-shard caps degenerate.
pub fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (cores * 4).next_power_of_two().clamp(4, 64)
}

/// The shard a key hash lands in, for a power-of-two shard count.
pub fn shard_index(hash: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    (hash & (shards as u64 - 1)) as usize
}

/// One stored value plus its recency stamp. The stamp is atomic so the
/// read path can refresh it under a *shared* shard lock.
#[derive(Debug)]
struct Stamped<V> {
    value: V,
    stamp: AtomicU64,
}

/// One shard: a plain hash map of stamped values behind a readers-writer
/// lock.
type Shard<V> = RwLock<HashMap<String, Stamped<V>>>;

/// A sharded map with a lock-light read path and per-shard approximate-LRU
/// eviction. See the module docs for the design.
#[derive(Debug)]
pub struct ShardedMap<V> {
    shards: Box<[Shard<V>]>,
    /// Shared logical clock behind every recency stamp.
    clock: AtomicU64,
    /// Live entries across all shards (the soft-capacity trigger).
    count: AtomicUsize,
    /// Entries evicted to make room, ever.
    evictions: AtomicU64,
    max_entries: usize,
}

impl<V> ShardedMap<V> {
    /// An empty map holding about `max_entries` values across `shards`
    /// shards. The capacity is a soft bound (overshoot ≤ one entry per
    /// shard); a zero capacity is promoted to one, and the shard count is
    /// rounded up to a power of two.
    pub fn new(max_entries: usize, shards: usize) -> ShardedMap<V> {
        let shards = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            count: AtomicUsize::new(0),
            evictions: AtomicU64::new(0),
            max_entries: max_entries.max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The soft capacity.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Live entries (approximate only while writers are mid-flight).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// Whether the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted over the map's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::SeqCst)
    }

    fn shard_of(&self, key: &str) -> &RwLock<HashMap<String, Stamped<V>>> {
        &self.shards[shard_index(fnv1a64(key.as_bytes()), self.shards.len())]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up `key`, refreshing its recency. **The hot path**: one
    /// shard's read lock (shared — concurrent hits on any keys proceed in
    /// parallel) plus two relaxed atomic operations; no write lock, no
    /// exclusive section, no I/O.
    pub fn get(&self, key: &str) -> Option<V>
    where
        V: Clone,
    {
        let shard = self.shard_of(key).read().unwrap_or_else(|e| e.into_inner());
        let entry = shard.get(key)?;
        entry.stamp.store(self.tick(), Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Stores `key → value`, write-locking only the key's shard. Returns
    /// `true` when the key is new (a *fresh* insert); storing over an
    /// existing key replaces the value in place, refreshes its recency,
    /// and returns `false` without evicting. A fresh insert that pushes
    /// the map past capacity evicts the smallest-stamp entry *of the same
    /// shard* (never the entry just inserted); a shard holding nothing
    /// else skips the eviction, which is what makes the capacity soft.
    pub fn insert(&self, key: &str, value: V) -> bool {
        let stamp = self.tick();
        let mut shard = self.shard_of(key).write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = shard.get_mut(key) {
            existing.value = value;
            existing.stamp.store(stamp, Ordering::Relaxed);
            return false;
        }
        shard.insert(key.to_string(), Stamped { value, stamp: AtomicU64::new(stamp) });
        let total = self.count.fetch_add(1, Ordering::SeqCst) + 1;
        if total > self.max_entries {
            let victim = shard
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.count.fetch_sub(1, Ordering::SeqCst);
                self.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
        true
    }

    /// Every live entry with its recency stamp, gathered shard by shard
    /// under *read* locks (a flush never blocks hits). Order is
    /// unspecified; sort by stamp for LRU-first.
    pub fn entries(&self) -> Vec<(String, V, u64)>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let shard = shard.read().unwrap_or_else(|e| e.into_inner());
            out.extend(
                shard
                    .iter()
                    .map(|(k, e)| (k.clone(), e.value.clone(), e.stamp.load(Ordering::Relaxed))),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shard_count_is_a_clamped_power_of_two() {
        let n = default_shard_count();
        assert!(n.is_power_of_two());
        assert!((4..=64).contains(&n));
    }

    #[test]
    fn get_insert_replace_roundtrip() {
        let map: ShardedMap<String> = ShardedMap::new(16, 4);
        assert!(map.get("a").is_none());
        assert!(map.insert("a", "1".into()), "first insert is fresh");
        assert!(!map.insert("a", "2".into()), "second insert replaces");
        assert_eq!(map.get("a").as_deref(), Some("2"));
        assert_eq!((map.len(), map.evictions()), (1, 0));
    }

    #[test]
    fn single_shard_is_exact_lru() {
        let map: ShardedMap<u32> = ShardedMap::new(2, 1);
        map.insert("a", 1);
        map.insert("b", 2);
        assert!(map.get("a").is_some(), "touch a so b is the victim");
        map.insert("c", 3);
        assert_eq!(map.len(), 2);
        assert!(map.get("a").is_some());
        assert!(map.get("b").is_none(), "LRU entry evicted");
        assert!(map.get("c").is_some());
        assert_eq!(map.evictions(), 1);
    }

    #[test]
    fn capacity_is_soft_but_bounded_by_one_per_shard() {
        let map: ShardedMap<u32> = ShardedMap::new(4, 4);
        for i in 0..64 {
            map.insert(&format!("key-{i}"), i);
        }
        assert!(map.len() <= 4 + map.shard_count(), "soft cap overshoot is bounded");
        assert_eq!(map.len() as u64 + map.evictions(), 64, "no lost inserts or double evictions");
    }

    #[test]
    fn entries_snapshot_carries_stamps() {
        let map: ShardedMap<u32> = ShardedMap::new(16, 4);
        map.insert("x", 7);
        map.insert("y", 8);
        let _ = map.get("x"); // refresh: x must now out-stamp y
        let entries = map.entries();
        assert_eq!(entries.len(), 2);
        let stamp = |k: &str| entries.iter().find(|(key, ..)| key == k).unwrap().2;
        assert!(stamp("x") > stamp("y"));
    }

    #[test]
    fn shard_index_distributes_and_is_stable() {
        let hits: std::collections::HashSet<usize> =
            (0..256u64).map(|i| shard_index(fnv1a64(format!("k{i}").as_bytes()), 8)).collect();
        assert!(hits.len() > 4, "256 keys must spread over a meaningful fraction of 8 shards");
        for i in 0..8u64 {
            assert!(shard_index(i, 8) < 8);
        }
    }
}
