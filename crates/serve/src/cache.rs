//! The content-addressed verdict cache.
//!
//! A verdict is a pure function of `(source text, analysis configuration)`:
//! the driver is deterministic at every thread width, so two submissions
//! with the same canonical key *must* produce the same response. The cache
//! exploits that — a resubmission of an already-proven program is answered
//! in microseconds instead of re-running refinement.
//!
//! Keys are canonical strings (`function`, config fingerprint, and the
//! full source) — the reported *content address* is the FNV-1a hash of
//! that string, but lookups compare the canonical string itself, so a
//! hash collision can never serve the wrong verdict.
//!
//! Budget-exhausted and crashed analyses are **never** cached: they
//! describe what one request's budget allowed, not what the program is.
//!
//! With a persistence path configured, every insert appends one JSONL
//! record and a restarted server reloads the file, so warm verdicts
//! survive restarts.

use blazer_ir::json::{escape, fnv1a64, Json};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The canonical identity of one analysis request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    canonical: String,
}

impl CacheKey {
    /// Builds the key from the request's source text, target function, and
    /// the configuration fingerprint (domain, observer, budget caps, attack
    /// synthesis — everything that can change the response except thread
    /// width, which provably cannot).
    pub fn new(source: &str, function: Option<&str>, fingerprint: &str) -> CacheKey {
        CacheKey {
            canonical: format!(
                "fn={}\u{1}cfg={fingerprint}\u{1}src={source}",
                function.unwrap_or("")
            ),
        }
    }

    /// The 16-hex-digit content address reported to clients.
    pub fn address(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical.as_bytes()))
    }
}

/// Thread-safe verdict store with hit/miss counters and optional
/// append-only persistence.
#[derive(Debug)]
pub struct VerdictCache {
    entries: Mutex<HashMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    persist: Option<PathBuf>,
}

impl VerdictCache {
    /// An empty in-memory cache.
    pub fn in_memory() -> VerdictCache {
        VerdictCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist: None,
        }
    }

    /// A cache backed by `path`: existing records are loaded eagerly
    /// (unreadable or malformed lines are skipped — a torn final append
    /// must not brick the server), and every insert appends one record.
    pub fn persistent(path: PathBuf) -> VerdictCache {
        let mut entries = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                let Ok(record) = Json::parse(line) else { continue };
                let (Some(key), Some(response)) = (
                    record.get("key").and_then(Json::as_str),
                    record.get("response").and_then(Json::as_str),
                ) else {
                    continue;
                };
                entries.insert(key.to_string(), response.to_string());
            }
        }
        VerdictCache {
            entries: Mutex::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist: Some(path),
        }
    }

    /// Looks up a response body, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get(&key.canonical) {
            Some(body) => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Some(body.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Stores a response body and appends it to the persistence file, if
    /// any. Concurrent duplicate inserts (two identical submissions racing
    /// past the same miss) are benign: both compute the same body.
    pub fn insert(&self, key: &CacheKey, body: String) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.insert(key.canonical.clone(), body.clone()).is_none() {
            if let Some(path) = &self.persist {
                // Held under the entries lock so records never interleave.
                let record = format!(
                    "{{\"key\": \"{}\", \"address\": \"{}\", \"response\": \"{}\"}}\n",
                    escape(&key.canonical),
                    key.address(),
                    escape(&body),
                );
                let appended = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| f.write_all(record.as_bytes()));
                if let Err(e) = appended {
                    eprintln!("verdict cache: could not persist to {}: {e}", path.display());
                }
            }
        }
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Lookups that had to run the driver.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_configs_do_not_collide() {
        let a = CacheKey::new("fn f() { }", Some("f"), "domain=polyhedra");
        let b = CacheKey::new("fn f() { }", Some("f"), "domain=zone");
        assert_ne!(a, b);
        assert_ne!(a.address(), b.address());
        assert_eq!(a.address().len(), 16);
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = VerdictCache::in_memory();
        let key = CacheKey::new("src", None, "cfg");
        assert!(cache.get(&key).is_none());
        cache.insert(&key, "{\"ok\": true}".into());
        assert_eq!(cache.get(&key).as_deref(), Some("{\"ok\": true}"));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn persists_across_reload() {
        let path = std::env::temp_dir().join("blazer_serve_cache_test.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let cache = VerdictCache::persistent(path.clone());
            cache.insert(&CacheKey::new("s1", Some("f"), "c"), "{\"v\": \"safe\"}".into());
            cache.insert(&CacheKey::new("s2", Some("g"), "c"), "{\"v\": \"attack\"}".into());
        }
        // Corrupt tail (a torn append) must not poison the reload.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(b"{\"key\": \"torn"))
            .unwrap();
        let reloaded = VerdictCache::persistent(path.clone());
        assert_eq!(reloaded.len(), 2);
        assert_eq!(
            reloaded.get(&CacheKey::new("s1", Some("f"), "c")).as_deref(),
            Some("{\"v\": \"safe\"}")
        );
        let _ = std::fs::remove_file(&path);
    }
}
