//! The content-addressed verdict cache.
//!
//! A verdict is a pure function of `(source text, analysis configuration)`:
//! the driver is deterministic at every thread width, so two submissions
//! with the same canonical key *must* produce the same response. The cache
//! exploits that — a resubmission of an already-proven program is answered
//! in microseconds instead of re-running refinement.
//!
//! Keys are canonical strings (`function`, config fingerprint, and the
//! full source) — the reported *content address* is the FNV-1a hash of
//! that string, but lookups compare the canonical string itself, so a
//! hash collision can never serve the wrong verdict.
//!
//! Budget-exhausted and crashed analyses are **never** cached: they
//! describe what one request's budget allowed, not what the program is.
//!
//! ## Concurrency (see DESIGN.md §12)
//!
//! The store is a [`ShardedMap`]: the key's FNV-1a hash picks one of N
//! shards, and a **hit takes no exclusive lock** — one shard read lock
//! plus relaxed atomic stamp/counter bumps, so concurrent hits (the
//! fleet's dominant workload) proceed fully in parallel. Inserts
//! write-lock one shard only; eviction is per-shard approximate LRU
//! driven by the stamps, bounded by a soft global capacity
//! ([`VerdictCache::DEFAULT_MAX_ENTRIES`] by default).
//!
//! ## Persistence
//!
//! With a persistence path configured, every fresh insert appends one
//! JSONL record — **outside every shard lock**, behind the persistence
//! sink's own narrow mutex, so a disk stall can never delay a hit (only
//! sibling appends). A restarted server reloads the file, keeping the
//! most recent record per key and at most the cap's worth of newest
//! entries, then **compacts** it in place; the same compaction also runs
//! in the background of a long-lived server once the append log grows
//! past twice the capacity, so eviction-heavy workloads cannot grow the
//! log without bound between restarts. A torn trailing line (a crash
//! mid-append) is skipped on reload and dropped by compaction.

use crate::sync::{default_shard_count, fnv1a64, shard_index, ShardedMap};
use blazer_ir::json::{escape, Json};
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The canonical identity of one analysis request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    canonical: String,
}

impl CacheKey {
    /// Builds the key from the request's source text, target function, and
    /// the configuration fingerprint (domain, observer, budget caps, attack
    /// synthesis — everything that can change the response except thread
    /// width, which provably cannot).
    pub fn new(source: &str, function: Option<&str>, fingerprint: &str) -> CacheKey {
        CacheKey {
            canonical: format!(
                "fn={}\u{1}cfg={fingerprint}\u{1}src={source}",
                function.unwrap_or("")
            ),
        }
    }

    /// The 16-hex-digit content address reported to clients.
    pub fn address(&self) -> String {
        format!("{:016x}", self.hash())
    }

    /// The FNV-1a 64 hash of the canonical string — the content address,
    /// and the hash sharded structures route by.
    pub fn hash(&self) -> u64 {
        fnv1a64(self.canonical.as_bytes())
    }

    /// The full canonical string (the exact-compare identity).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

// ------------------------------------------------------------ single-flight

/// The finished result of one coalesced analysis run, shared with every
/// request that joined the flight while it was in the air.
#[derive(Debug, Clone)]
pub struct FlightOutcome {
    /// HTTP status the leader produced.
    pub status: u16,
    /// Raw JSON body (before per-request `cached` annotation).
    pub body: String,
}

#[derive(Debug, Default)]
struct Flight {
    result: Mutex<Option<FlightOutcome>>,
    ready: Condvar,
}

/// What [`SingleFlight::join`] made of a request.
pub enum Joined<'a> {
    /// First in: this request must run the analysis and publish the result
    /// through [`FlightToken::complete`].
    Leader(FlightToken<'a>),
    /// An identical request was already in the air; this is its result.
    Follower(FlightOutcome),
}

/// The leader's obligation to publish. If the token is dropped without
/// [`FlightToken::complete`] (a panic escaping the leader's path), waiting
/// followers are released with a `500` instead of blocking forever.
pub struct FlightToken<'a> {
    owner: &'a SingleFlight,
    shard: usize,
    key: String,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightToken<'_> {
    /// Publishes the leader's result to every follower and retires the
    /// flight so later identical requests start fresh (or hit the cache).
    pub fn complete(mut self, outcome: FlightOutcome) {
        self.publish(outcome);
    }

    fn publish(&mut self, outcome: FlightOutcome) {
        if self.published {
            return;
        }
        self.published = true;
        *self.flight.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.flight.ready.notify_all();
        self.owner.shards[self.shard].lock().unwrap_or_else(|e| e.into_inner()).remove(&self.key);
    }
}

impl Drop for FlightToken<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish(FlightOutcome {
                status: 500,
                body: "{\"ok\": false, \"error\": \"analysis abandoned by its worker\"}"
                    .to_string(),
            });
        }
    }
}

/// Coalesces concurrent identical submissions onto one driver run.
///
/// Sits *in front of* the verdict cache: without it, N simultaneous POSTs
/// of the same uncached program all miss and all run the full analysis (a
/// cache stampede — the cache only helps once somebody has finished). With
/// it, the first request becomes the flight's *leader*; the other N−1
/// block on its condvar and are answered from the leader's single run.
/// Non-cacheable outcomes (`422`/`500`) are shared with concurrent
/// followers too — they asked the exact same question at the same time —
/// but are still never inserted into the cache.
///
/// The flight table is sharded the same way as the verdict cache (the
/// key's FNV-1a hash picks the shard), so joins for unrelated keys never
/// contend on one registry mutex; each join locks its own shard only, and
/// the leader/follower Condvar protocol and the poison-on-drop token are
/// unchanged.
#[derive(Debug)]
pub struct SingleFlight {
    shards: Box<[FlightShard]>,
}

/// One shard of the flight registry: the in-flight leaders whose keys
/// hash here.
type FlightShard = Mutex<HashMap<String, Arc<Flight>>>;

impl Default for SingleFlight {
    fn default() -> SingleFlight {
        SingleFlight::new()
    }
}

impl SingleFlight {
    /// An empty flight registry with the default shard count.
    pub fn new() -> SingleFlight {
        SingleFlight::with_shards(default_shard_count())
    }

    /// An empty flight registry with `shards` shards (rounded up to a
    /// power of two).
    pub fn with_shards(shards: usize) -> SingleFlight {
        let shards = shards.max(1).next_power_of_two();
        SingleFlight { shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// Joins the flight for `key`: the first caller becomes the leader and
    /// returns immediately; every other caller blocks until the leader
    /// publishes, then gets the shared outcome.
    pub fn join(&self, key: &CacheKey) -> Joined<'_> {
        let shard = shard_index(key.hash(), self.shards.len());
        let flight = {
            let mut flights = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
            match flights.get(key.canonical()) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight::default());
                    flights.insert(key.canonical().to_string(), Arc::clone(&flight));
                    return Joined::Leader(FlightToken {
                        owner: self,
                        shard,
                        key: key.canonical().to_string(),
                        flight,
                        published: false,
                    });
                }
            }
        };
        let mut slot = flight.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*slot {
                Some(outcome) => return Joined::Follower(outcome.clone()),
                None => slot = flight.ready.wait(slot).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    /// Number of flights currently in the air (tests/metrics).
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }
}

// ------------------------------------------------------------- persistence

/// Where appended records go: the JSONL file, or an arbitrary writer (the
/// instrumentation hook the slow/failing-append tests use).
enum Sink {
    File {
        path: PathBuf,
        /// Kept open across appends; reopened after a compaction replaces
        /// the inode.
        handle: Option<File>,
    },
    Writer(Box<dyn Write + Send>),
}

/// Everything behind the persistence mutex — deliberately narrow: one
/// append (or one compaction) at a time, never a map operation.
struct Persist {
    sink: Sink,
    /// Appends since the last compaction; when this outgrows twice the
    /// capacity the log is rewritten from the live entries.
    appended: u64,
}

impl std::fmt::Debug for Persist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Sink::File { path, .. } => write!(f, "Persist({})", path.display()),
            Sink::Writer(_) => write!(f, "Persist(<writer>)"),
        }
    }
}

/// Thread-safe verdict store with hit/miss/eviction counters, a sharded
/// lock-light read path, a soft entry cap, and optional append-only
/// persistence (compacted on reload and periodically in place).
#[derive(Debug)]
pub struct VerdictCache {
    map: ShardedMap<String>,
    hits: AtomicU64,
    misses: AtomicU64,
    persist: Option<Mutex<Persist>>,
}

impl VerdictCache {
    /// Default retention cap. Each entry is one source program plus one
    /// JSON response (a few KiB); thousands fit comfortably while still
    /// bounding a server fed an endless stream of unique submissions.
    pub const DEFAULT_MAX_ENTRIES: usize = 4096;

    /// An empty in-memory cache with the default cap and shard count.
    pub fn in_memory() -> VerdictCache {
        VerdictCache::in_memory_with_cap(VerdictCache::DEFAULT_MAX_ENTRIES)
    }

    /// An empty in-memory cache retaining about `max_entries` verdicts
    /// (a zero cap is promoted to one: the entry being inserted).
    pub fn in_memory_with_cap(max_entries: usize) -> VerdictCache {
        VerdictCache::in_memory_with(max_entries, default_shard_count())
    }

    /// An empty in-memory cache with an explicit shard count. One shard
    /// gives exact LRU (the sequential tests pin this); more shards trade
    /// eviction exactness for a contention-free read path.
    pub fn in_memory_with(max_entries: usize, shards: usize) -> VerdictCache {
        VerdictCache {
            map: ShardedMap::new(max_entries, shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist: None,
        }
    }

    /// An in-memory cache whose appends go to an arbitrary writer instead
    /// of a file — the instrumentation hook for proving that a slow or
    /// failing append can never delay a read (no reload, no compaction).
    pub fn with_append_sink(
        sink: Box<dyn Write + Send>,
        max_entries: usize,
        shards: usize,
    ) -> VerdictCache {
        VerdictCache {
            map: ShardedMap::new(max_entries, shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist: Some(Mutex::new(Persist { sink: Sink::Writer(sink), appended: 0 })),
        }
    }

    /// A cache backed by `path` with the default cap: existing records are
    /// loaded eagerly and every insert appends one record.
    pub fn persistent(path: PathBuf) -> VerdictCache {
        VerdictCache::persistent_with_cap(path, VerdictCache::DEFAULT_MAX_ENTRIES)
    }

    /// A cache backed by `path` retaining about `max_entries` verdicts,
    /// with the default shard count.
    pub fn persistent_with_cap(path: PathBuf, max_entries: usize) -> VerdictCache {
        VerdictCache::persistent_with(path, max_entries, default_shard_count())
    }

    /// A cache backed by `path` with explicit cap and shard count.
    ///
    /// Reload keeps the newest record per key, newest-first up to the cap
    /// (unreadable or malformed lines — a torn final append — are skipped;
    /// they must not brick the server), then rewrites the file from the
    /// survivors so duplicates, evictees, and the torn line don't replay
    /// on every future restart.
    pub fn persistent_with(path: PathBuf, max_entries: usize, shards: usize) -> VerdictCache {
        let max_entries = max_entries.max(1);
        let mut records: Vec<(String, String)> = Vec::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                let Ok(record) = Json::parse(line) else { continue };
                let (Some(key), Some(response)) = (
                    record.get("key").and_then(Json::as_str),
                    record.get("response").and_then(Json::as_str),
                ) else {
                    continue;
                };
                records.push((key.to_string(), response.to_string()));
            }
        }
        // Newest record per key wins; newest keys win the cap. Walking the
        // log backwards makes both "first seen survives".
        let mut seen: HashSet<&str> = HashSet::new();
        let mut survivors: Vec<&(String, String)> = Vec::new();
        for pair in records.iter().rev() {
            if survivors.len() == max_entries {
                break;
            }
            if seen.insert(pair.0.as_str()) {
                survivors.push(pair);
            }
        }
        survivors.reverse();
        compact(&path, &survivors);
        let map = ShardedMap::new(max_entries, shards);
        for (key, response) in survivors {
            // Oldest first: insertion order doubles as the recency order,
            // so a reloaded cache evicts in the same sequence the flushed
            // one would have. Survivors fit the global cap by
            // construction, so no insert here can trigger an eviction.
            map.insert(key, response.clone());
        }
        VerdictCache {
            map,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist: Some(Mutex::new(Persist {
                sink: Sink::File { path, handle: None },
                appended: 0,
            })),
        }
    }

    /// Looks up a response body, counting the hit or miss and refreshing
    /// the entry's recency. **No exclusive lock anywhere on this path**:
    /// one shard read lock plus atomic counter bumps (see
    /// [`ShardedMap::get`]) — concurrent hits never serialize, and a
    /// stalled persistence append never delays them.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        match self.map.get(&key.canonical) {
            Some(body) => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Some(body)
            }
            None => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Stores a response body, evicting a least-recently-used entry of the
    /// key's shard when the soft cap is exceeded, then appends the record
    /// to the persistence sink, if any — **after** the shard lock is
    /// released, so persistence I/O (and its stalls) happen outside every
    /// map lock. Concurrent duplicate inserts (two identical submissions
    /// racing past the same miss) are benign: both compute the same body.
    ///
    /// Evictions only drop the in-memory entry; their stale log records
    /// are swept by the periodic compaction or the next reload.
    pub fn insert(&self, key: &CacheKey, body: String) {
        if !self.map.insert(&key.canonical, body.clone()) {
            // A replacement: same key, same (deterministic) body — the log
            // already has the record.
            return;
        }
        let Some(persist) = &self.persist else { return };
        let mut persist = persist.lock().unwrap_or_else(|e| e.into_inner());
        let Persist { sink, appended } = &mut *persist;
        *appended += 1;
        let line = record_line(&key.canonical, &body);
        match sink {
            Sink::Writer(w) => {
                if let Err(e) = w.write_all(line.as_bytes()).and_then(|()| w.flush()) {
                    eprintln!("verdict cache: could not persist record: {e}");
                }
            }
            Sink::File { path, handle } => {
                if handle.is_none() {
                    match std::fs::OpenOptions::new().create(true).append(true).open(&*path) {
                        Ok(file) => *handle = Some(file),
                        Err(e) => {
                            eprintln!(
                                "verdict cache: could not persist to {}: {e}",
                                path.display()
                            );
                            return;
                        }
                    }
                }
                // One write per record keeps the crash-tolerant JSONL
                // framing: a crash tears at most the final line, which
                // reload skips.
                if let Err(e) = handle.as_mut().expect("opened above").write_all(line.as_bytes()) {
                    eprintln!("verdict cache: could not persist to {}: {e}", path.display());
                    *handle = None;
                    return;
                }
                // Eviction-heavy workloads append far more records than
                // stay live: once the log doubles the capacity, rewrite it
                // from the live entries. Holds only the persistence mutex
                // plus shard *read* locks — hits are never delayed.
                if *appended >= 2 * self.map.capacity() as u64 {
                    *appended = 0;
                    let pairs = self.live_entries_lru_first();
                    let survivors: Vec<&(String, String)> = pairs.iter().collect();
                    compact(path, &survivors);
                    *handle = None; // the rename replaced the inode
                }
            }
        }
    }

    /// The live entries, least-recently-used first (compaction/flush
    /// order, so a reload reconstructs the same eviction sequence).
    fn live_entries_lru_first(&self) -> Vec<(String, String)> {
        let mut entries = self.map.entries();
        entries.sort_by_key(|(_, _, stamp)| *stamp);
        entries.into_iter().map(|(k, v, _)| (k, v)).collect()
    }

    /// Flushes the persistence file to exactly the live in-memory entries:
    /// the graceful-shutdown path, which leaves a compact log behind
    /// instead of an append-only one that replays duplicates and evictees
    /// on the next start. A no-op for in-memory caches; failure is
    /// non-fatal (the append-only log still exists).
    pub fn flush(&self) {
        let Some(persist) = &self.persist else { return };
        let mut persist = persist.lock().unwrap_or_else(|e| e.into_inner());
        let Sink::File { path, handle } = &mut persist.sink else { return };
        let pairs = self.live_entries_lru_first();
        let survivors: Vec<&(String, String)> = pairs.iter().collect();
        compact(path, &survivors);
        *handle = None;
        persist.appended = 0;
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Lookups that had to run the driver.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }

    /// Entries evicted to stay within the cap.
    pub fn evictions(&self) -> u64 {
        self.map.evictions()
    }

    /// Number of shards the store spreads over.
    pub fn shards(&self) -> usize {
        self.map.shard_count()
    }

    /// The fraction of lookups served from the cache, in `[0, 1]`
    /// (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits() as f64, self.misses() as f64);
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }
}

/// One JSONL record, newline-terminated.
fn record_line(canonical: &str, body: &str) -> String {
    format!(
        "{{\"key\": \"{}\", \"address\": \"{:016x}\", \"response\": \"{}\"}}\n",
        escape(canonical),
        fnv1a64(canonical.as_bytes()),
        escape(body),
    )
}

/// Rewrites the persistence file to exactly `survivors`, via a sibling
/// temp file and rename so a crash mid-compaction leaves either the old
/// or the new log, never a half-written one. Failure is non-fatal: the
/// server runs on, merely without the compaction.
fn compact(path: &PathBuf, survivors: &[&(String, String)]) {
    if !path.exists() && survivors.is_empty() {
        return;
    }
    let mut text = String::new();
    for (key, response) in survivors {
        text.push_str(&record_line(key, response));
    }
    let tmp = path.with_extension("compact.tmp");
    let written = std::fs::write(&tmp, text.as_bytes()).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = written {
        eprintln!("verdict cache: could not compact {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_configs_do_not_collide() {
        let a = CacheKey::new("fn f() { }", Some("f"), "domain=polyhedra");
        let b = CacheKey::new("fn f() { }", Some("f"), "domain=zone");
        assert_ne!(a, b);
        assert_ne!(a.address(), b.address());
        assert_eq!(a.address().len(), 16);
        assert_eq!(a.address(), format!("{:016x}", a.hash()));
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = VerdictCache::in_memory();
        let key = CacheKey::new("src", None, "cfg");
        assert!(cache.get(&key).is_none());
        cache.insert(&key, "{\"ok\": true}".into());
        assert_eq!(cache.get(&key).as_deref(), Some("{\"ok\": true}"));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(cache.hit_rate(), 0.5);
        assert!(cache.shards() >= 4);
    }

    #[test]
    fn evicts_least_recently_used_at_cap() {
        // One shard pins the exact-LRU behavior; multi-shard eviction
        // exactness is covered by the soft-cap invariant tests.
        let cache = VerdictCache::in_memory_with(2, 1);
        let (a, b, c) = (
            CacheKey::new("a", None, ""),
            CacheKey::new("b", None, ""),
            CacheKey::new("c", None, ""),
        );
        cache.insert(&a, "ra".into());
        cache.insert(&b, "rb".into());
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(&a).is_some());
        cache.insert(&c, "rc".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some(), "recently-used entry must survive");
        assert!(cache.get(&b).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.evictions(), 1);
        // Re-inserting an existing key neither grows nor evicts.
        cache.insert(&c, "rc".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
    }

    #[test]
    fn single_flight_coalesces_concurrent_joiners() {
        use std::sync::atomic::AtomicUsize;
        let sf = SingleFlight::new();
        let key = CacheKey::new("src", None, "cfg");
        let leads = AtomicUsize::new(0);
        let follows = AtomicUsize::new(0);
        let gate = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    gate.wait();
                    match sf.join(&key) {
                        Joined::Leader(token) => {
                            leads.fetch_add(1, Ordering::SeqCst);
                            // Linger so the siblings pile up as followers.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            token.complete(FlightOutcome { status: 200, body: "r".into() });
                        }
                        Joined::Follower(outcome) => {
                            follows.fetch_add(1, Ordering::SeqCst);
                            assert_eq!((outcome.status, outcome.body.as_str()), (200, "r"));
                        }
                    }
                });
            }
        });
        // Exactly one leader; everyone else either followed the live
        // flight or (having joined after retirement) led a fresh one —
        // with the 50ms linger the race window for the latter is tiny,
        // but the invariant that matters is leaders + followers == 8.
        assert_eq!(leads.load(Ordering::SeqCst) + follows.load(Ordering::SeqCst), 8);
        assert!(leads.load(Ordering::SeqCst) >= 1);
        assert_eq!(sf.in_flight(), 0, "completed flights retire");
    }

    #[test]
    fn single_flight_shards_keys_independently() {
        // Leaders for distinct keys coexist without contending: every key
        // gets its own flight regardless of which shard it lands in.
        let sf = SingleFlight::with_shards(4);
        let keys: Vec<CacheKey> =
            (0..16).map(|i| CacheKey::new(&format!("src{i}"), None, "cfg")).collect();
        let tokens: Vec<FlightToken> = keys
            .iter()
            .map(|k| match sf.join(k) {
                Joined::Leader(t) => t,
                Joined::Follower(_) => panic!("first joiner of a distinct key must lead"),
            })
            .collect();
        assert_eq!(sf.in_flight(), 16);
        for (token, _key) in tokens.into_iter().zip(&keys) {
            token.complete(FlightOutcome { status: 200, body: "r".into() });
        }
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn single_flight_releases_followers_when_the_leader_is_dropped() {
        let sf = SingleFlight::new();
        let key = CacheKey::new("src", None, "cfg");
        let Joined::Leader(token) = sf.join(&key) else { panic!("first joiner leads") };
        std::thread::scope(|scope| {
            let follower = scope.spawn(|| match sf.join(&key) {
                Joined::Follower(outcome) => outcome.status,
                Joined::Leader(_) => panic!("flight is already in the air"),
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(token); // leader dies without completing
            assert_eq!(follower.join().unwrap(), 500);
        });
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn single_flight_retires_flights_for_reuse() {
        let sf = SingleFlight::new();
        let key = CacheKey::new("src", None, "cfg");
        let Joined::Leader(first) = sf.join(&key) else { panic!("leads") };
        first.complete(FlightOutcome { status: 200, body: "a".into() });
        // After completion the next identical submission is a fresh flight
        // (the verdict cache, not the flight registry, serves repeats).
        assert!(matches!(sf.join(&key), Joined::Leader(_)));
    }

    #[test]
    fn persists_across_reload() {
        let path = std::env::temp_dir().join("blazer_serve_cache_test.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let cache = VerdictCache::persistent(path.clone());
            cache.insert(&CacheKey::new("s1", Some("f"), "c"), "{\"v\": \"safe\"}".into());
            cache.insert(&CacheKey::new("s2", Some("g"), "c"), "{\"v\": \"attack\"}".into());
        }
        // Corrupt tail (a torn append) must not poison the reload.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(b"{\"key\": \"torn"))
            .unwrap();
        let reloaded = VerdictCache::persistent(path.clone());
        assert_eq!(reloaded.len(), 2);
        assert_eq!(
            reloaded.get(&CacheKey::new("s1", Some("f"), "c")).as_deref(),
            Some("{\"v\": \"safe\"}")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_respects_cap_and_compacts() {
        let path = std::env::temp_dir().join("blazer_serve_cache_compact_test.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let cache = VerdictCache::persistent_with_cap(path.clone(), 10);
            for i in 0..5 {
                cache.insert(&CacheKey::new(&format!("s{i}"), None, "c"), format!("r{i}"));
            }
        }
        // A duplicate record for an old key (as an eviction + reinsert
        // leaves behind), some garbage, and a torn final append: the
        // duplicate's newest body must win, the rest must be skipped.
        let dup = CacheKey::new("s0", None, "c");
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                f.write_all(record_line(&dup.canonical, "r0-updated").as_bytes())?;
                f.write_all(b"not json at all\n{\"key\": \"torn")
            })
            .unwrap();
        // Reload with a cap of 3: only the newest three unique keys
        // (s3, s4, and the re-appended s0) survive, and the file is
        // compacted down to exactly those.
        let reloaded = VerdictCache::persistent_with_cap(path.clone(), 3);
        assert_eq!(reloaded.len(), 3);
        assert!(reloaded.get(&CacheKey::new("s1", None, "c")).is_none());
        assert!(reloaded.get(&CacheKey::new("s2", None, "c")).is_none());
        assert_eq!(reloaded.get(&dup).as_deref(), Some("r0-updated"));
        for i in 3..5 {
            assert_eq!(
                reloaded.get(&CacheKey::new(&format!("s{i}"), None, "c")).as_deref(),
                Some(format!("r{i}").as_str()),
            );
        }
        let compacted = std::fs::read_to_string(&path).unwrap();
        assert_eq!(compacted.lines().count(), 3, "compaction must rewrite the log");
        assert!(!compacted.contains("torn"));
        assert!(compacted.contains("r0-updated"));
        assert!(!compacted.contains("\"r0\""));
        // And the compacted file reloads identically.
        let again = VerdictCache::persistent_with_cap(path.clone(), 3);
        assert_eq!(again.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn periodic_compaction_bounds_the_log() {
        let path = std::env::temp_dir().join("blazer_serve_cache_periodic_test.jsonl");
        let _ = std::fs::remove_file(&path);
        // Cap 4, one shard: every fresh insert past four appends a record
        // and evicts an entry; at 2×cap appends the log self-compacts.
        let cache = VerdictCache::persistent_with(path.clone(), 4, 1);
        for i in 0..64 {
            cache.insert(&CacheKey::new(&format!("s{i}"), None, "c"), format!("r{i}"));
        }
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(
            lines <= 2 * 4 + 4,
            "append log must be periodically compacted, found {lines} lines"
        );
        // The live entries survive: the newest four keys are the cache.
        assert_eq!(cache.len(), 4);
        drop(cache);
        let reloaded = VerdictCache::persistent_with(path.clone(), 4, 1);
        assert_eq!(reloaded.get(&CacheKey::new("s63", None, "c")).as_deref(), Some("r63"));
        let _ = std::fs::remove_file(&path);
    }
}
