//! Shared JSON serialization of analysis outcomes.
//!
//! One [`AnalysisOutcome`] → [`Json`] conversion, used verbatim by the
//! HTTP service's `POST /analyze` responses and the CLI's `--json` mode,
//! so the two surfaces can never drift apart.

use blazer_core::{AnalysisOutcome, BudgetReport, Verdict};
use blazer_ir::json::Json;
use blazer_ir::Program;

/// Serializes a full outcome. `wall_s` is the caller-observed wall-clock
/// time for the whole request (compile + analysis), distinct from the
/// driver's own phase timings.
pub fn outcome_json(program: &Program, outcome: &AnalysisOutcome, wall_s: f64) -> Json {
    let attack = match &outcome.verdict {
        Verdict::Attack(spec) => Json::obj([
            ("trail_a", Json::from(spec.trail_a.to_string())),
            ("trail_b", Json::from(spec.trail_b.to_string())),
            ("bounds_a", bounds_pair(&spec.bounds_a)),
            ("bounds_b", bounds_pair(&spec.bounds_b)),
        ]),
        _ => Json::Null,
    };
    let trails = Json::Arr(
        outcome
            .tree
            .leaves()
            .into_iter()
            .map(|i| {
                let node = outcome.tree.node(i);
                Json::obj([
                    ("node", Json::from(i)),
                    ("trail", Json::from(node.trail.to_string())),
                    ("status", Json::from(node.status.to_string())),
                    (
                        "lower",
                        node.bounds
                            .as_ref()
                            .and_then(|b| b.lower.as_ref())
                            .map(|e| e.to_string())
                            .into(),
                    ),
                    (
                        "upper",
                        node.bounds
                            .as_ref()
                            .and_then(|b| b.upper.as_ref())
                            .map(|e| e.to_string())
                            .into(),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("function", Json::from(outcome.function.clone())),
        ("verdict", Json::from(outcome.verdict.code())),
        ("unknown_reason", outcome.verdict.unknown_reason().map(|r| r.to_string()).into()),
        ("n_blocks", Json::from(outcome.n_blocks)),
        ("safety_s", Json::secs(outcome.safety_time.as_secs_f64())),
        ("attack_s", outcome.attack_time.map(|d| Json::secs(d.as_secs_f64())).into()),
        ("wall_s", Json::secs(wall_s)),
        ("trails", trails),
        ("attack", attack),
        ("degradations", Json::arr(outcome.degradations.iter().map(|d| d.to_string()))),
        (
            "seeds",
            Json::obj([
                ("trails_seeded", Json::from(outcome.seed_stats.trails_seeded)),
                ("trails_unseeded", Json::from(outcome.seed_stats.trails_unseeded)),
                ("seeds_rejected", Json::from(outcome.seed_stats.seeds_rejected)),
                ("seeded_passes", Json::from(outcome.seed_stats.seeded_passes)),
                ("unseeded_passes", Json::from(outcome.seed_stats.unseeded_passes)),
            ]),
        ),
        ("budget", budget_json(&outcome.budget_report)),
        ("tree", Json::from(outcome.render_tree(program))),
    ])
}

fn bounds_pair(bounds: &(blazer_bounds::CostExpr, Option<blazer_bounds::CostExpr>)) -> Json {
    Json::obj([
        ("lower", Json::from(bounds.0.to_string())),
        ("upper", bounds.1.as_ref().map(|e| e.to_string()).into()),
    ])
}

/// Serializes what one analysis consumed against its budget.
pub fn budget_json(report: &BudgetReport) -> Json {
    Json::obj([
        ("lp_calls", Json::from(report.lp_calls)),
        ("fixpoint_passes", Json::from(report.fixpoint_passes)),
        ("refinement_steps", Json::from(report.refinement_steps)),
        ("overflow_events", Json::from(report.overflow_events)),
        ("elapsed_s", Json::secs(report.elapsed.as_secs_f64())),
        ("exhausted", report.exhausted.map(|r| r.to_string()).into()),
        ("notes", Json::arr(report.degradations.iter().map(String::as_str))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_core::{Blazer, Config};

    #[test]
    fn outcome_json_covers_safe_and_attack() {
        let safe_src = "fn f(h: int #high) { if (h > 0) { tick(2); } else { tick(2); } }";
        let attack_src = "fn f(h: int #high) { if (h > 0) { tick(900); } else { tick(1); } }";
        for (src, verdict, has_attack) in [(safe_src, "safe", false), (attack_src, "attack", true)]
        {
            let program = blazer_lang::compile(src).unwrap();
            let outcome = Blazer::new(Config::microbench()).analyze(&program, "f").unwrap();
            let doc = outcome_json(&program, &outcome, 0.5);
            assert_eq!(doc.get("verdict").and_then(Json::as_str), Some(verdict));
            assert_eq!(doc.get("attack").map(Json::is_null), Some(!has_attack));
            assert_eq!(doc.get("wall_s").and_then(Json::as_f64), Some(0.5));
            assert!(doc.get("trails").and_then(Json::as_arr).is_some_and(|t| !t.is_empty()));
            // The seeding counters round-trip; the initial trail is never
            // seeded (it has no parent), so at least one from-⊥ run shows.
            assert!(doc
                .get("seeds")
                .and_then(|s| s.get("trails_unseeded"))
                .and_then(Json::as_u64)
                .is_some_and(|n| n >= 1));
            // The document is valid JSON end to end.
            let text = doc.to_string();
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }
}
