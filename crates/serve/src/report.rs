//! Shared JSON serialization of analysis outcomes.
//!
//! One [`AnalysisOutcome`] → [`Json`] conversion, used verbatim by the
//! HTTP service's `POST /analyze` responses and the CLI's `--json` mode,
//! so the two surfaces can never drift apart.

use blazer_core::{AnalysisOutcome, BudgetReport, Verdict};
use blazer_ir::json::Json;
use blazer_ir::Program;
use blazer_portfolio::{Backend, BackendCost, PortfolioReport};

/// Serializes a full outcome. `wall_s` is the caller-observed wall-clock
/// time for the whole request (compile + analysis), distinct from the
/// driver's own phase timings.
pub fn outcome_json(program: &Program, outcome: &AnalysisOutcome, wall_s: f64) -> Json {
    let attack = match &outcome.verdict {
        Verdict::Attack(spec) => Json::obj([
            ("trail_a", Json::from(spec.trail_a.to_string())),
            ("trail_b", Json::from(spec.trail_b.to_string())),
            ("bounds_a", bounds_pair(&spec.bounds_a)),
            ("bounds_b", bounds_pair(&spec.bounds_b)),
        ]),
        _ => Json::Null,
    };
    let trails = Json::Arr(
        outcome
            .tree
            .leaves()
            .into_iter()
            .map(|i| {
                let node = outcome.tree.node(i);
                Json::obj([
                    ("node", Json::from(i)),
                    ("trail", Json::from(node.trail.to_string())),
                    ("status", Json::from(node.status.to_string())),
                    (
                        "lower",
                        node.bounds
                            .as_ref()
                            .and_then(|b| b.lower.as_ref())
                            .map(|e| e.to_string())
                            .into(),
                    ),
                    (
                        "upper",
                        node.bounds
                            .as_ref()
                            .and_then(|b| b.upper.as_ref())
                            .map(|e| e.to_string())
                            .into(),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("function", Json::from(outcome.function.clone())),
        ("verdict", Json::from(outcome.verdict.code())),
        ("cost_model", outcome.cost_model.to_json()),
        ("unknown_reason", outcome.verdict.unknown_reason().map(|r| r.to_string()).into()),
        ("n_blocks", Json::from(outcome.n_blocks)),
        ("safety_s", Json::secs(outcome.safety_time.as_secs_f64())),
        ("attack_s", outcome.attack_time.map(|d| Json::secs(d.as_secs_f64())).into()),
        ("wall_s", Json::secs(wall_s)),
        ("trails", trails),
        ("attack", attack),
        ("degradations", Json::arr(outcome.degradations.iter().map(|d| d.to_string()))),
        (
            "seeds",
            Json::obj([
                ("trails_seeded", Json::from(outcome.seed_stats.trails_seeded)),
                ("trails_unseeded", Json::from(outcome.seed_stats.trails_unseeded)),
                ("seeds_rejected", Json::from(outcome.seed_stats.seeds_rejected)),
                ("seeded_passes", Json::from(outcome.seed_stats.seeded_passes)),
                ("unseeded_passes", Json::from(outcome.seed_stats.unseeded_passes)),
            ]),
        ),
        (
            "antichain",
            Json::obj([
                (
                    "macro_states_explored",
                    Json::from(outcome.antichain_stats.macro_states_explored),
                ),
                ("antichain_prunes", Json::from(outcome.antichain_stats.antichain_prunes)),
                ("classic_fallbacks", Json::from(outcome.antichain_stats.classic_fallbacks)),
            ]),
        ),
        ("budget", budget_json(&outcome.budget_report)),
        ("tree", Json::from(outcome.render_tree(program))),
    ])
}

fn bounds_pair(bounds: &(blazer_bounds::CostExpr, Option<blazer_bounds::CostExpr>)) -> Json {
    Json::obj([
        ("lower", Json::from(bounds.0.to_string())),
        ("upper", bounds.1.as_ref().map(|e| e.to_string()).into()),
    ])
}

/// Sets `key` to `value`, replacing an existing member or appending.
fn set(pairs: &mut Vec<(String, Json)>, key: &str, value: Json) {
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => pairs.push((key.to_string(), value)),
    }
}

fn backend_cost_json(cost: &BackendCost) -> Json {
    Json::obj([
        ("wall_s", Json::secs(cost.wall.as_secs_f64())),
        ("lp_calls", Json::from(cost.lp_calls)),
        ("fixpoint_passes", Json::from(cost.fixpoint_passes)),
        ("completed", Json::Bool(cost.completed)),
        ("crashed", Json::Bool(cost.crashed)),
    ])
}

/// Serializes a portfolio race: the winning outcome's document (when the
/// decomposition produced one) extended with the race verdict, the
/// quantified leakage, and per-backend cost attribution.
pub fn portfolio_json(
    program: &Program,
    function: &str,
    report: &PortfolioReport,
    wall_s: f64,
) -> Json {
    let mut pairs = match &report.outcome {
        Some(outcome) => {
            let Json::Obj(pairs) = outcome_json(program, outcome, wall_s) else {
                unreachable!("outcome_json returns an object");
            };
            pairs
        }
        // The decomposition crashed but the baseline soundly verified:
        // there is no partition to render, only the race verdict.
        None => vec![
            ("function".to_string(), Json::from(function)),
            ("wall_s".to_string(), Json::secs(wall_s)),
        ],
    };
    // The race's verdict overrides the decomposition's own: a baseline win
    // turns a revoked/unfinished decomposition `unknown` into `safe`.
    set(&mut pairs, "verdict", Json::from(report.verdict.code()));
    set(
        &mut pairs,
        "unknown_reason",
        report.verdict.unknown_reason().map(|r| r.to_string()).into(),
    );
    // The decomposition's budget snapshot is superseded by the whole
    // race's final ledger totals.
    set(&mut pairs, "budget", budget_json(&report.budget_report));
    set(&mut pairs, "backend", Json::from(Backend::Portfolio.as_str()));
    set(&mut pairs, "winner", report.winner.map(|b| b.as_str().to_string()).into());
    set(&mut pairs, "leakage_bits", Json::Num(report.leakage.bits));
    set(
        &mut pairs,
        "leakage",
        Json::obj([
            ("bits", Json::Num(report.leakage.bits)),
            ("classes", Json::from(report.leakage.classes)),
            ("feasible_leaves", Json::from(report.leakage.feasible_leaves)),
            ("wide_leaves", Json::from(report.leakage.wide_leaves)),
            ("max_gap", report.leakage.max_gap.map(Json::Num).unwrap_or(Json::Null)),
        ]),
    );
    set(
        &mut pairs,
        "portfolio",
        Json::obj([
            ("winner", report.winner.map(|b| b.as_str().to_string()).into()),
            ("revoked", Json::Bool(report.revoked)),
            ("selfcomp_verified", report.selfcomp_verified.map(Json::Bool).unwrap_or(Json::Null)),
            ("decomp", backend_cost_json(&report.decomp)),
            ("selfcomp", backend_cost_json(&report.selfcomp)),
            ("race_wall_s", Json::secs(report.wall.as_secs_f64())),
        ]),
    );
    Json::Obj(pairs)
}

/// Serializes what one analysis consumed against its budget.
pub fn budget_json(report: &BudgetReport) -> Json {
    Json::obj([
        ("lp_calls", Json::from(report.lp_calls)),
        ("fixpoint_passes", Json::from(report.fixpoint_passes)),
        ("refinement_steps", Json::from(report.refinement_steps)),
        ("overflow_events", Json::from(report.overflow_events)),
        ("elapsed_s", Json::secs(report.elapsed.as_secs_f64())),
        ("exhausted", report.exhausted.map(|r| r.to_string()).into()),
        ("notes", Json::arr(report.degradations.iter().map(String::as_str))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_core::{Blazer, Config};

    #[test]
    fn outcome_json_covers_safe_and_attack() {
        let safe_src = "fn f(h: int #high) { if (h > 0) { tick(2); } else { tick(2); } }";
        let attack_src = "fn f(h: int #high) { if (h > 0) { tick(900); } else { tick(1); } }";
        for (src, verdict, has_attack) in [(safe_src, "safe", false), (attack_src, "attack", true)]
        {
            let program = blazer_lang::compile(src).unwrap();
            let outcome = Blazer::new(Config::microbench()).analyze(&program, "f").unwrap();
            let doc = outcome_json(&program, &outcome, 0.5);
            assert_eq!(doc.get("verdict").and_then(Json::as_str), Some(verdict));
            assert_eq!(doc.get("attack").map(Json::is_null), Some(!has_attack));
            assert_eq!(doc.get("wall_s").and_then(Json::as_f64), Some(0.5));
            assert!(doc.get("trails").and_then(Json::as_arr).is_some_and(|t| !t.is_empty()));
            // The seeding counters round-trip; the initial trail is never
            // seeded (it has no parent), so at least one from-⊥ run shows.
            assert!(doc
                .get("seeds")
                .and_then(|s| s.get("trails_unseeded"))
                .and_then(Json::as_u64)
                .is_some_and(|n| n >= 1));
            // The antichain counters are present (exact values depend on
            // the engine mode, so only shape is asserted).
            for key in ["macro_states_explored", "antichain_prunes", "classic_fallbacks"] {
                assert!(doc
                    .get("antichain")
                    .and_then(|a| a.get(key))
                    .and_then(Json::as_u64)
                    .is_some());
            }
            // The document is valid JSON end to end.
            let text = doc.to_string();
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }
}
