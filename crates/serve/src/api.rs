//! The `POST /analyze` request model and execution path.
//!
//! A request carries surface-language source plus per-request analysis
//! options (domain, observer, deadline, LP cap). Execution is fully
//! isolated: the driver runs under `catch_unwind` with its own installed
//! budget, so a pathological or crashing submission is answered with a
//! structured error while the server keeps serving.

use crate::cache::CacheKey;
use crate::report;
use blazer_core::{Blazer, Config, DomainKind, UnknownReason, Verdict};
use blazer_ir::cost::CostModel;
use blazer_ir::json::Json;
use blazer_portfolio::{analyze_portfolio, epsilon_for, Backend};
use std::time::{Duration, Instant};

/// A parsed `POST /analyze` body.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Surface-language source text.
    pub source: String,
    /// Function to analyze; the program's first function when `None`.
    pub function: Option<String>,
    /// Numeric abstract domain (default polyhedra).
    pub domain: DomainKind,
    /// Observer model: `"degree"` (default) or `"stac"`.
    pub observer: String,
    /// Per-request wall-clock deadline in seconds.
    pub timeout_s: Option<f64>,
    /// Per-request LP-call cap.
    pub max_lp_calls: Option<u64>,
    /// Skip attack synthesis after a failed safety proof.
    pub no_attack: bool,
    /// Verification backend: the decomposition driver (default), the
    /// self-composition baseline, or a portfolio race of both.
    pub backend: Backend,
    /// Observer cost model: `"unit"` (default), `"weighted"`, `"cache"`,
    /// or a `{"kind": ...}` parameter object.
    pub cost_model: CostModel,
}

impl AnalyzeRequest {
    /// A request with default options for `source`.
    pub fn new(source: impl Into<String>) -> AnalyzeRequest {
        AnalyzeRequest {
            source: source.into(),
            function: None,
            domain: DomainKind::Polyhedra,
            observer: "degree".to_string(),
            timeout_s: None,
            max_lp_calls: None,
            no_attack: false,
            backend: Backend::Decomp,
            cost_model: CostModel::unit(),
        }
    }

    /// Parses a request from its JSON body. Unknown members are rejected
    /// so a typoed option fails loudly instead of silently analyzing with
    /// defaults.
    pub fn from_json(doc: &Json) -> Result<AnalyzeRequest, String> {
        let Json::Obj(pairs) = doc else {
            return Err("request body must be a JSON object".to_string());
        };
        let mut req = AnalyzeRequest::new(String::new());
        let mut saw_source = false;
        for (key, value) in pairs {
            match key.as_str() {
                "source" => {
                    req.source = value
                        .as_str()
                        .ok_or("\"source\" must be a string of surface-language code")?
                        .to_string();
                    saw_source = true;
                }
                "function" => {
                    req.function =
                        Some(value.as_str().ok_or("\"function\" must be a string")?.to_string());
                }
                "domain" => {
                    req.domain = match value.as_str() {
                        Some("interval") => DomainKind::Interval,
                        Some("zone") => DomainKind::Zone,
                        Some("octagon") => DomainKind::Octagon,
                        Some("polyhedra") => DomainKind::Polyhedra,
                        _ => {
                            return Err(
                                "\"domain\" must be interval|zone|octagon|polyhedra".to_string()
                            )
                        }
                    };
                }
                "observer" => {
                    req.observer = match value.as_str() {
                        Some(o @ ("degree" | "stac")) => o.to_string(),
                        _ => return Err("\"observer\" must be degree|stac".to_string()),
                    };
                }
                "timeout_s" => {
                    req.timeout_s = Some(
                        value
                            .as_f64()
                            .filter(|s| *s > 0.0)
                            .ok_or("\"timeout_s\" must be a positive number")?,
                    );
                }
                "max_lp_calls" => {
                    req.max_lp_calls = Some(value.as_u64().ok_or(
                        "\"max_lp_calls\" must be a non-negative \
                                                   integer",
                    )?);
                }
                "no_attack" => {
                    req.no_attack = value.as_bool().ok_or("\"no_attack\" must be a boolean")?;
                }
                "backend" => {
                    req.backend = value
                        .as_str()
                        .ok_or("\"backend\" must be a string")?
                        .parse()
                        .map_err(|e| format!("\"backend\": {e}"))?;
                }
                "cost_model" => {
                    req.cost_model =
                        CostModel::from_json(value).map_err(|e| format!("\"cost_model\": {e}"))?;
                }
                other => return Err(format!("unknown request member \"{other}\"")),
            }
        }
        if !saw_source {
            return Err("missing required member \"source\"".to_string());
        }
        Ok(req)
    }

    /// Serializes the request (the client subcommand's wire format).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("source".to_string(), Json::from(self.source.clone()))];
        if let Some(f) = &self.function {
            pairs.push(("function".to_string(), Json::from(f.clone())));
        }
        if self.domain != DomainKind::Polyhedra {
            pairs.push(("domain".to_string(), Json::from(self.domain.to_string())));
        }
        if self.observer != "degree" {
            pairs.push(("observer".to_string(), Json::from(self.observer.clone())));
        }
        if let Some(t) = self.timeout_s {
            pairs.push(("timeout_s".to_string(), Json::Num(t)));
        }
        if let Some(n) = self.max_lp_calls {
            pairs.push(("max_lp_calls".to_string(), Json::from(n)));
        }
        if self.no_attack {
            pairs.push(("no_attack".to_string(), Json::Bool(true)));
        }
        if self.backend != Backend::Decomp {
            pairs.push(("backend".to_string(), Json::from(self.backend.as_str())));
        }
        if self.cost_model != CostModel::unit() {
            pairs.push(("cost_model".to_string(), self.cost_model.to_json()));
        }
        Json::Obj(pairs)
    }

    /// The configuration fingerprint half of the cache key: every option
    /// that can change the response. Thread width is deliberately absent —
    /// verdicts are identical at every width. The backend is present: a
    /// self-composition or portfolio response carries backend-specific
    /// members (winner, leakage, verification status), so serving one for
    /// a plain decomposition request would be a cache-poisoning collision.
    /// (The cost model is likewise present — bounds, verdicts, leakage, and
    /// attack witnesses are all priced under it, so two requests differing
    /// only in `cost_model` must never share a cache entry or a
    /// single-flight slot.)
    pub fn fingerprint(&self) -> String {
        format!(
            "domain={};observer={};timeout_s={:?};max_lp_calls={:?};no_attack={};backend={};\
             cost_model={}",
            self.domain,
            self.observer,
            self.timeout_s,
            self.max_lp_calls,
            self.no_attack,
            self.backend,
            self.cost_model
        )
    }

    /// The content-addressed cache key for this request.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::new(&self.source, self.function.as_deref(), &self.fingerprint())
    }

    /// The driver configuration this request asks for. `max_timeout`
    /// clamps the deadline server-side; `threads` pins the per-analysis
    /// trail-evaluation width (a busy server parallelizes across requests,
    /// not within one).
    pub fn to_config(&self, max_timeout: Option<Duration>, threads: usize) -> Config {
        let mut config = match self.observer.as_str() {
            "stac" => Config::stac(),
            _ => Config::microbench(),
        };
        config.domain = self.domain;
        config.cost_model = self.cost_model.clone();
        config.synthesize_attack = !self.no_attack;
        config.threads = Some(threads);
        let requested = self.timeout_s.map(Duration::from_secs_f64);
        if let Some(deadline) = match (requested, max_timeout) {
            (Some(r), Some(cap)) => Some(r.min(cap)),
            (r, cap) => r.or(cap),
        } {
            config = config.with_timeout(deadline);
        }
        if let Some(n) = self.max_lp_calls {
            config = config.with_max_lp_calls(n);
        }
        config
    }
}

/// The executed result of one analyze request, before HTTP framing.
pub struct AnalyzeResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: Json,
    /// Whether the (successful) response should enter the verdict cache.
    pub cacheable: bool,
    /// Which backend won, when this response came from a portfolio race
    /// (`None` for plain requests, cache hits, and failed races).
    pub winner: Option<Backend>,
    /// Whether a portfolio race revoked the shared ledger to cancel the
    /// losing backend.
    pub revoked: bool,
}

impl AnalyzeResponse {
    fn plain(status: u16, body: Json, cacheable: bool) -> AnalyzeResponse {
        AnalyzeResponse { status, body, cacheable, winner: None, revoked: false }
    }
}

fn error_body(error: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(error.into()))])
}

fn crash_response(msg: &str) -> AnalyzeResponse {
    AnalyzeResponse::plain(500, error_body(format!("analysis crashed: {msg}")), false)
}

/// The non-cacheable 422 answer of a budget-exhausted analysis: the
/// budget describes this request, not the program, so the result must
/// never be served to a future (possibly better-funded) submission.
fn exhausted_response(
    resource: &impl std::fmt::Display,
    wall_s: f64,
    budget: &blazer_core::BudgetReport,
) -> AnalyzeResponse {
    let body = Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from(format!("analysis budget exhausted: {resource}"))),
        ("verdict", Json::from("unknown")),
        ("wall_s", Json::secs(wall_s)),
        ("budget", report::budget_json(budget)),
    ]);
    AnalyzeResponse::plain(422, body, false)
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// A structured client error (malformed body, compile failure, unknown
/// function).
pub fn bad_request(error: impl Into<String>) -> AnalyzeResponse {
    AnalyzeResponse::plain(400, error_body(error), false)
}

/// Compiles and analyzes one request end to end, dispatching to the
/// requested backend. Never panics: driver crashes become structured 500
/// responses.
pub fn execute(
    req: &AnalyzeRequest,
    max_timeout: Option<Duration>,
    threads: usize,
) -> AnalyzeResponse {
    let started = Instant::now();
    let program = match blazer_lang::compile(&req.source) {
        Ok(p) => p,
        Err(e) => return bad_request(format!("compile error: {e}")),
    };
    let function = match &req.function {
        Some(f) => f.clone(),
        None => match program.functions().next() {
            Some(f) => f.name().to_string(),
            None => return bad_request("program contains no functions"),
        },
    };
    let config = req.to_config(max_timeout, threads);
    match req.backend {
        Backend::Decomp => execute_decomp(req, &program, &function, config, started),
        Backend::Selfcomp => execute_selfcomp(req, &program, &function, &config, started),
        Backend::Portfolio => execute_portfolio(req, &program, &function, &config, started),
    }
}

/// The default path: the decomposition driver alone.
fn execute_decomp(
    req: &AnalyzeRequest,
    program: &blazer_ir::Program,
    function: &str,
    config: Config,
    started: Instant,
) -> AnalyzeResponse {
    let analyzed = std::panic::catch_unwind({
        let program = program.clone();
        let function = function.to_string();
        move || Blazer::new(config).analyze(&program, &function)
    });
    let outcome = match analyzed {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(e)) => return bad_request(format!("analysis error: {e}")),
        Err(payload) => return crash_response(&panic_text(payload)),
    };
    let wall_s = started.elapsed().as_secs_f64();
    if let Verdict::Unknown(UnknownReason::BudgetExhausted(resource)) = &outcome.verdict {
        return exhausted_response(resource, wall_s, &outcome.budget_report);
    }
    let Json::Obj(mut pairs) = report::outcome_json(program, &outcome, wall_s) else {
        unreachable!("outcome_json returns an object");
    };
    pairs.insert(0, ("ok".to_string(), Json::Bool(true)));
    pairs.insert(1, ("key".to_string(), Json::Str(req.cache_key().address())));
    AnalyzeResponse::plain(200, Json::Obj(pairs), true)
}

/// The self-composition baseline alone: a sound safety proof when it
/// verifies, an honest `unknown` (never an attack claim) when it does not.
fn execute_selfcomp(
    req: &AnalyzeRequest,
    program: &blazer_ir::Program,
    function: &str,
    config: &Config,
    started: Instant,
) -> AnalyzeResponse {
    if program.function(function).is_none() {
        return bad_request(format!("analysis error: no such function: {function}"));
    }
    let epsilon = epsilon_for(&config.observer);
    let _guard = config.budget.install();
    let verified = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        blazer_selfcomp::verify(program, function, epsilon, &config.cost_model)
    }));
    let budget = blazer_ir::budget::report();
    let wall_s = started.elapsed().as_secs_f64();
    let result = match verified {
        Ok(r) => r,
        Err(payload) => return crash_response(&panic_text(payload)),
    };
    if let Some(resource) = &budget.exhausted {
        return exhausted_response(resource, wall_s, &budget);
    }
    let body = Json::obj([
        ("ok", Json::Bool(true)),
        ("key", Json::Str(req.cache_key().address())),
        ("function", Json::from(function)),
        ("backend", Json::from(Backend::Selfcomp.as_str())),
        ("verdict", Json::from(if result.verified { "safe" } else { "unknown" })),
        ("verified", Json::Bool(result.verified)),
        ("epsilon", Json::from(epsilon)),
        ("cost_model", config.cost_model.to_json()),
        ("diff_lower", result.diff_bounds.0.map(|r| r.to_f64()).map(Json::Num).into()),
        ("diff_upper", result.diff_bounds.1.map(|r| r.to_f64()).map(Json::Num).into()),
        ("composed_blocks", Json::from(result.composed_blocks)),
        ("wall_s", Json::secs(wall_s)),
        ("budget", report::budget_json(&budget)),
    ]);
    AnalyzeResponse::plain(200, body, true)
}

/// The portfolio race: both backends under one shared budget, first sound
/// verdict wins, quantified leakage attached.
fn execute_portfolio(
    req: &AnalyzeRequest,
    program: &blazer_ir::Program,
    function: &str,
    config: &Config,
    started: Instant,
) -> AnalyzeResponse {
    let report = match analyze_portfolio(program, function, config) {
        Ok(r) => r,
        Err(e) => return bad_request(format!("analysis error: {e}")),
    };
    let wall_s = started.elapsed().as_secs_f64();
    if report.winner.is_none() {
        if let Verdict::Unknown(UnknownReason::BudgetExhausted(resource)) = &report.verdict {
            return exhausted_response(resource, wall_s, &report.budget_report);
        }
        if report.outcome.is_none() {
            let msg = report.crash.as_deref().unwrap_or("both backends failed");
            return crash_response(msg);
        }
    }
    let Json::Obj(mut pairs) = report::portfolio_json(program, function, &report, wall_s) else {
        unreachable!("portfolio_json returns an object");
    };
    pairs.insert(0, ("ok".to_string(), Json::Bool(true)));
    pairs.insert(1, ("key".to_string(), Json::Str(req.cache_key().address())));
    AnalyzeResponse {
        status: 200,
        body: Json::Obj(pairs),
        cacheable: true,
        winner: report.winner,
        revoked: report.revoked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_request_and_roundtrips() {
        let doc = Json::parse(
            r#"{"source": "fn f() { }", "function": "f", "domain": "zone",
                "observer": "stac", "timeout_s": 2.5, "max_lp_calls": 100,
                "no_attack": true}"#,
        )
        .unwrap();
        let req = AnalyzeRequest::from_json(&doc).unwrap();
        assert_eq!(req.domain, DomainKind::Zone);
        assert_eq!(req.observer, "stac");
        assert_eq!(req.timeout_s, Some(2.5));
        assert_eq!(req.max_lp_calls, Some(100));
        assert!(req.no_attack);
        assert_eq!(AnalyzeRequest::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn rejects_bad_members() {
        for (body, needle) in [
            (r#"{"function": "f"}"#, "source"),
            (r#"{"source": "x", "domain": "cube"}"#, "domain"),
            (r#"{"source": "x", "observer": "nsa"}"#, "observer"),
            (r#"{"source": "x", "timeout_s": -1}"#, "timeout_s"),
            (r#"{"source": "x", "frobnicate": 1}"#, "frobnicate"),
            (r#"[1, 2]"#, "object"),
        ] {
            let err = AnalyzeRequest::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn fingerprint_separates_configs_but_not_threads() {
        let base = AnalyzeRequest::new("fn f() { }");
        let mut zoned = base.clone();
        zoned.domain = DomainKind::Zone;
        assert_ne!(base.fingerprint(), zoned.fingerprint());
        // Same request analyzed at different widths is the same key.
        assert_eq!(base.cache_key(), base.cache_key());
    }

    #[test]
    fn cache_key_separates_backends() {
        // Regression: the fingerprint once omitted the backend, so a
        // selfcomp or portfolio verdict (different body shape, different
        // soundness guarantees) could be cached and then served to a plain
        // decomposition request for the same source.
        let mut keys = Vec::new();
        for backend in [Backend::Decomp, Backend::Selfcomp, Backend::Portfolio] {
            let mut req = AnalyzeRequest::new("fn f(h: int #high) { tick(1); }");
            req.backend = backend;
            keys.push(req.cache_key());
        }
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn cache_key_separates_cost_models() {
        // Regression: the fingerprint once omitted the cost model, so a
        // verdict priced under the unit model could be cached (or joined
        // as an in-flight single-flight follower — the flight table is
        // keyed by the same cache key) and then served to a request asking
        // for the cache-aware observer, whose bounds, leakage, and attack
        // epsilon are all different.
        let mut keys = Vec::new();
        for model in [CostModel::unit(), CostModel::weighted(), CostModel::cache_aware()] {
            let mut req = AnalyzeRequest::new("fn f(a: int[] #high) { let x: int = a[0]; }");
            req.cost_model = model;
            keys.push(req.cache_key());
        }
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
        // A custom table is distinct from every preset too.
        let mut custom = AnalyzeRequest::new("fn f(a: int[] #high) { let x: int = a[0]; }");
        custom.cost_model =
            CostModel::from_json(&Json::parse(r#"{"kind": "weighted", "assign": 5}"#).unwrap())
                .unwrap();
        assert!(!keys.contains(&custom.cache_key()));
    }

    #[test]
    fn cost_model_roundtrips_and_default_is_omitted_from_wire() {
        // Preset by name.
        let doc = Json::parse(r#"{"source": "fn f() { }", "cost_model": "cache"}"#).unwrap();
        let req = AnalyzeRequest::from_json(&doc).unwrap();
        assert_eq!(req.cost_model, CostModel::cache_aware());
        assert_eq!(AnalyzeRequest::from_json(&req.to_json()).unwrap(), req);
        // Custom object form.
        let doc = Json::parse(
            r#"{"source": "fn f() { }",
                "cost_model": {"kind": "cache", "hit": 2, "miss": 20, "ways": 2}}"#,
        )
        .unwrap();
        let req = AnalyzeRequest::from_json(&doc).unwrap();
        let params = req.cost_model.cache_params().expect("cache model");
        assert_eq!((params.hit, params.miss, params.ways), (2, 20, 2));
        assert_eq!(AnalyzeRequest::from_json(&req.to_json()).unwrap(), req);
        // The default unit model stays off the wire for old-client parity.
        let plain = AnalyzeRequest::new("fn f() { }");
        assert!(plain.to_json().get("cost_model").is_none());
    }

    #[test]
    fn bad_cost_models_are_rejected_with_messages() {
        for (body, needle) in [
            (r#"{"source": "x", "cost_model": "l33t"}"#, "unknown cost model"),
            (r#"{"source": "x", "cost_model": {"assign": 1}}"#, "kind"),
            (
                r#"{"source": "x", "cost_model": {"kind": "cache", "hit": 9, "miss": 3}}"#,
                "miss >= hit",
            ),
            (r#"{"source": "x", "cost_model": {"kind": "cache", "ways": 0}}"#, ">= 1"),
            (r#"{"source": "x", "cost_model": {"kind": "weighted", "assign": -2}}"#, "negative"),
            (r#"{"source": "x", "cost_model": 17}"#, "name string or an object"),
        ] {
            let err = AnalyzeRequest::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains("cost_model"), "{body} -> {err}");
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn backend_roundtrips_and_default_is_omitted_from_wire() {
        let doc = Json::parse(r#"{"source": "fn f() { }", "backend": "portfolio"}"#).unwrap();
        let req = AnalyzeRequest::from_json(&doc).unwrap();
        assert_eq!(req.backend, Backend::Portfolio);
        assert_eq!(AnalyzeRequest::from_json(&req.to_json()).unwrap(), req);
        // The default backend stays off the wire for old-client parity.
        let plain = AnalyzeRequest::new("fn f() { }");
        assert!(plain.to_json().get("backend").is_none());
        let bad = Json::parse(r#"{"source": "x", "backend": "quantum"}"#).unwrap();
        assert!(AnalyzeRequest::from_json(&bad).unwrap_err().contains("backend"));
    }

    #[test]
    fn execute_portfolio_reports_winner_and_leakage() {
        let mut req = AnalyzeRequest::new(
            "fn f(h: int #high) { if (h == 0) { tick(500); } else { tick(1); } }",
        );
        req.backend = Backend::Portfolio;
        let resp = execute(&req, None, 1);
        assert_eq!(resp.status, 200);
        assert!(resp.cacheable);
        // Selfcomp can never soundly report an attack: decomp must win.
        assert_eq!(resp.winner, Some(Backend::Decomp));
        assert_eq!(resp.body.get("verdict").and_then(Json::as_str), Some("attack"));
        assert_eq!(resp.body.get("winner").and_then(Json::as_str), Some("decomp"));
        assert!(resp
            .body
            .get("leakage_bits")
            .and_then(Json::as_f64)
            .is_some_and(|bits| bits >= 1.0));
        assert!(resp.body.get("portfolio").and_then(|p| p.get("decomp")).is_some());
    }

    #[test]
    fn execute_selfcomp_verifies_balanced_program() {
        let mut req =
            AnalyzeRequest::new("fn f(h: int #high) { if (h > 0) { tick(3); } else { tick(3); } }");
        req.backend = Backend::Selfcomp;
        let resp = execute(&req, None, 1);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.get("verdict").and_then(Json::as_str), Some("safe"));
        assert_eq!(resp.body.get("verified").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.body.get("backend").and_then(Json::as_str), Some("selfcomp"));
    }

    #[test]
    fn execute_reports_compile_errors_as_400() {
        let resp = execute(&AnalyzeRequest::new("fn broken( {"), None, 1);
        assert_eq!(resp.status, 400);
        assert!(!resp.cacheable);
        assert_eq!(resp.body.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn execute_clamps_deadline_and_reports_exhaustion_as_422() {
        let src = "fn f(h: int #high, low: int) { \
            if (h == 0) { let i: int = 0; while (i < low) { i = i + 1; } } \
            else { let i: int = low; while (i > 0) { i = i - 1; } } }";
        let mut req = AnalyzeRequest::new(src);
        req.timeout_s = Some(3600.0);
        let resp = execute(&req, Some(Duration::from_nanos(1)), 1);
        assert_eq!(resp.status, 422);
        assert!(!resp.cacheable);
        assert!(resp
            .body
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("budget exhausted")));
    }

    #[test]
    fn execute_analyzes_safe_program() {
        let resp = execute(
            &AnalyzeRequest::new(
                "fn f(h: int #high) { if (h > 0) { tick(3); } else { tick(3); } }",
            ),
            None,
            1,
        );
        assert_eq!(resp.status, 200);
        assert!(resp.cacheable);
        assert_eq!(resp.body.get("verdict").and_then(Json::as_str), Some("safe"));
        assert_eq!(resp.body.get("key").and_then(Json::as_str).map(str::len), Some(16));
    }
}
