//! The `POST /analyze` request model and execution path.
//!
//! A request carries surface-language source plus per-request analysis
//! options (domain, observer, deadline, LP cap). Execution is fully
//! isolated: the driver runs under `catch_unwind` with its own installed
//! budget, so a pathological or crashing submission is answered with a
//! structured error while the server keeps serving.

use crate::cache::CacheKey;
use crate::report;
use blazer_core::{Blazer, Config, DomainKind, UnknownReason, Verdict};
use blazer_ir::json::Json;
use std::time::{Duration, Instant};

/// A parsed `POST /analyze` body.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Surface-language source text.
    pub source: String,
    /// Function to analyze; the program's first function when `None`.
    pub function: Option<String>,
    /// Numeric abstract domain (default polyhedra).
    pub domain: DomainKind,
    /// Observer model: `"degree"` (default) or `"stac"`.
    pub observer: String,
    /// Per-request wall-clock deadline in seconds.
    pub timeout_s: Option<f64>,
    /// Per-request LP-call cap.
    pub max_lp_calls: Option<u64>,
    /// Skip attack synthesis after a failed safety proof.
    pub no_attack: bool,
}

impl AnalyzeRequest {
    /// A request with default options for `source`.
    pub fn new(source: impl Into<String>) -> AnalyzeRequest {
        AnalyzeRequest {
            source: source.into(),
            function: None,
            domain: DomainKind::Polyhedra,
            observer: "degree".to_string(),
            timeout_s: None,
            max_lp_calls: None,
            no_attack: false,
        }
    }

    /// Parses a request from its JSON body. Unknown members are rejected
    /// so a typoed option fails loudly instead of silently analyzing with
    /// defaults.
    pub fn from_json(doc: &Json) -> Result<AnalyzeRequest, String> {
        let Json::Obj(pairs) = doc else {
            return Err("request body must be a JSON object".to_string());
        };
        let mut req = AnalyzeRequest::new(String::new());
        let mut saw_source = false;
        for (key, value) in pairs {
            match key.as_str() {
                "source" => {
                    req.source = value
                        .as_str()
                        .ok_or("\"source\" must be a string of surface-language code")?
                        .to_string();
                    saw_source = true;
                }
                "function" => {
                    req.function =
                        Some(value.as_str().ok_or("\"function\" must be a string")?.to_string());
                }
                "domain" => {
                    req.domain = match value.as_str() {
                        Some("interval") => DomainKind::Interval,
                        Some("zone") => DomainKind::Zone,
                        Some("octagon") => DomainKind::Octagon,
                        Some("polyhedra") => DomainKind::Polyhedra,
                        _ => {
                            return Err(
                                "\"domain\" must be interval|zone|octagon|polyhedra".to_string()
                            )
                        }
                    };
                }
                "observer" => {
                    req.observer = match value.as_str() {
                        Some(o @ ("degree" | "stac")) => o.to_string(),
                        _ => return Err("\"observer\" must be degree|stac".to_string()),
                    };
                }
                "timeout_s" => {
                    req.timeout_s = Some(
                        value
                            .as_f64()
                            .filter(|s| *s > 0.0)
                            .ok_or("\"timeout_s\" must be a positive number")?,
                    );
                }
                "max_lp_calls" => {
                    req.max_lp_calls = Some(value.as_u64().ok_or(
                        "\"max_lp_calls\" must be a non-negative \
                                                   integer",
                    )?);
                }
                "no_attack" => {
                    req.no_attack = value.as_bool().ok_or("\"no_attack\" must be a boolean")?;
                }
                other => return Err(format!("unknown request member \"{other}\"")),
            }
        }
        if !saw_source {
            return Err("missing required member \"source\"".to_string());
        }
        Ok(req)
    }

    /// Serializes the request (the client subcommand's wire format).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("source".to_string(), Json::from(self.source.clone()))];
        if let Some(f) = &self.function {
            pairs.push(("function".to_string(), Json::from(f.clone())));
        }
        if self.domain != DomainKind::Polyhedra {
            pairs.push(("domain".to_string(), Json::from(self.domain.to_string())));
        }
        if self.observer != "degree" {
            pairs.push(("observer".to_string(), Json::from(self.observer.clone())));
        }
        if let Some(t) = self.timeout_s {
            pairs.push(("timeout_s".to_string(), Json::Num(t)));
        }
        if let Some(n) = self.max_lp_calls {
            pairs.push(("max_lp_calls".to_string(), Json::from(n)));
        }
        if self.no_attack {
            pairs.push(("no_attack".to_string(), Json::Bool(true)));
        }
        Json::Obj(pairs)
    }

    /// The configuration fingerprint half of the cache key: every option
    /// that can change the response. Thread width is deliberately absent —
    /// verdicts are identical at every width.
    pub fn fingerprint(&self) -> String {
        format!(
            "domain={};observer={};timeout_s={:?};max_lp_calls={:?};no_attack={}",
            self.domain, self.observer, self.timeout_s, self.max_lp_calls, self.no_attack
        )
    }

    /// The content-addressed cache key for this request.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::new(&self.source, self.function.as_deref(), &self.fingerprint())
    }

    /// The driver configuration this request asks for. `max_timeout`
    /// clamps the deadline server-side; `threads` pins the per-analysis
    /// trail-evaluation width (a busy server parallelizes across requests,
    /// not within one).
    pub fn to_config(&self, max_timeout: Option<Duration>, threads: usize) -> Config {
        let mut config = match self.observer.as_str() {
            "stac" => Config::stac(),
            _ => Config::microbench(),
        };
        config.domain = self.domain;
        config.synthesize_attack = !self.no_attack;
        config.threads = Some(threads);
        let requested = self.timeout_s.map(Duration::from_secs_f64);
        if let Some(deadline) = match (requested, max_timeout) {
            (Some(r), Some(cap)) => Some(r.min(cap)),
            (r, cap) => r.or(cap),
        } {
            config = config.with_timeout(deadline);
        }
        if let Some(n) = self.max_lp_calls {
            config = config.with_max_lp_calls(n);
        }
        config
    }
}

/// The executed result of one analyze request, before HTTP framing.
pub struct AnalyzeResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: Json,
    /// Whether the (successful) response should enter the verdict cache.
    pub cacheable: bool,
}

fn error_body(error: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(error.into()))])
}

/// A structured client error (malformed body, compile failure, unknown
/// function).
pub fn bad_request(error: impl Into<String>) -> AnalyzeResponse {
    AnalyzeResponse { status: 400, body: error_body(error), cacheable: false }
}

/// Compiles and analyzes one request end to end. Never panics: driver
/// crashes become structured 500 responses.
pub fn execute(
    req: &AnalyzeRequest,
    max_timeout: Option<Duration>,
    threads: usize,
) -> AnalyzeResponse {
    let started = Instant::now();
    let program = match blazer_lang::compile(&req.source) {
        Ok(p) => p,
        Err(e) => return bad_request(format!("compile error: {e}")),
    };
    let function = match &req.function {
        Some(f) => f.clone(),
        None => match program.functions().next() {
            Some(f) => f.name().to_string(),
            None => return bad_request("program contains no functions"),
        },
    };
    let config = req.to_config(max_timeout, threads);
    let analyzed = std::panic::catch_unwind({
        let program = program.clone();
        let function = function.clone();
        move || Blazer::new(config).analyze(&program, &function)
    });
    let outcome = match analyzed {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(e)) => return bad_request(format!("analysis error: {e}")),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            return AnalyzeResponse {
                status: 500,
                body: error_body(format!("analysis crashed: {msg}")),
                cacheable: false,
            };
        }
    };
    let wall_s = started.elapsed().as_secs_f64();
    if let Verdict::Unknown(UnknownReason::BudgetExhausted(resource)) = &outcome.verdict {
        // The budget describes this request, not the program: report a
        // structured failure and keep it out of the cache.
        let body = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::from(format!("analysis budget exhausted: {resource}"))),
            ("verdict", Json::from("unknown")),
            ("wall_s", Json::secs(wall_s)),
            ("budget", report::budget_json(&outcome.budget_report)),
        ]);
        return AnalyzeResponse { status: 422, body, cacheable: false };
    }
    let Json::Obj(mut pairs) = report::outcome_json(&program, &outcome, wall_s) else {
        unreachable!("outcome_json returns an object");
    };
    pairs.insert(0, ("ok".to_string(), Json::Bool(true)));
    pairs.insert(1, ("key".to_string(), Json::Str(req.cache_key().address())));
    AnalyzeResponse { status: 200, body: Json::Obj(pairs), cacheable: true }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_request_and_roundtrips() {
        let doc = Json::parse(
            r#"{"source": "fn f() { }", "function": "f", "domain": "zone",
                "observer": "stac", "timeout_s": 2.5, "max_lp_calls": 100,
                "no_attack": true}"#,
        )
        .unwrap();
        let req = AnalyzeRequest::from_json(&doc).unwrap();
        assert_eq!(req.domain, DomainKind::Zone);
        assert_eq!(req.observer, "stac");
        assert_eq!(req.timeout_s, Some(2.5));
        assert_eq!(req.max_lp_calls, Some(100));
        assert!(req.no_attack);
        assert_eq!(AnalyzeRequest::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn rejects_bad_members() {
        for (body, needle) in [
            (r#"{"function": "f"}"#, "source"),
            (r#"{"source": "x", "domain": "cube"}"#, "domain"),
            (r#"{"source": "x", "observer": "nsa"}"#, "observer"),
            (r#"{"source": "x", "timeout_s": -1}"#, "timeout_s"),
            (r#"{"source": "x", "frobnicate": 1}"#, "frobnicate"),
            (r#"[1, 2]"#, "object"),
        ] {
            let err = AnalyzeRequest::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn fingerprint_separates_configs_but_not_threads() {
        let base = AnalyzeRequest::new("fn f() { }");
        let mut zoned = base.clone();
        zoned.domain = DomainKind::Zone;
        assert_ne!(base.fingerprint(), zoned.fingerprint());
        // Same request analyzed at different widths is the same key.
        assert_eq!(base.cache_key(), base.cache_key());
    }

    #[test]
    fn execute_reports_compile_errors_as_400() {
        let resp = execute(&AnalyzeRequest::new("fn broken( {"), None, 1);
        assert_eq!(resp.status, 400);
        assert!(!resp.cacheable);
        assert_eq!(resp.body.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn execute_clamps_deadline_and_reports_exhaustion_as_422() {
        let src = "fn f(h: int #high, low: int) { \
            if (h == 0) { let i: int = 0; while (i < low) { i = i + 1; } } \
            else { let i: int = low; while (i > 0) { i = i - 1; } } }";
        let mut req = AnalyzeRequest::new(src);
        req.timeout_s = Some(3600.0);
        let resp = execute(&req, Some(Duration::from_nanos(1)), 1);
        assert_eq!(resp.status, 422);
        assert!(!resp.cacheable);
        assert!(resp
            .body
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("budget exhausted")));
    }

    #[test]
    fn execute_analyzes_safe_program() {
        let resp = execute(
            &AnalyzeRequest::new(
                "fn f(h: int #high) { if (h > 0) { tick(3); } else { tick(3); } }",
            ),
            None,
            1,
        );
        assert_eq!(resp.status, 200);
        assert!(resp.cacheable);
        assert_eq!(resp.body.get("verdict").and_then(Json::as_str), Some("safe"));
        assert_eq!(resp.body.get("key").and_then(Json::as_str).map(str::len), Some(16));
    }
}
