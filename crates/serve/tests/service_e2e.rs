//! End-to-end service tests: a real `Server` on an ephemeral port, spoken
//! to over TCP by the real client — the same path `blazer client` uses.

use blazer_core::{Blazer, Config, Verdict};
use blazer_ir::json::Json;
use blazer_serve::{client, AnalyzeRequest, ServeOptions, Server};
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};

const SAFE_SRC: &str = "fn check(high: int #high, low: int) { \
    if (high == 0) { let i: int = 0; while (i < low) { i = i + 1; } } \
    else { let i: int = low; while (i > 0) { i = i - 1; } } }";

const UNSAFE_SRC: &str = "fn leak(h: int #high) { if (h == 0) { tick(90); } else { tick(1); } }";

fn start_server(opts: ServeOptions) -> Server {
    Server::start(ServeOptions { addr: "127.0.0.1:0".to_string(), ..opts })
        .expect("bind ephemeral port")
}

fn scratch_path(stem: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "blazer-serve-{stem}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ))
}

/// The verdict a direct in-process run of the driver produces.
fn direct_verdict(source: &str, function: &str) -> Verdict {
    let program = blazer_lang::compile(source).expect("test source compiles");
    Blazer::new(Config::microbench()).analyze(&program, function).expect("analysis runs").verdict
}

#[test]
fn wire_verdicts_match_the_direct_driver() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    for (source, function) in [(SAFE_SRC, "check"), (UNSAFE_SRC, "leak")] {
        let (status, doc) =
            client::analyze(&addr, &AnalyzeRequest::new(source)).expect("request round-trips");
        assert_eq!(status, 200, "{doc}");
        let direct = direct_verdict(source, function);
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some(direct.code()));
        assert_eq!(doc.get("function").and_then(Json::as_str), Some(function));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        // An attack response carries the synthesized trail pair.
        if direct.is_attack() {
            assert!(!doc.get("attack").map(Json::is_null).unwrap_or(true));
        }
    }
    server.stop();
}

#[test]
fn resubmission_is_a_cache_hit() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let (status, first) = client::analyze(&addr, &req).expect("first request");
    assert_eq!(status, 200);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let (status, second) = client::analyze(&addr, &req).expect("second request");
    assert_eq!(status, 200);
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    // Identical payload apart from the provenance flag.
    assert_eq!(first.get("verdict"), second.get("verdict"));
    assert_eq!(first.get("key"), second.get("key"));
    // The hit is observable through GET /stats, as the issue requires.
    let (_, stats) = client::stats(&addr).expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("analyses_run").and_then(Json::as_u64), Some(1));
    // A different config is a different content address: no false hit.
    let mut zoned = req.clone();
    zoned.domain = blazer_core::DomainKind::Zone;
    let (_, third) = client::analyze(&addr, &zoned).expect("third request");
    assert_eq!(third.get("cached").and_then(Json::as_bool), Some(false));
    server.stop();
}

#[test]
fn malformed_requests_get_structured_errors_and_the_server_survives() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    // Body is not JSON at all.
    let (status, body) =
        client::raw_request(&addr, "POST", "/analyze", Some("{not json")).expect("round-trips");
    assert_eq!(status, 400);
    let doc = Json::parse(&body).expect("error body is JSON");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert!(doc.get("error").and_then(Json::as_str).is_some());
    // Unknown member, missing source, compile error: all structured 400s.
    for bad in [r#"{"frobnicate": 1}"#, r#"{"function": "f"}"#, r#"{"source": "fn broken( {"}"#] {
        let (status, body) =
            client::raw_request(&addr, "POST", "/analyze", Some(bad)).expect("round-trips");
        assert_eq!(status, 400, "{bad} -> {body}");
    }
    // Unknown routes and wrong methods are structured too.
    let (status, _) = client::raw_request(&addr, "GET", "/nope", None).expect("404 route");
    assert_eq!(status, 404);
    let (status, _) = client::raw_request(&addr, "DELETE", "/analyze", None).expect("405 route");
    assert_eq!(status, 405);
    // And the server is still alive and serving analyses.
    let (status, doc) =
        client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("still serving");
    assert_eq!(status, 200);
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("attack"));
    let (_, stats) = client::stats(&addr).expect("stats");
    assert!(stats.get("client_errors").and_then(Json::as_u64).unwrap_or(0) >= 6);
    server.stop();
}

#[test]
fn exhausted_request_budget_is_a_422_and_the_server_keeps_serving() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let mut starved = AnalyzeRequest::new(SAFE_SRC);
    starved.timeout_s = Some(1e-9);
    let (status, doc) = client::analyze(&addr, &starved).expect("round-trips");
    assert_eq!(status, 422, "{doc}");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("unknown"));
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("budget exhausted")));
    assert!(doc.get("budget").is_some(), "budget report attached: {doc}");
    // Budget failures describe the request, not the program — they must
    // not poison the cache for a properly-budgeted resubmission.
    let (status, doc) =
        client::analyze(&addr, &AnalyzeRequest::new(SAFE_SRC)).expect("round-trips");
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    server.stop();
}

#[test]
fn keepalive_serves_sequential_requests_on_one_connection() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let mut session = client::Session::connect(&addr).expect("session connects");
    // ≥ 3 sequential /analyze requests on one socket, interleaving cache
    // misses and hits: miss, hit, miss (different source), hit.
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let (status, first) = session.analyze(&req).expect("first request");
    assert_eq!(status, 200, "{first}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let (status, second) = session.analyze(&req).expect("second request, same socket");
    assert_eq!(status, 200);
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("verdict"), second.get("verdict"));
    let (status, third) = session.analyze(&AnalyzeRequest::new(SAFE_SRC)).expect("third request");
    assert_eq!(status, 200, "{third}");
    assert_eq!(third.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(third.get("verdict").and_then(Json::as_str), Some("safe"));
    let (status, fourth) = session.analyze(&AnalyzeRequest::new(SAFE_SRC)).expect("fourth");
    assert_eq!(status, 200);
    assert_eq!(fourth.get("cached").and_then(Json::as_bool), Some(true));
    // The stats request rides the same connection: one connection total,
    // five requests — the split the keep-alive work makes observable.
    let (status, stats) = session.stats().expect("stats on the same socket");
    assert_eq!(status, 200);
    assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(5));
    assert_eq!(stats.get("analyze_requests").and_then(Json::as_u64), Some(4));
    assert_eq!(stats.get("analyses_run").and_then(Json::as_u64), Some(2));
    assert!(!session.server_closed());
    server.stop();
}

#[test]
fn pipelined_requests_are_answered_in_order_on_one_socket() {
    let server = start_server(ServeOptions::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    // Three requests written back to back before reading anything: the
    // middle bytes land in the server's read buffer alongside the first
    // request and must not be dropped at its boundary.
    let bad_body = "{not json";
    let pipelined = format!(
        "POST /analyze HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}\
         GET /health HTTP/1.1\r\n\r\n\
         GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n",
        bad_body.len(),
        bad_body,
    );
    stream.write_all(pipelined.as_bytes()).expect("write all three requests");
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let (status, body, closes) = client::read_response(&mut reader).expect("first response");
    assert_eq!(status, 400, "{body}");
    assert!(!closes, "a routed 400 keeps the connection open");
    let (status, body, closes) = client::read_response(&mut reader).expect("second response");
    assert_eq!(status, 200, "{body}");
    assert!(!closes);
    assert_eq!(Json::parse(&body).unwrap().get("ok").and_then(Json::as_bool), Some(true));
    let (status, body, closes) = client::read_response(&mut reader).expect("third response");
    assert_eq!(status, 200);
    assert!(closes, "the peer asked for Connection: close");
    let stats = Json::parse(&body).expect("stats body");
    assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(3));
    server.stop();
}

#[test]
fn request_cap_closes_the_connection_after_the_last_response() {
    let server =
        start_server(ServeOptions { max_requests_per_connection: 2, ..ServeOptions::default() });
    let addr = server.addr().to_string();
    let mut session = client::Session::connect(&addr).expect("session connects");
    let (status, _) = session.health().expect("first request");
    assert_eq!(status, 200);
    assert!(!session.server_closed());
    let (status, _) = session.health().expect("second request");
    assert_eq!(status, 200);
    assert!(session.server_closed(), "the cap's last response announces the close");
    // The next request transparently re-dials instead of failing on the
    // dead socket.
    let (status, _) = session.health().expect("third request reconnects");
    assert_eq!(status, 200);
    assert!(!session.server_closed(), "the fresh connection has a fresh cap");
    // A fresh connection serves again.
    let (status, _) = client::health(&addr).expect("fresh connection");
    assert_eq!(status, 200);
    server.stop();
}

/// The reconnect regression the issue asks for: a long-lived session
/// against `--max-requests-per-connection 2` sails through many requests,
/// re-dialing at every announced close, with analyses and cache hits
/// flowing across the connection generations.
#[test]
fn session_transparently_reconnects_across_request_caps() {
    let server =
        start_server(ServeOptions { max_requests_per_connection: 2, ..ServeOptions::default() });
    let addr = server.addr().to_string();
    let mut session = client::Session::connect(&addr).expect("session connects");
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let (status, first) = session.analyze(&req).expect("request 1");
    assert_eq!(status, 200, "{first}");
    for round in 2..=5 {
        let (status, doc) = session.analyze(&req).expect("subsequent request");
        assert_eq!(status, 200, "request {round}: {doc}");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true), "request {round}");
        assert_eq!(doc.get("verdict"), first.get("verdict"));
    }
    // Request 6 lands on the third connection (2 per cap) and proves the
    // reconnects happened: the server counted 3 connections, 6 requests.
    let (status, stats) = session.stats().expect("stats after reconnects");
    assert_eq!(status, 200);
    assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(3), "{stats}");
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(6));
    assert_eq!(stats.get("analyses_run").and_then(Json::as_u64), Some(1));
    server.stop();
}

#[test]
fn stats_reports_queue_and_worker_gauges() {
    let server = start_server(ServeOptions { workers: Some(3), ..ServeOptions::default() });
    let addr = server.addr().to_string();
    let (status, stats) = client::stats(&addr).expect("stats");
    assert_eq!(status, 200);
    // The worker serving this very request is busy; nothing is queued.
    assert_eq!(stats.get("workers_busy").and_then(Json::as_u64), Some(1), "{stats}");
    assert_eq!(stats.get("queue_len").and_then(Json::as_u64), Some(0));
    // The pre-existing fields all survive alongside the gauges.
    for field in [
        "workers",
        "queue_depth",
        "connections",
        "requests",
        "analyze_requests",
        "batch_requests",
        "analyses_run",
        "coalesced",
        "crashes",
        "client_errors",
        "busy_rejections",
        "cache_hit_rate",
    ] {
        assert!(stats.get(field).is_some(), "missing {field}: {stats}");
    }
    // The cache object carries the sharding-era fields alongside the
    // original counters.
    let cache = stats.get("cache").expect("cache object");
    for field in ["entries", "hits", "misses", "evictions", "shards", "hit_rate"] {
        assert!(cache.get(field).is_some(), "missing cache.{field}: {stats}");
    }
    assert!(cache.get("shards").and_then(Json::as_u64).unwrap_or(0) >= 1);
    server.stop();
}

#[test]
fn shutdown_endpoint_is_token_gated_and_drains_gracefully() {
    let path = scratch_path("drain");
    let server = start_server(ServeOptions {
        admin_token: Some("sekrit".to_string()),
        cache_file: Some(path.clone()),
        workers: Some(2),
        ..ServeOptions::default()
    });
    let addr = server.addr().to_string();
    // Seed the cache so the drain has something to flush.
    let (status, _) = client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("analyze");
    assert_eq!(status, 200);
    // Wrong or missing token: refused, server unaffected.
    let (status, body) = client::raw_request(&addr, "POST", "/shutdown", None).expect("no token");
    assert_eq!(status, 403, "{body}");
    let (status, body) =
        client::raw_request(&addr, "POST", "/shutdown", Some(r#"{"token": "wrong"}"#))
            .expect("bad token");
    assert_eq!(status, 403, "{body}");
    let (status, health) = client::health(&addr).expect("health while up");
    assert_eq!(status, 200);
    assert_eq!(health.get("draining").and_then(Json::as_bool), Some(false));
    // A connection accepted *before* the drain observes the health flip.
    let mut witness = client::Session::connect(&addr).expect("witness session");
    let (status, _) = witness.health().expect("witness is being served");
    assert_eq!(status, 200);
    let (status, body) =
        client::raw_request(&addr, "POST", "/shutdown", Some(r#"{"token": "sekrit"}"#))
            .expect("authorized shutdown");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("shutdown body");
    assert_eq!(doc.get("draining").and_then(Json::as_bool), Some(true));
    let (status, health) = witness.health().expect("draining server still serves its queue");
    assert_eq!(status, 503, "{health}");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(health.get("draining").and_then(Json::as_bool), Some(true));
    drop(witness);
    // The drain completes: every thread joins and the cache is flushed to
    // a compact log (exactly the one live verdict).
    server.wait();
    let flushed = std::fs::read_to_string(&path).expect("flushed cache file");
    assert_eq!(flushed.lines().count(), 1, "{flushed}");
    assert!(flushed.contains("\"key\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shutdown_endpoint_is_disabled_without_a_token() {
    // No admin_token in options; make sure the env fallback is not
    // accidentally set in the test environment.
    let server = match std::env::var("BLAZER_ADMIN_TOKEN") {
        Ok(_) => return, // environment already configures one; skip
        Err(_) => start_server(ServeOptions::default()),
    };
    let addr = server.addr().to_string();
    let (status, body) =
        client::raw_request(&addr, "POST", "/shutdown", Some(r#"{"token": "anything"}"#))
            .expect("round-trips");
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("disabled"), "{body}");
    // Still serving.
    let (status, _) = client::health(&addr).expect("health");
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn peer_hanging_up_mid_body_leaves_the_server_serving() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    {
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-few-bytes")
            .expect("partial write");
        // Half-close: the server sees EOF 84 bytes short of the declared
        // length and must answer 400 (readable on our intact read half)
        // rather than hang or crash.
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut reader = std::io::BufReader::new(stream);
        let (status, body, closes) = client::read_response(&mut reader).expect("error response");
        assert_eq!(status, 400, "{body}");
        assert!(closes, "framing failed; the connection cannot continue");
    }
    {
        // Hang up without sending anything at all: a clean close, no
        // response owed, and no error counted for it.
        let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        drop(stream);
    }
    // The server is alive and the aborted connections are accounted for.
    let (status, doc) = client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("serving");
    assert_eq!(status, 200, "{doc}");
    let (_, stats) = client::stats(&addr).expect("stats");
    assert!(stats.get("connections").and_then(Json::as_u64).unwrap_or(0) >= 3);
    assert_eq!(stats.get("crashes").and_then(Json::as_u64), Some(0));
    server.stop();
}

#[test]
fn batch_mixes_ok_and_failed_items_without_failing_the_batch() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let ok = AnalyzeRequest::new(UNSAFE_SRC);
    let mut starved = AnalyzeRequest::new(SAFE_SRC);
    starved.timeout_s = Some(1e-9);
    let uncompilable = AnalyzeRequest::new("fn broken( {");
    let batch = [ok.clone(), starved, uncompilable, ok.clone()];
    let (status, doc) = client::analyze_batch(&addr, &batch).expect("batch round-trips");
    assert_eq!(status, 200, "per-item failures must not fail the batch: {doc}");
    let items = doc.as_arr().expect("batch answers an array");
    assert_eq!(items.len(), 4, "one result per submitted item, in order");
    let statuses: Vec<u64> =
        items.iter().map(|i| i.get("status").and_then(Json::as_u64).unwrap()).collect();
    assert_eq!(statuses, [200, 422, 400, 200]);
    assert_eq!(items[0].get("verdict").and_then(Json::as_str), Some("attack"));
    assert_eq!(items[0].get("cached").and_then(Json::as_bool), Some(false));
    assert!(items[1].get("error").and_then(Json::as_str).unwrap().contains("budget exhausted"));
    assert!(items[2].get("error").and_then(Json::as_str).unwrap().contains("compile error"));
    // The duplicate of item 0 was answered without a second driver run —
    // coalesced with it in flight, or a cache hit after it landed.
    assert_eq!(items[3].get("verdict").and_then(Json::as_str), Some("attack"));
    let (_, stats) = client::stats(&addr).expect("stats");
    assert_eq!(stats.get("batch_requests").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("analyze_requests").and_then(Json::as_u64), Some(4));
    assert_eq!(stats.get("analyses_run").and_then(Json::as_u64), Some(2));
    server.stop();
}

#[test]
fn empty_and_malformed_batches_answer_cleanly() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let (status, body) = client::raw_request(&addr, "POST", "/analyze", Some("[]")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.trim(), "[]");
    // A batch whose items are not objects: per-item 400s, batch still 200.
    let (status, body) = client::raw_request(&addr, "POST", "/analyze", Some("[1, 2]")).unwrap();
    assert_eq!(status, 200);
    let items = Json::parse(&body).unwrap();
    let items = items.as_arr().unwrap().to_vec();
    assert_eq!(items.len(), 2);
    assert!(items.iter().all(|i| i.get("status").and_then(Json::as_u64) == Some(400)));
    server.stop();
}

#[test]
fn concurrent_identical_submissions_coalesce_onto_one_driver_run() {
    // Plenty of workers so every client connection is served concurrently.
    let server = start_server(ServeOptions { workers: Some(6), ..ServeOptions::default() });
    let addr = server.addr().to_string();
    let gate = std::sync::Barrier::new(6);
    let verdicts: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(|| {
                    gate.wait();
                    let (status, doc) = client::analyze(&addr, &AnalyzeRequest::new(SAFE_SRC))
                        .expect("round-trips");
                    assert_eq!(status, 200, "{doc}");
                    doc.get("verdict").and_then(Json::as_str).unwrap().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    assert!(verdicts.iter().all(|v| v == "safe"), "{verdicts:?}");
    // The stampede collapsed onto exactly one driver run: everyone else
    // was coalesced onto the in-flight leader or answered from the cache
    // the leader filled.
    assert_eq!(server.stats().analyses_run.load(Ordering::SeqCst), 1);
    let coalesced = server.stats().coalesced.load(Ordering::SeqCst);
    let hits = server.cache().hits();
    assert_eq!(coalesced + hits, 5, "coalesced {coalesced} + cache hits {hits}");
    server.stop();
}

/// The Table-1 acceptance run: all 24 benchmark sources in one batch POST,
/// answered in submission order with verdicts identical to the committed
/// `BENCH_table1.json` snapshot. Slow (it really analyzes all 24), so
/// ignored in tier-1 runs; CI's snapshot job runs it in release.
#[test]
#[ignore = "analyzes all 24 Table-1 benchmarks; run explicitly or in CI (release)"]
fn batch_of_all_table1_sources_matches_the_committed_snapshot() {
    let snapshot_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_table1.json");
    let snapshot = std::fs::read_to_string(snapshot_path).expect("committed snapshot");
    let snapshot = Json::parse(&snapshot).expect("snapshot parses");
    let rows = snapshot.get("benchmarks").and_then(Json::as_arr).expect("benchmarks array");
    let expected: std::collections::HashMap<&str, &str> = rows
        .iter()
        .map(|row| {
            (
                row.get("name").and_then(Json::as_str).expect("row name"),
                // The snapshot's human vocabulary vs. the wire's code.
                match row.get("verdict").and_then(Json::as_str).expect("row verdict") {
                    "gave up" => "unknown",
                    v => v,
                },
            )
        })
        .collect();
    let benchmarks = blazer_benchmarks::all();
    let requests: Vec<AnalyzeRequest> = benchmarks
        .iter()
        .map(|b| {
            let mut req = AnalyzeRequest::new(b.source);
            req.function = Some(b.function.to_string());
            req.observer = match b.group {
                blazer_benchmarks::Group::MicroBench => "degree".to_string(),
                _ => "stac".to_string(),
            };
            req
        })
        .collect();
    assert_eq!(requests.len(), 24);
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let mut session = client::Session::connect(&addr).expect("session connects");
    let (status, doc) = session.analyze_batch(&requests).expect("batch round-trips");
    assert_eq!(status, 200, "{doc}");
    let items = doc.as_arr().expect("array response");
    assert_eq!(items.len(), 24, "one result per benchmark");
    for (b, item) in benchmarks.iter().zip(items) {
        assert_eq!(item.get("status").and_then(Json::as_u64), Some(200), "{}: {item}", b.name);
        // Submission order is preserved: the i-th answer analyzes the
        // i-th benchmark's function.
        assert_eq!(item.get("function").and_then(Json::as_str), Some(b.function), "{}", b.name);
        assert_eq!(
            item.get("verdict").and_then(Json::as_str),
            Some(expected[b.name]),
            "{} verdict drifted from the committed snapshot",
            b.name
        );
    }
    server.stop();
}

#[test]
fn portfolio_requests_report_winner_and_leakage_over_the_wire() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let mut attack = AnalyzeRequest::new(UNSAFE_SRC);
    attack.backend = blazer_portfolio::Backend::Portfolio;
    let (status, doc) = client::analyze(&addr, &attack).expect("portfolio round-trips");
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("portfolio"));
    // Self-composition can never soundly report an attack, so the
    // decomposition is the only possible winner of this race.
    assert_eq!(doc.get("winner").and_then(Json::as_str), Some("decomp"));
    assert!(
        doc.get("leakage_bits").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
        "an attack leaks at least one bit: {doc}"
    );
    let pf = doc.get("portfolio").expect("portfolio block");
    assert_eq!(pf.get("selfcomp_verified").and_then(Json::as_bool), Some(false));
    let attack_revoked = pf.get("revoked").and_then(Json::as_bool).expect("revoked flag");
    // The loser's counters stop advancing after revocation: the race
    // total equals the last backend's snapshot of the shared ledger —
    // nothing moved once both workers were down.
    let total = doc.get("budget").and_then(|b| b.get("lp_calls")).and_then(Json::as_u64).unwrap();
    let decomp_lp = pf.get("decomp").and_then(|c| c.get("lp_calls")).and_then(Json::as_u64);
    let selfcomp_lp = pf.get("selfcomp").and_then(|c| c.get("lp_calls")).and_then(Json::as_u64);
    assert_eq!(decomp_lp.max(selfcomp_lp), Some(total), "{pf}");
    if attack_revoked {
        let loser_done = pf
            .get("selfcomp")
            .and_then(|c| c.get("completed"))
            .and_then(Json::as_bool)
            .expect("loser completion flag");
        assert!(!loser_done, "a revoked loser did not run to completion: {pf}");
    }
    // A safe race answers zero bits, and some backend must win it.
    let mut safe = AnalyzeRequest::new(SAFE_SRC);
    safe.backend = blazer_portfolio::Backend::Portfolio;
    let (status, safe_doc) = client::analyze(&addr, &safe).expect("safe portfolio");
    assert_eq!(status, 200, "{safe_doc}");
    assert_eq!(safe_doc.get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(safe_doc.get("leakage_bits").and_then(Json::as_f64), Some(0.0));
    let safe_winner = safe_doc.get("winner").and_then(Json::as_str).expect("safe race has winner");
    let safe_revoked =
        safe_doc.get("portfolio").and_then(|p| p.get("revoked")).and_then(Json::as_bool).unwrap();
    // The winner is cacheable: a resubmission answers from the cache with
    // the race's provenance intact.
    let (status, again) = client::analyze(&addr, &attack).expect("cached portfolio");
    assert_eq!(status, 200);
    assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(again.get("winner").and_then(Json::as_str), Some("decomp"));
    // The /stats portfolio block is consistent with what we observed on
    // the wire: two races run (the cache hit is not a race), the winners
    // we saw, the revocations we saw.
    let (_, stats) = client::stats(&addr).expect("stats");
    let pstats = stats.get("portfolio").expect("portfolio stats block");
    assert_eq!(pstats.get("requests").and_then(Json::as_u64), Some(2), "{pstats}");
    let wins_decomp = pstats.get("wins_decomp").and_then(Json::as_u64).unwrap();
    let wins_selfcomp = pstats.get("wins_selfcomp").and_then(Json::as_u64).unwrap();
    assert!(wins_decomp >= if safe_winner == "decomp" { 2 } else { 1 }, "{pstats}");
    assert_eq!(wins_decomp + wins_selfcomp, 2, "every answered race had a winner: {pstats}");
    let expected_revocations = u64::from(attack_revoked) + u64::from(safe_revoked);
    assert_eq!(
        pstats.get("revocations").and_then(Json::as_u64),
        Some(expected_revocations),
        "{pstats}"
    );
    server.stop();
}

#[test]
fn starved_portfolio_request_is_422_and_the_service_keeps_serving() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    // Both backends exhaust the shared ledger immediately: no sound
    // verdict, no winner — a budget failure, not a crash.
    let mut starved = AnalyzeRequest::new(SAFE_SRC);
    starved.backend = blazer_portfolio::Backend::Portfolio;
    starved.timeout_s = Some(1e-9);
    let (status, doc) = client::analyze(&addr, &starved).expect("round-trips");
    assert_eq!(status, 422, "{doc}");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("budget exhausted")));
    // The service keeps serving, and the starved answer did not poison
    // the cache for a properly-budgeted portfolio resubmission.
    let mut healthy = AnalyzeRequest::new(SAFE_SRC);
    healthy.backend = blazer_portfolio::Backend::Portfolio;
    let (status, doc) = client::analyze(&addr, &healthy).expect("still serving");
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    // Both outcomes counted as portfolio traffic; only the healthy race
    // recorded a win.
    let (_, stats) = client::stats(&addr).expect("stats");
    let pstats = stats.get("portfolio").expect("portfolio stats block");
    assert_eq!(pstats.get("requests").and_then(Json::as_u64), Some(2), "{pstats}");
    let wins = pstats.get("wins_decomp").and_then(Json::as_u64).unwrap()
        + pstats.get("wins_selfcomp").and_then(Json::as_u64).unwrap();
    assert_eq!(wins, 1, "{pstats}");
    server.stop();
}

#[test]
fn verdict_cache_survives_a_restart() {
    let path = scratch_path("cache");
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let opts = || ServeOptions { cache_file: Some(path.clone()), ..ServeOptions::default() };
    let first_key;
    {
        let server = start_server(opts());
        let addr = server.addr().to_string();
        let (status, doc) = client::analyze(&addr, &req).expect("first run");
        assert_eq!(status, 200);
        first_key = doc.get("key").and_then(Json::as_str).unwrap().to_string();
        server.stop();
    }
    {
        let server = start_server(opts());
        let addr = server.addr().to_string();
        let (status, doc) = client::analyze(&addr, &req).expect("after restart");
        assert_eq!(status, 200, "{doc}");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("key").and_then(Json::as_str), Some(first_key.as_str()));
        // The restarted server answered from disk without running the driver.
        assert_eq!(server.stats().analyses_run.load(Ordering::SeqCst), 0);
        server.stop();
    }
    let _ = std::fs::remove_file(&path);
}
