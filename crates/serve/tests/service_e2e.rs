//! End-to-end service tests: a real `Server` on an ephemeral port, spoken
//! to over TCP by the real client — the same path `blazer client` uses.

use blazer_core::{Blazer, Config, Verdict};
use blazer_ir::json::Json;
use blazer_serve::{client, AnalyzeRequest, ServeOptions, Server};
use std::sync::atomic::{AtomicUsize, Ordering};

const SAFE_SRC: &str = "fn check(high: int #high, low: int) { \
    if (high == 0) { let i: int = 0; while (i < low) { i = i + 1; } } \
    else { let i: int = low; while (i > 0) { i = i - 1; } } }";

const UNSAFE_SRC: &str = "fn leak(h: int #high) { if (h == 0) { tick(90); } else { tick(1); } }";

fn start_server(opts: ServeOptions) -> Server {
    Server::start(ServeOptions { addr: "127.0.0.1:0".to_string(), ..opts })
        .expect("bind ephemeral port")
}

fn scratch_path(stem: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "blazer-serve-{stem}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ))
}

/// The verdict a direct in-process run of the driver produces.
fn direct_verdict(source: &str, function: &str) -> Verdict {
    let program = blazer_lang::compile(source).expect("test source compiles");
    Blazer::new(Config::microbench()).analyze(&program, function).expect("analysis runs").verdict
}

#[test]
fn wire_verdicts_match_the_direct_driver() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    for (source, function) in [(SAFE_SRC, "check"), (UNSAFE_SRC, "leak")] {
        let (status, doc) =
            client::analyze(&addr, &AnalyzeRequest::new(source)).expect("request round-trips");
        assert_eq!(status, 200, "{doc}");
        let direct = direct_verdict(source, function);
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some(direct.code()));
        assert_eq!(doc.get("function").and_then(Json::as_str), Some(function));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        // An attack response carries the synthesized trail pair.
        if direct.is_attack() {
            assert!(!doc.get("attack").map(Json::is_null).unwrap_or(true));
        }
    }
    server.stop();
}

#[test]
fn resubmission_is_a_cache_hit() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let (status, first) = client::analyze(&addr, &req).expect("first request");
    assert_eq!(status, 200);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let (status, second) = client::analyze(&addr, &req).expect("second request");
    assert_eq!(status, 200);
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    // Identical payload apart from the provenance flag.
    assert_eq!(first.get("verdict"), second.get("verdict"));
    assert_eq!(first.get("key"), second.get("key"));
    // The hit is observable through GET /stats, as the issue requires.
    let (_, stats) = client::stats(&addr).expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("analyses_run").and_then(Json::as_u64), Some(1));
    // A different config is a different content address: no false hit.
    let mut zoned = req.clone();
    zoned.domain = blazer_core::DomainKind::Zone;
    let (_, third) = client::analyze(&addr, &zoned).expect("third request");
    assert_eq!(third.get("cached").and_then(Json::as_bool), Some(false));
    server.stop();
}

#[test]
fn malformed_requests_get_structured_errors_and_the_server_survives() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    // Body is not JSON at all.
    let (status, body) =
        client::raw_request(&addr, "POST", "/analyze", Some("{not json")).expect("round-trips");
    assert_eq!(status, 400);
    let doc = Json::parse(&body).expect("error body is JSON");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert!(doc.get("error").and_then(Json::as_str).is_some());
    // Unknown member, missing source, compile error: all structured 400s.
    for bad in [r#"{"frobnicate": 1}"#, r#"{"function": "f"}"#, r#"{"source": "fn broken( {"}"#] {
        let (status, body) =
            client::raw_request(&addr, "POST", "/analyze", Some(bad)).expect("round-trips");
        assert_eq!(status, 400, "{bad} -> {body}");
    }
    // Unknown routes and wrong methods are structured too.
    let (status, _) = client::raw_request(&addr, "GET", "/nope", None).expect("404 route");
    assert_eq!(status, 404);
    let (status, _) = client::raw_request(&addr, "DELETE", "/analyze", None).expect("405 route");
    assert_eq!(status, 405);
    // And the server is still alive and serving analyses.
    let (status, doc) =
        client::analyze(&addr, &AnalyzeRequest::new(UNSAFE_SRC)).expect("still serving");
    assert_eq!(status, 200);
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("attack"));
    let (_, stats) = client::stats(&addr).expect("stats");
    assert!(stats.get("client_errors").and_then(Json::as_u64).unwrap_or(0) >= 6);
    server.stop();
}

#[test]
fn exhausted_request_budget_is_a_422_and_the_server_keeps_serving() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr().to_string();
    let mut starved = AnalyzeRequest::new(SAFE_SRC);
    starved.timeout_s = Some(1e-9);
    let (status, doc) = client::analyze(&addr, &starved).expect("round-trips");
    assert_eq!(status, 422, "{doc}");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("unknown"));
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("budget exhausted")));
    assert!(doc.get("budget").is_some(), "budget report attached: {doc}");
    // Budget failures describe the request, not the program — they must
    // not poison the cache for a properly-budgeted resubmission.
    let (status, doc) =
        client::analyze(&addr, &AnalyzeRequest::new(SAFE_SRC)).expect("round-trips");
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    server.stop();
}

#[test]
fn verdict_cache_survives_a_restart() {
    let path = scratch_path("cache");
    let req = AnalyzeRequest::new(UNSAFE_SRC);
    let opts = || ServeOptions { cache_file: Some(path.clone()), ..ServeOptions::default() };
    let first_key;
    {
        let server = start_server(opts());
        let addr = server.addr().to_string();
        let (status, doc) = client::analyze(&addr, &req).expect("first run");
        assert_eq!(status, 200);
        first_key = doc.get("key").and_then(Json::as_str).unwrap().to_string();
        server.stop();
    }
    {
        let server = start_server(opts());
        let addr = server.addr().to_string();
        let (status, doc) = client::analyze(&addr, &req).expect("after restart");
        assert_eq!(status, 200, "{doc}");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("key").and_then(Json::as_str), Some(first_key.as_str()));
        // The restarted server answered from disk without running the driver.
        assert_eq!(server.stats().analyses_run.load(Ordering::SeqCst), 0);
        server.stop();
    }
    let _ = std::fs::remove_file(&path);
}
