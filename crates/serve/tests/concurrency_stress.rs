//! Concurrency stress tests for the sharded verdict cache and the
//! service-level single-flight: the committed evidence that the lock
//! refactor loses no inserts, double-counts no evictions, coalesces
//! duplicate work, and never lets persistence I/O delay a read.

use blazer_serve::cache::{CacheKey, VerdictCache};
use blazer_serve::sync::ShardedMap;
use blazer_serve::{client, AnalyzeRequest, ServeOptions, Server};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};

fn key(tag: u64) -> CacheKey {
    CacheKey::new(&format!("fn f() {{ tick({tag}); }}"), None, "stress-fingerprint")
}

/// 8 threads hammer one sharded cache with interleaved inserts and gets
/// over distinct keys. Each key is inserted exactly once, so every fresh
/// insert adds one live entry and every eviction retires one: the
/// accounting invariant `live entries + evictions == inserts` catches
/// both lost inserts (an entry vanishing without an eviction tick) and
/// double evictions (one departure counted twice). The size bound checks
/// the soft cap's documented overshoot of at most one entry per shard.
#[test]
fn stress_no_lost_inserts_and_no_double_evictions() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200;
    const CAP: usize = 64;
    const SHARDS: usize = 8;
    let cache = Arc::new(VerdictCache::in_memory_with(CAP, SHARDS));
    let gate = Arc::new(Barrier::new(THREADS as usize));
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                gate.wait();
                for i in 0..PER_THREAD {
                    let tag = worker * PER_THREAD + i;
                    cache.insert(&key(tag), format!("body-{tag}"));
                    // Interleaved hit/miss traffic on a neighbour key.
                    let _ = cache.get(&key(tag.saturating_sub(3)));
                }
            });
        }
    });
    let unique = THREADS * PER_THREAD;
    assert_eq!(
        cache.len() as u64 + cache.evictions(),
        unique,
        "every insert is either live or counted as exactly one eviction"
    );
    assert!(
        cache.len() <= CAP + SHARDS,
        "soft cap overshoots by at most one entry per shard: len={} cap={CAP} shards={SHARDS}",
        cache.len()
    );
    assert!(cache.hits() + cache.misses() == unique, "every get was counted once");
}

/// The same accounting invariant under *replacement* pressure, at the
/// layer that reports freshness. A re-insert of a key that was evicted
/// in between is legitimately fresh again, so the invariant must count
/// fresh-insert events (the `insert -> true` returns), not unique keys —
/// this is exactly the distinction a lost-insert bug would blur.
#[test]
fn stress_replacements_keep_the_accounting_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200;
    const CAP: usize = 64;
    const SHARDS: usize = 8;
    let map: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::new(CAP, SHARDS));
    let gate = Arc::new(Barrier::new(THREADS as usize));
    let fresh_events = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let map = Arc::clone(&map);
            let gate = Arc::clone(&gate);
            let fresh_events = Arc::clone(&fresh_events);
            scope.spawn(move || {
                gate.wait();
                for i in 0..PER_THREAD {
                    let tag = worker * PER_THREAD + i;
                    let k = format!("key-{tag}");
                    for _ in 0..2 {
                        if map.insert(&k, tag) {
                            fresh_events.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    let _ = map.get(&k);
                }
            });
        }
    });
    assert_eq!(
        map.len() as u64 + map.evictions(),
        fresh_events.load(Ordering::SeqCst),
        "every fresh-insert event is either live or counted as exactly one eviction"
    );
    assert!(
        fresh_events.load(Ordering::SeqCst) >= THREADS * PER_THREAD,
        "each distinct key was fresh at least once"
    );
    assert!(map.len() <= CAP + SHARDS);
}

/// 8 client threads race the same 4 tiny programs against a live server:
/// the driver must run exactly once per distinct program — every other
/// submission is either coalesced onto an in-flight leader or a cache
/// hit. This is the service-level proof that sharding the single-flight
/// kept its exactly-once guarantee.
#[test]
fn single_flight_runs_each_distinct_program_once_under_contention() {
    const THREADS: usize = 8;
    const PROGRAMS: u64 = 4;
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: Some(THREADS),
        queue_depth: THREADS * 2,
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let gate = Barrier::new(THREADS);
    let submitted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let addr = &addr;
            let gate = &gate;
            let submitted = &submitted;
            scope.spawn(move || {
                gate.wait();
                for round in 0..PROGRAMS {
                    // Rotate the start program per worker so every program
                    // sees concurrent duplicate submissions.
                    let tag = (worker as u64 + round) % PROGRAMS;
                    let source = format!("fn f(h: int #high) {{ tick({}); }}", 7 + tag);
                    let (status, doc) = client::analyze(addr, &AnalyzeRequest::new(source))
                        .expect("request round-trips");
                    assert_eq!(status, 200, "{doc}");
                    submitted.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let total = submitted.load(Ordering::SeqCst);
    assert_eq!(total, (THREADS as u64) * PROGRAMS);
    let stats = server.stats();
    let runs = stats.analyses_run.load(Ordering::SeqCst);
    let coalesced = stats.coalesced.load(Ordering::SeqCst);
    let hits = server.cache().hits();
    assert_eq!(runs, PROGRAMS, "exactly one driver run per distinct program");
    assert_eq!(
        coalesced + hits + runs,
        total,
        "every submission was a run, a coalesce, or a cache hit"
    );
    server.stop();
}

/// A writer whose `write` parks on a condvar gate: it signals that an
/// append has entered the sink, then blocks until released. While it is
/// blocked, the persistence mutex is held — the test then proves reads
/// (including of the very entry whose append is stalled) still complete.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    signal: Condvar,
}

#[derive(Default)]
struct GateState {
    entered: bool,
    released: bool,
}

struct GateWriter(Arc<Gate>);

impl Write for GateWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().unwrap();
        state.entered = true;
        self.0.signal.notify_all();
        while !state.released {
            state = self.0.signal.wait(state).unwrap();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn stalled_append_never_delays_reads() {
    let gate = Arc::new(Gate::default());
    let cache =
        Arc::new(VerdictCache::with_append_sink(Box::new(GateWriter(Arc::clone(&gate))), 16, 4));
    let stalled = key(1);
    let writer = {
        let cache = Arc::clone(&cache);
        let stalled = stalled.clone();
        std::thread::spawn(move || cache.insert(&stalled, "stalled-body".to_string()))
    };
    // Wait until the insert is provably parked *inside* the append.
    {
        let mut state = gate.state.lock().unwrap();
        while !state.entered {
            state = gate.signal.wait(state).unwrap();
        }
    }
    // The entry went into the map before the append began: it is readable
    // even though its own persistence record is still stalled.
    assert_eq!(cache.get(&stalled).as_deref(), Some("stalled-body"));
    assert_eq!(cache.get(&key(2)), None, "misses don't touch the persist mutex either");
    // Release the writer so the insert can finish.
    {
        let mut state = gate.state.lock().unwrap();
        state.released = true;
        gate.signal.notify_all();
    }
    writer.join().expect("stalled insert completes");
}

/// A sink that fails every append: persistence trouble must cost a log
/// line, never correctness — the cache keeps serving from memory.
struct BrokenWriter;

impl Write for BrokenWriter {
    fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::other("injected append failure"))
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Err(std::io::Error::other("injected flush failure"))
    }
}

#[test]
fn failing_append_sink_leaves_the_cache_serving() {
    let cache = VerdictCache::with_append_sink(Box::new(BrokenWriter), 16, 4);
    for tag in 0..8 {
        cache.insert(&key(tag), format!("body-{tag}"));
    }
    assert_eq!(cache.len(), 8);
    for tag in 0..8 {
        assert_eq!(cache.get(&key(tag)).as_deref(), Some(format!("body-{tag}").as_str()));
    }
    assert_eq!(cache.hits(), 8);
}
