//! Every benchmark is a *runnable* program, not just an analysis input:
//! each one executes without runtime faults on representative inputs, and
//! the unsafe/safe pairing shows up in measured costs exactly as the
//! benchmark descriptions claim.

use blazer_benchmarks::{all, by_name};
use blazer_interp::{Interp, SeededOracle, Value};
use blazer_ir::{Program, SecurityLabel, Type};

/// Representative inputs for a function signature (seeded).
fn inputs_for(p: &Program, func: &str, variant: u64) -> Vec<Value> {
    let f = p.function(func).unwrap();
    f.params()
        .iter()
        .enumerate()
        .map(|(i, param)| {
            let salt = variant.wrapping_mul(31).wrapping_add(i as u64);
            match f.var(param.var).ty {
                Type::Int => Value::Int((salt % 11) as i64 + 2),
                Type::Bool => Value::Int((salt % 2) as i64),
                Type::Array => {
                    let len = 3 + (salt % 5) as usize;
                    Value::array((0..len as i64).map(|k| (k + salt as i64) % 2).collect())
                }
            }
        })
        .collect()
}

#[test]
fn every_benchmark_runs_without_faults() {
    for b in all() {
        let p = b.compile();
        let interp = Interp::new(&p);
        for variant in 0..6 {
            let inputs = inputs_for(&p, b.function, variant);
            let mut oracle = SeededOracle::new(variant);
            let r = interp.run(b.function, &inputs, &mut oracle);
            assert!(r.is_ok(), "{} failed on variant {variant}: {:?}", b.name, r.err());
        }
    }
}

/// The safe/unsafe pairs differ exactly as advertised: varying only the
/// secret changes the cost of the unsafe variant and not the safe one
/// (modulo the two documented observer-model exceptions).
#[test]
fn pairs_differ_in_secret_sensitivity() {
    let check = |name: &str, expect_sensitive: bool| {
        let b = by_name(name).unwrap();
        let p = b.compile();
        let f = p.function(b.function).unwrap();
        let interp = Interp::new(&p);
        let mut costs = std::collections::BTreeSet::new();
        for secret in 0..8u64 {
            let inputs: Vec<Value> = f
                .params()
                .iter()
                .map(|param| match (param.label, f.var(param.var).ty) {
                    (SecurityLabel::Low, Type::Int) => Value::Int(6),
                    (SecurityLabel::Low, Type::Bool) => Value::Int(1),
                    (SecurityLabel::Low, Type::Array) => Value::array(vec![1, 0, 1, 0]),
                    (SecurityLabel::High, Type::Int) => Value::Int(secret as i64 * 3),
                    (SecurityLabel::High, Type::Bool) => Value::Int((secret % 2) as i64),
                    (SecurityLabel::High, Type::Array) => {
                        // Same length, different contents: the in-model secret.
                        Value::array((0..4).map(|k| ((secret >> k) & 1) as i64).collect())
                    }
                })
                .collect();
            // Fixed oracle seed: the extern environment is low.
            let t = interp.run(b.function, &inputs, &mut SeededOracle::new(1)).unwrap();
            costs.insert(t.cost);
        }
        assert_eq!(costs.len() > 1, expect_sensitive, "{name}: cost set {costs:?}");
    };

    for (safe, unsafe_) in [
        ("array_safe", "array_unsafe"),
        ("sanity_safe", "sanity_unsafe"),
        ("modPow1_safe", "modPow1_unsafe"),
        ("k96_safe", "k96_unsafe"),
    ] {
        check(safe, false);
        check(unsafe_, true);
    }
}

#[test]
fn login_pair_with_pinned_store() {
    // Pin the password store and vary the guess prefix: the unsafe
    // variant's cost tracks the matching prefix, the safe one's does not.
    for (name, sensitive) in [("login_safe", false), ("login_unsafe", true)] {
        let b = by_name(name).unwrap();
        let p = b.compile();
        let interp = Interp::new(&p);
        let username = Value::array(vec![1, 2]);
        let mut costs = std::collections::BTreeSet::new();
        for prefix in 0..4 {
            let mut pw = vec![9, 9, 9, 9];
            for slot in pw.iter_mut().take(prefix) {
                *slot = 1;
            }
            let guess = Value::array(vec![1, 1, 1, 1]);
            let mut oracle =
                SeededOracle::new(0).with_override("retrievePassword", Value::array(pw));
            let t = interp.run(b.function, &[username.clone(), guess], &mut oracle).unwrap();
            costs.insert(t.cost);
        }
        assert_eq!(costs.len() > 1, sensitive, "{name}: {costs:?}");
    }
}
