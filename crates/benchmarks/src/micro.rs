//! The 12 hand-crafted MicroBench programs.
//!
//! These "are hand-crafted to exercise the various aspects of Blazer"
//! (Sec. 6.1). `loopAndBranch` and the unix login appear in Fig. 3; the
//! others are reconstructed from their names and the paper's description.
//! The observer model is degree equivalence with a small attacker constant.

use crate::{Benchmark, Expected, Group};

fn micro(
    name: &'static str,
    function: &'static str,
    source: &'static str,
    expected: Expected,
) -> Benchmark {
    Benchmark { name, group: Group::MicroBench, function, source, expected }
}

/// `array_safe`: a loop over a public array with a secret branch whose two
/// arms cost the same.
pub const ARRAY_SAFE: &str = "\
fn array_safe(high: int #high, list: array) {
    let i: int = 0;
    let t: int = 0;
    while (i < len(list)) {
        if (high > 0) {
            t = t + 1;
        } else {
            t = t + 2;
        }
        i = i + 1;
    }
}
";

/// `array_unsafe`: the same loop with unbalanced secret arms.
pub const ARRAY_UNSAFE: &str = "\
fn array_unsafe(high: int #high, list: array) {
    let i: int = 0;
    let t: int = 0;
    while (i < len(list)) {
        if (high > 0) {
            t = t + list[i];
            tick(40);
        } else {
            t = t + 1;
        }
        i = i + 1;
    }
}
";

/// `loopBranch_safe`: Fig. 3's `loopAndbranch_safe`. The running time is a
/// tight function of `high` on every feasible path, and the potentially
/// vulnerable third path is infeasible (caught by the abstract
/// interpreter).
pub const LOOP_BRANCH_SAFE: &str = "\
fn loopAndbranch_safe(high: int #high, low: int) {
    let i: int = high;
    if (low < 0) {
        while (i > 0) { i = i - 1; }
    } else {
        let nlow: int = low + 10;
        if (nlow >= 10) {
            let j: int = high;
            while (j > 0) { j = j - 1; }
        } else {
            if (high < 0) {
                let k: int = high;
                while (k > 0) { k = k - 1; }
            }
        }
    }
}
";

/// `loopBranch_unsafe`: for non-negative `low` the secret decides between a
/// `high`-length loop and a constant.
pub const LOOP_BRANCH_UNSAFE: &str = "\
fn loopAndbranch_unsafe(high: int #high, low: int) {
    let i: int = high;
    if (low < 0) {
        while (i > 0) { i = i - 1; }
    } else {
        if (high >= 10) {
            let j: int = high;
            while (j > 0) { j = j - 1; }
        } else {
            tick(1);
        }
    }
}
";

/// `nosecret_safe`: no secret input at all.
pub const NOSECRET_SAFE: &str = "\
fn nosecret_safe(low: int) {
    let i: int = 0;
    while (i < low) { i = i + 1; }
}
";

/// `notaint_unsafe`: no attacker-controlled input, but a blatant secret
/// imbalance.
pub const NOTAINT_UNSAFE: &str = "\
fn notaint_unsafe(high: int #high) {
    if (high == 0) {
        tick(50);
    } else {
        tick(1);
    }
}
";

/// `sanity_safe`: Example 1 from Sec. 2 — a secret branch whose two arms
/// both take time linear in `low` with the same coefficient.
pub const SANITY_SAFE: &str = "\
fn sanity_safe(high: int #high, low: int) {
    if (high == 0) {
        let i: int = 0;
        while (i < low) { i = i + 1; }
    } else {
        let i: int = low;
        while (i > 0) { i = i - 1; }
    }
}
";

/// `sanity_unsafe`: one secret arm loops, the other is constant.
pub const SANITY_UNSAFE: &str = "\
fn sanity_unsafe(high: int #high, low: int) {
    if (high == 0) {
        let i: int = 0;
        while (i < low) { i = i + 1; }
    } else {
        tick(1);
    }
}
";

/// `straightline_safe`: no branches; the secret flows through data only.
pub const STRAIGHTLINE_SAFE: &str = "\
fn straightline_safe(high: int #high, low: int) {
    let a: int = low + 1;
    let b: int = a * 2;
    let c: int = high + b;
    let d: int = c - high;
    let e: int = d * d;
}
";

/// `straightline_unsafe`: a secret branch between one large straight-line
/// block (the paper notes a 90-instruction block) and a tiny one.
pub const STRAIGHTLINE_UNSAFE: &str = "\
fn straightline_unsafe(high: int #high, low: int) {
    let t: int = low;
    if (high == 0) {
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
        t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
    } else {
        t = t + 1;
        t = t + 2;
    }
}
";

/// `unixlogin_safe`: the classic Unix login fix — hash the password whether
/// or not the username exists, so both secret arms cost the same.
pub const UNIXLOGIN_SAFE: &str = "\
extern fn containsKey(u: array) -> bool #high cost 10;
extern fn mapGet(u: array) -> array #high cost 10 len 16..16;
extern fn md5(p: array) -> array cost 500 len 16..16;
extern fn arrEquals(a: array, b: array) -> bool cost 16;

fn unixlogin_safe(u: array, p: array) -> bool {
    let outcome: bool = false;
    let exists: bool = containsKey(u);
    if (exists) {
        let stored: array = mapGet(u);
        let h: array = md5(p);
        outcome = arrEquals(stored, h);
    } else {
        let dummy: array = mapGet(u);
        let h2: array = md5(p);
        let sink: bool = arrEquals(dummy, h2);
    }
    return outcome;
}
";

/// `unixlogin_unsafe`: the original leak — the hash only runs when the
/// username exists, so timing reveals valid usernames.
pub const UNIXLOGIN_UNSAFE: &str = "\
extern fn containsKey(u: array) -> bool #high cost 10;
extern fn mapGet(u: array) -> array #high cost 10 len 16..16;
extern fn md5(p: array) -> array cost 500 len 16..16;
extern fn arrEquals(a: array, b: array) -> bool cost 16;

fn unixlogin_unsafe(u: array, p: array) -> bool {
    let outcome: bool = false;
    let exists: bool = containsKey(u);
    if (exists) {
        let stored: array = mapGet(u);
        let h: array = md5(p);
        outcome = arrEquals(stored, h);
    } else {
        outcome = false;
    }
    return outcome;
}
";

/// The 12 MicroBench entries in Table-1 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        micro("array_safe", "array_safe", ARRAY_SAFE, Expected::Safe),
        micro("array_unsafe", "array_unsafe", ARRAY_UNSAFE, Expected::Attack),
        micro("loopBranch_safe", "loopAndbranch_safe", LOOP_BRANCH_SAFE, Expected::Safe),
        micro("loopBranch_unsafe", "loopAndbranch_unsafe", LOOP_BRANCH_UNSAFE, Expected::Attack),
        micro("nosecret_safe", "nosecret_safe", NOSECRET_SAFE, Expected::Safe),
        micro("notaint_unsafe", "notaint_unsafe", NOTAINT_UNSAFE, Expected::Attack),
        micro("sanity_safe", "sanity_safe", SANITY_SAFE, Expected::Safe),
        micro("sanity_unsafe", "sanity_unsafe", SANITY_UNSAFE, Expected::Attack),
        micro("straightline_safe", "straightline_safe", STRAIGHTLINE_SAFE, Expected::Safe),
        micro("straightline_unsafe", "straightline_unsafe", STRAIGHTLINE_UNSAFE, Expected::Attack),
        micro("unixlogin_safe", "unixlogin_safe", UNIXLOGIN_SAFE, Expected::Safe),
        micro("unixlogin_unsafe", "unixlogin_unsafe", UNIXLOGIN_UNSAFE, Expected::Attack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_compile() {
        for b in benchmarks() {
            let _ = b.compile();
        }
        assert_eq!(benchmarks().len(), 12);
    }
}
