//! The 6 DARPA STAC challenge fragments.
//!
//! `modPow1_safe` appears verbatim in Fig. 3: square-and-multiply modular
//! exponentiation over `java.math.BigInteger`, with the fix being a dummy
//! multiply on the zero-bit arm. The secret exponent is modeled as its bit
//! array; `BigInteger` arithmetic is modeled by extern calls with the
//! manually-specified cost summaries the paper describes (Sec. 6.1 assumes
//! 4096-bit operands).

use crate::{Benchmark, Expected, Group};

fn stac(
    name: &'static str,
    function: &'static str,
    source: &'static str,
    expected: Expected,
) -> Benchmark {
    Benchmark { name, group: Group::Stac, function, source, expected }
}

/// `modPow1_safe` (Fig. 3): balanced square-and-multiply.
pub const MODPOW1_SAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;

fn modPow1_safe(base: int, exponent: array #high, modulus: int) -> int {
    let s: int = 1;
    let width: int = len(exponent);
    let i: int = 0;
    while (i < width) {
        s = mulMod(s, s, modulus);
        let bit: int = exponent[width - i - 1];
        if (bit == 1) {
            s = mulMod(s, base, modulus);
        } else {
            let dummy: int = mulMod(s, base, modulus);
        }
        i = i + 1;
    }
    return s;
}
";

/// `modPow1_unsafe`: the dummy multiply removed — each set bit of the
/// secret exponent costs an extra multiplication.
pub const MODPOW1_UNSAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;

fn modPow1_unsafe(base: int, exponent: array #high, modulus: int) -> int {
    let s: int = 1;
    let width: int = len(exponent);
    let i: int = 0;
    while (i < width) {
        s = mulMod(s, s, modulus);
        let bit: int = exponent[width - i - 1];
        if (bit == 1) {
            s = mulMod(s, base, modulus);
        }
        i = i + 1;
    }
    return s;
}
";

/// `modPow2_safe`: a larger windowed variant with per-window table lookups;
/// every secret branch is balanced.
pub const MODPOW2_SAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;
extern fn tableLookup(t: array, idx: int) -> int cost 24;

fn modPow2_safe(base: int, exponent: array #high, modulus: int, table: array) -> int {
    let s: int = 1;
    let width: int = len(exponent);
    let i: int = 0;
    while (i < width) {
        let w: int = 0;
        let j: int = 0;
        while (j < 2) {
            s = mulMod(s, s, modulus);
            let bit: int = 0;
            let idx: int = i + j;
            if (idx < width) {
                bit = exponent[idx];
            } else {
                bit = 0;
            }
            if (bit == 1) {
                w = w * 2 + 1;
            } else {
                w = w * 2 + 0;
            }
            j = j + 1;
        }
        if (w > 0) {
            let factor: int = tableLookup(table, w);
            s = mulMod(s, factor, modulus);
        } else {
            let factor2: int = tableLookup(table, 1);
            let dummy: int = mulMod(s, factor2, modulus);
        }
        i = i + 2;
    }
    return s;
}
";

/// `modPow2_unsafe`: the windowed variant with the zero-window shortcut —
/// secret-dependent multiplications and lookups.
pub const MODPOW2_UNSAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;
extern fn tableLookup(t: array, idx: int) -> int cost 24;

fn modPow2_unsafe(base: int, exponent: array #high, modulus: int, table: array) -> int {
    let s: int = 1;
    let width: int = len(exponent);
    let i: int = 0;
    while (i < width) {
        let w: int = 0;
        let j: int = 0;
        while (j < 2) {
            s = mulMod(s, s, modulus);
            if (i + j < width) {
                let bit: int = exponent[i + j];
                if (bit == 1) {
                    w = w * 2 + 1;
                }
            }
            j = j + 1;
        }
        if (w > 0) {
            let factor: int = tableLookup(table, w);
            s = mulMod(s, factor, modulus);
        }
        i = i + 2;
    }
    return s;
}
";

/// `pwdEqual_safe`: length-independent byte comparison — no early exit, and
/// both mismatch arms cost the same.
pub const PWDEQUAL_SAFE: &str = "\
fn pwdEqual_safe(pw: array #high, guess: array) -> bool {
    let ok: bool = true;
    let i: int = 0;
    while (i < len(guess)) {
        if (i < len(pw)) {
            if (guess[i] != pw[i]) {
                ok = false;
            } else {
                let d: bool = true;
            }
        } else {
            ok = false;
            let d2: bool = true;
        }
        i = i + 1;
    }
    return ok;
}
";

/// `pwdEqual_unsafe`: the Tenex bug — return on the first mismatch, so the
/// running time reveals the length of the matching prefix.
pub const PWDEQUAL_UNSAFE: &str = "\
fn pwdEqual_unsafe(pw: array #high, guess: array) -> bool {
    let i: int = 0;
    while (i < len(guess)) {
        if (i >= len(pw)) { return false; }
        if (guess[i] != pw[i]) { return false; }
        tick(4);
        i = i + 1;
    }
    return true;
}
";

/// The 6 STAC entries in Table-1 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        stac("modPow1_safe", "modPow1_safe", MODPOW1_SAFE, Expected::Safe),
        stac("modPow1_unsafe", "modPow1_unsafe", MODPOW1_UNSAFE, Expected::Attack),
        stac("modPow2_safe", "modPow2_safe", MODPOW2_SAFE, Expected::Safe),
        stac("modPow2_unsafe", "modPow2_unsafe", MODPOW2_UNSAFE, Expected::Attack),
        stac("pwdEqual_safe", "pwdEqual_safe", PWDEQUAL_SAFE, Expected::Safe),
        stac("pwdEqual_unsafe", "pwdEqual_unsafe", PWDEQUAL_UNSAFE, Expected::Attack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_compile() {
        for b in benchmarks() {
            let _ = b.compile();
        }
        assert_eq!(benchmarks().len(), 6);
    }
}
