//! The 6 programs from the timing-attack literature.
//!
//! * `gpt14` — Genkin, Pipman, Tromer 2014 ("Get your hands off my
//!   laptop"): RSA decryption with a secret-dependent reduction; our unsafe
//!   variant additionally contains a multiplicative recombination loop that
//!   defeats the lemma database, reproducing the paper's one give-up.
//! * `k96` — Kocher 1996: square-and-multiply with the multiply performed
//!   only on set secret bits.
//! * `login` — Pasareanu, Phan, Malacaria 2016: the Fig. 1 `loginSafe` /
//!   `loginBad` pair (the Tenex password-checker bug).

use crate::{Benchmark, Expected, Group};

fn lit(
    name: &'static str,
    function: &'static str,
    source: &'static str,
    expected: Expected,
) -> Benchmark {
    Benchmark { name, group: Group::Literature, function, source, expected }
}

/// `gpt14_safe`: balanced decryption — the extra Montgomery reduction is
/// performed on both arms.
pub const GPT14_SAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;
extern fn reduce(a: int, m: int) -> int cost 80;

fn gpt14_safe(cipher: int, key: array #high, n: int) -> int {
    let s: int = 1;
    let i: int = 0;
    while (i < len(key)) {
        s = mulMod(s, s, n);
        let bit: int = key[i];
        if (bit == 1) {
            s = mulMod(s, cipher, n);
            s = reduce(s, n);
        } else {
            let d: int = mulMod(s, cipher, n);
            let d2: int = reduce(s, n);
        }
        i = i + 1;
    }
    return s;
}
";

/// `gpt14_unsafe`: the timing channel lives in the *trip count* of a
/// squaring recombination loop seeded by secret data. The squaring update
/// is outside the lemma database, so no trail gets an upper bound; loop
/// unrolling does produce bounded slices, but adjacent slices differ by
/// only a few instructions — below the 25k observable threshold — so
/// CHECKATTACK never fires either. Blazer gives up, reproducing the one
/// `–`-row of Table 1 (the physical side-channel attack of Genkin et al.
/// needed hardware-level observations far beyond this observer model).
pub const GPT14_UNSAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;

fn gpt14_unsafe(cipher: int, key: array #high, n: int) -> int {
    let s: int = 1;
    let i: int = 0;
    while (i < len(key)) {
        s = mulMod(s, s, n);
        i = i + 1;
    }
    let acc: int = key[0] + 2;
    while (acc < n) {
        acc = acc * acc;
    }
    return s;
}
";

/// `k96_safe`: Kocher's Diffie-Hellman exponentiation with the
/// multiply-always countermeasure.
pub const K96_SAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;

fn k96_safe(y: int, x: array #high, p: int) -> int {
    let s: int = 1;
    let r: int = 1;
    let k: int = 0;
    while (k < len(x)) {
        let rs: int = mulMod(r, s, p);
        let ss: int = mulMod(s, s, p);
        if (x[k] == 1) {
            r = rs;
        } else {
            let sink: int = rs;
        }
        s = ss;
        k = k + 1;
    }
    return r;
}
";

/// `k96_unsafe`: the original attack target — `R = R·s mod p` only when the
/// secret bit is set.
pub const K96_UNSAFE: &str = "\
extern fn mulMod(a: int, b: int, m: int) -> int cost 200;

fn k96_unsafe(y: int, x: array #high, p: int) -> int {
    let s: int = 1;
    let r: int = 1;
    let k: int = 0;
    while (k < len(x)) {
        if (x[k] == 1) {
            r = mulMod(r, s, p);
        }
        s = mulMod(s, s, p);
        k = k + 1;
    }
    return r;
}
";

/// `login_safe`: Fig. 1's `loginSafe` — scan the whole guess regardless of
/// where mismatches occur.
pub const LOGIN_SAFE: &str = "\
extern fn retrievePassword(u: array) -> array #high cost 30 len -1..64;

fn login_safe(username: array, guess: array) -> bool {
    let matches: bool = true;
    let dummy: bool = false;
    let user_pw: array = retrievePassword(username);
    if (user_pw == null) {
        return false;
    }
    let i: int = 0;
    while (i < len(guess)) {
        if (i < len(user_pw)) {
            if (guess[i] != user_pw[i]) {
                matches = false;
            } else {
                dummy = true;
            }
        } else {
            dummy = true;
            matches = false;
        }
        i = i + 1;
    }
    return matches;
}
";

/// `login_unsafe`: Fig. 1's `loginBad` — the Tenex bug, returning on the
/// first mismatch.
pub const LOGIN_UNSAFE: &str = "\
extern fn retrievePassword(u: array) -> array #high cost 30 len -1..64;

fn login_unsafe(username: array, guess: array) -> bool {
    let user_pw: array = retrievePassword(username);
    if (user_pw == null) {
        return false;
    }
    let i: int = 0;
    while (i < len(guess)) {
        if (i >= len(user_pw)) { return false; }
        if (guess[i] != user_pw[i]) { return false; }
        tick(4);
        i = i + 1;
    }
    return true;
}
";

/// The 6 Literature entries in Table-1 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        lit("gpt14_safe", "gpt14_safe", GPT14_SAFE, Expected::Safe),
        lit("gpt14_unsafe", "gpt14_unsafe", GPT14_UNSAFE, Expected::Unknown),
        lit("k96_safe", "k96_safe", K96_SAFE, Expected::Safe),
        lit("k96_unsafe", "k96_unsafe", K96_UNSAFE, Expected::Attack),
        lit("login_safe", "login_safe", LOGIN_SAFE, Expected::Safe),
        lit("login_unsafe", "login_unsafe", LOGIN_UNSAFE, Expected::Attack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_compile() {
        for b in benchmarks() {
            let _ = b.compile();
        }
        assert_eq!(benchmarks().len(), 6);
    }
}
