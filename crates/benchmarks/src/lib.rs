//! # blazer-benchmarks
//!
//! The paper's 24 evaluation benchmarks (Table 1) plus the worked examples
//! from Sections 2 and 7, rewritten in the `blazer-lang` surface language.
//!
//! Benchmarks come in safe/unsafe pairs across three groups:
//!
//! * **MicroBench** — 12 hand-crafted programs exercising the tool
//!   (analyzed with the degree-equivalence observer);
//! * **STAC** — 6 programs reconstructed from the DARPA Space/Time Analysis
//!   for Cybersecurity challenges (`modPow1/2`, `pwdEqual`);
//! * **Literature** — 6 programs from published timing attacks: Genkin et
//!   al. 2014 (`gpt14`), Kocher 1996 (`k96`), and Pasareanu et al. 2016
//!   (`login`, the Fig. 1 pair).
//!
//! STAC and Literature use the concrete-threshold observer (25k
//! instructions at 4096-magnitude inputs, Sec. 6.1). Expected verdicts
//! follow Table 1: every safe benchmark verifies, every unsafe benchmark
//! yields an attack specification — except `gpt14_unsafe`, where the tool
//! gives up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extra;
pub mod literature;
pub mod micro;
pub mod stac;

use std::fmt;

/// The benchmark group, which also selects the observer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Hand-crafted micro-benchmarks (degree-equivalence observer).
    MicroBench,
    /// DARPA STAC challenge fragments (threshold observer).
    Stac,
    /// Programs from the attack literature (threshold observer).
    Literature,
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Group::MicroBench => f.write_str("MicroBench"),
            Group::Stac => f.write_str("STAC"),
            Group::Literature => f.write_str("Literature"),
        }
    }
}

/// The verdict Table 1 reports for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Safety is verified.
    Safe,
    /// An attack specification is synthesized.
    Attack,
    /// The tool gives up (only `gpt14_unsafe`).
    Unknown,
}

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Table-1 name, e.g. `"login_safe"`.
    pub name: &'static str,
    /// Group (selects the observer).
    pub group: Group,
    /// The function to analyze.
    pub function: &'static str,
    /// Surface-language source.
    pub source: &'static str,
    /// The verdict the paper reports.
    pub expected: Expected,
}

impl Benchmark {
    /// Compiles the benchmark to IR.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to compile (a bug in this crate).
    pub fn compile(&self) -> blazer_ir::Program {
        blazer_lang::compile(self.source)
            .unwrap_or_else(|e| panic!("benchmark {} does not compile: {e}", self.name))
    }
}

/// All 24 Table-1 benchmarks in table order.
pub fn all() -> Vec<Benchmark> {
    let mut v = micro::benchmarks();
    v.extend(stac::benchmarks());
    v.extend(literature::benchmarks());
    v
}

/// Looks up a benchmark by its Table-1 name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_benchmarks_in_pairs() {
        let all = all();
        assert_eq!(all.len(), 24);
        assert_eq!(all.iter().filter(|b| b.group == Group::MicroBench).count(), 12);
        assert_eq!(all.iter().filter(|b| b.group == Group::Stac).count(), 6);
        assert_eq!(all.iter().filter(|b| b.group == Group::Literature).count(), 6);
        // Names are unique.
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn every_benchmark_compiles_and_validates() {
        for b in all() {
            let p = b.compile();
            assert_eq!(p.validate(), Ok(()), "{}", b.name);
            assert!(p.function(b.function).is_some(), "{} lacks function {}", b.name, b.function);
        }
    }

    #[test]
    fn safe_unsafe_pairing() {
        // Every *_unsafe has a *_safe partner except notaint/nosecret which
        // pair with each other conceptually.
        let all = all();
        for b in &all {
            if let Some(stem) = b.name.strip_suffix("_unsafe") {
                if stem == "notaint" {
                    continue;
                }
                assert!(
                    all.iter().any(|o| o.name == format!("{stem}_safe")),
                    "{} lacks a safe partner",
                    b.name
                );
            }
        }
    }

    #[test]
    fn expected_verdicts_match_table_1() {
        // All safe verified; all unsafe attacks except gpt14_unsafe.
        for b in all() {
            if b.name.ends_with("_safe") {
                assert_eq!(b.expected, Expected::Safe, "{}", b.name);
            } else if b.name == "gpt14_unsafe" {
                assert_eq!(b.expected, Expected::Unknown);
            } else {
                assert_eq!(b.expected, Expected::Attack, "{}", b.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("login_safe").is_some());
        assert!(by_name("modPow2_unsafe").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
