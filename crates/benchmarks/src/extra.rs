//! The worked examples of Sections 2 and 7 (not part of Table 1): the
//! two-partition example, the paper's Fig. 1 listing sources, and the two
//! programs type systems reject but Blazer proves safe.

/// Example 1 (Sec. 2.1): both secret arms take time linear in `low` — a
/// single partition component suffices.
pub const EXAMPLE1_FOO: &str = "\
fn foo(high: int #high, low: int) {
    if (high == 0) {
        let i: int = 0;
        while (i < low) { i = i + 1; }
    } else {
        let i: int = low;
        while (i > 0) { i = i - 1; }
    }
}
";

/// Example 2 (Sec. 2.1): requires the partition `{low > 0, low ≤ 0}`.
pub const EXAMPLE2_BAR: &str = "\
fn bar(high: int #high, low: int) {
    if (low > 0) {
        let i: int = 0;
        while (i < low) { i = i + 1; }
        while (i > 0) { i = i - 1; }
    } else {
        if (high == 0) {
            let a: int = 5;
        } else {
            let a: int = 0;
            a = a + 1;
        }
    }
}
";

/// Sec. 7 `ex1`: the secret loop is dead code; type systems reject it,
/// infeasible-path pruning accepts it.
pub const SEC7_EX1: &str = "\
fn ex1(x: int, h: int #high) {
    let c: int = 0;
    if (c == 1) {
        while (h < x) { h = h + 1; }
    }
}
";

/// Sec. 7 `ex2`: two compensating secret branches; every path costs the
/// same even though each branch is secret-dependent.
pub const SEC7_EX2: &str = "\
fn ex2(x: int, h: int #high) {
    if (h > x) {
        tick(1);
    } else {
        tick(1);
        tick(1);
    }
    if (h <= x) {
        tick(1);
        tick(1);
    } else {
        tick(1);
    }
}
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_compile() {
        for (name, src) in
            [("foo", EXAMPLE1_FOO), ("bar", EXAMPLE2_BAR), ("ex1", SEC7_EX1), ("ex2", SEC7_EX2)]
        {
            let p = blazer_lang::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.validate(), Ok(()), "{name}");
        }
    }
}
