//! Deterministic finite automata: subset construction, complement,
//! minimization.

use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::Sym;
use blazer_ir::budget::{self, Exhausted};
use std::collections::{BTreeMap, BTreeSet};

/// How many worklist pops the budgeted loops allow between deadline polls.
pub(crate) const BUDGET_POLL_PERIOD: usize = 16;

/// A complete DFA over the alphabet `0..alphabet_size`.
///
/// Completeness (every state has a transition on every symbol, possibly to a
/// dead state) makes complementation a flip of the accepting set.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet_size: u32,
    /// `trans[q * alphabet_size + s]` = successor state.
    trans: Vec<usize>,
    start: usize,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA from a regex (Thompson + subset construction).
    pub fn from_regex(r: &Regex, alphabet_size: u32) -> Self {
        Dfa::from_nfa(&Nfa::from_regex(r, alphabet_size))
    }

    /// [`Dfa::from_regex`] cooperating with the installed
    /// `blazer_ir::budget`: a pathological regex whose determinization
    /// explodes reports [`Exhausted`] instead of blowing past the deadline.
    pub fn try_from_regex(r: &Regex, alphabet_size: u32) -> Result<Self, Exhausted> {
        Dfa::try_from_nfa(&Nfa::from_regex(r, alphabet_size))
    }

    /// Determinizes an NFA by subset construction. The result is complete.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        Dfa::subset_construct(nfa, false).expect("unbudgeted construction cannot exhaust")
    }

    /// [`Dfa::from_nfa`] cooperating with the installed budget (polled
    /// every [`BUDGET_POLL_PERIOD`] explored subset states).
    pub fn try_from_nfa(nfa: &Nfa) -> Result<Self, Exhausted> {
        Dfa::subset_construct(nfa, true)
    }

    fn subset_construct(nfa: &Nfa, budgeted: bool) -> Result<Self, Exhausted> {
        let alphabet_size = nfa.alphabet_size();
        let start_set = nfa.eps_closure(&BTreeSet::from([nfa.start()]));
        let mut index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        let mut trans: Vec<usize> = Vec::new();
        index.insert(start_set.clone(), 0);
        sets.push(start_set);
        let mut work = vec![0usize];
        let mut pops = 0usize;
        while let Some(q) = work.pop() {
            pops += 1;
            if budgeted && pops % BUDGET_POLL_PERIOD == 1 {
                budget::check()?;
            }
            let set = sets[q].clone();
            // Reserve the transition row (rows are pushed in state order, so
            // extend lazily).
            while trans.len() < (q + 1) * alphabet_size as usize {
                trans.push(usize::MAX);
            }
            for sym in 0..alphabet_size {
                let next = nfa.eps_closure(&nfa.step(&set, sym));
                let target = match index.get(&next) {
                    Some(&t) => t,
                    None => {
                        let t = sets.len();
                        index.insert(next.clone(), t);
                        sets.push(next);
                        work.push(t);
                        t
                    }
                };
                trans[q * alphabet_size as usize + sym as usize] = target;
            }
        }
        while trans.len() < sets.len() * alphabet_size as usize {
            trans.push(usize::MAX);
        }
        let accepting =
            sets.iter().map(|s| s.iter().any(|q| nfa.accepting().contains(q))).collect();
        Ok(Dfa { alphabet_size, trans, start: 0, accepting })
    }

    /// Assembles a DFA directly from an already-deterministic transition
    /// table. Callers ([`Dfa::from_parts`]) validate the shape;
    /// this is the raw constructor that keeps the fields encapsulated
    /// without round-tripping through a subset construction.
    pub(crate) fn from_raw_parts(
        alphabet_size: u32,
        trans: Vec<usize>,
        start: usize,
        accepting: Vec<bool>,
    ) -> Dfa {
        debug_assert_eq!(trans.len(), accepting.len() * alphabet_size as usize);
        Dfa { alphabet_size, trans, start, accepting }
    }

    /// The alphabet size.
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// The number of states.
    pub fn n_states(&self) -> usize {
        self.accepting.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting[q]
    }

    /// The successor of `q` on `sym`.
    pub fn next(&self, q: usize, sym: Sym) -> usize {
        self.trans[q * self.alphabet_size as usize + sym as usize]
    }

    /// Runs the DFA on `word`.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut q = self.start;
        for &sym in word {
            q = self.next(q, sym);
        }
        self.accepting[q]
    }

    /// The complement DFA (same structure, flipped acceptance).
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet_size: self.alphabet_size,
            trans: self.trans.clone(),
            start: self.start,
            accepting: self.accepting.iter().map(|&a| !a).collect(),
        }
    }

    /// Whether the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.n_states()];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(q) = stack.pop() {
            if self.accepting[q] {
                return false;
            }
            for sym in 0..self.alphabet_size {
                let t = self.next(q, sym);
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if the language is non-empty (BFS).
    pub fn example_word(&self) -> Option<Vec<Sym>> {
        let mut prev: Vec<Option<(usize, Sym)>> = vec![None; self.n_states()];
        let mut seen = vec![false; self.n_states()];
        let mut queue = std::collections::VecDeque::from([self.start]);
        seen[self.start] = true;
        while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                let mut word = Vec::new();
                let mut cur = q;
                while let Some((p, s)) = prev[cur] {
                    word.push(s);
                    cur = p;
                }
                word.reverse();
                return Some(word);
            }
            for sym in 0..self.alphabet_size {
                let t = self.next(q, sym);
                if !seen[t] {
                    seen[t] = true;
                    prev[t] = Some((q, sym));
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// Moore's minimization algorithm. Exact for complete DFAs.
    ///
    /// Unreachable states are stripped before partitioning: Moore
    /// refinement alone would happily keep a class for a state no word can
    /// reach, so hand-assembled or lazily materialized inputs with
    /// unreachable structure would come out non-minimal.
    pub fn minimize(&self) -> Dfa {
        let reachable = self.reachable_restriction();
        let n = reachable.n_states();
        let this = &reachable;
        // Initial partition: accepting vs rejecting.
        let mut class: Vec<usize> = this.accepting.iter().map(|&a| usize::from(a)).collect();
        let mut n_classes = 2;
        loop {
            // Signature = (class, classes of successors).
            let mut sig_index: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut new_class = vec![0usize; n];
            for q in 0..n {
                let succ_classes: Vec<usize> =
                    (0..this.alphabet_size).map(|s| class[this.next(q, s)]).collect();
                let key = (class[q], succ_classes);
                let next_id = sig_index.len();
                let id = *sig_index.entry(key).or_insert(next_id);
                new_class[q] = id;
            }
            let new_count = sig_index.len();
            if new_count == n_classes {
                class = new_class;
                break;
            }
            class = new_class;
            n_classes = new_count;
        }
        // Rebuild over classes.
        let mut trans = vec![usize::MAX; n_classes * this.alphabet_size as usize];
        let mut accepting = vec![false; n_classes];
        for q in 0..n {
            let c = class[q];
            accepting[c] = this.accepting[q];
            for s in 0..this.alphabet_size {
                trans[c * this.alphabet_size as usize + s as usize] = class[this.next(q, s)];
            }
        }
        Dfa { alphabet_size: this.alphabet_size, trans, start: class[this.start], accepting }
    }

    /// The same DFA restricted to states reachable from the start, keeping
    /// the original relative order of the surviving indices. Returns a
    /// clone-equivalent when everything is already reachable.
    fn reachable_restriction(&self) -> Dfa {
        let n = self.n_states();
        let mut seen = vec![false; n];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(q) = stack.pop() {
            for sym in 0..self.alphabet_size {
                let t = self.next(q, sym);
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            return self.clone();
        }
        let mut renumber = vec![usize::MAX; n];
        let mut kept = 0usize;
        for q in 0..n {
            if seen[q] {
                renumber[q] = kept;
                kept += 1;
            }
        }
        let mut trans = Vec::with_capacity(kept * self.alphabet_size as usize);
        let mut accepting = Vec::with_capacity(kept);
        for q in 0..n {
            if !seen[q] {
                continue;
            }
            for sym in 0..self.alphabet_size {
                trans.push(renumber[self.next(q, sym)]);
            }
            accepting.push(self.accepting[q]);
        }
        Dfa { alphabet_size: self.alphabet_size, trans, start: renumber[self.start], accepting }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfa(r: &Regex, alpha: u32) -> Dfa {
        Dfa::from_regex(r, alpha)
    }

    #[test]
    fn subset_construction_matches_nfa() {
        let r = Regex::symbol(0).or(Regex::symbol(1)).star().then(Regex::symbol(1));
        let d = dfa(&r, 2);
        assert!(d.accepts(&[1]));
        assert!(d.accepts(&[0, 0, 1]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn complement_flips_membership() {
        let r = Regex::symbol(0).star();
        let d = dfa(&r, 2);
        let c = d.complement();
        for word in [&[][..], &[0][..], &[0, 0][..], &[1][..], &[0, 1][..]] {
            assert_eq!(d.accepts(word), !c.accepts(word), "{word:?}");
        }
    }

    #[test]
    fn emptiness() {
        assert!(dfa(&Regex::Empty, 1).is_empty());
        assert!(!dfa(&Regex::Epsilon, 1).is_empty());
        assert!(!dfa(&Regex::symbol(0), 1).is_empty());
        // 0 ∩ complement(0) is empty — via ops, but also: complement of Σ*.
        let all = Regex::symbol(0).star();
        assert!(dfa(&all, 1).complement().is_empty());
    }

    #[test]
    fn example_word_is_shortest() {
        let r = Regex::symbol(0)
            .then(Regex::symbol(1))
            .or(Regex::symbol(0).then(Regex::symbol(1)).then(Regex::symbol(1)));
        let d = dfa(&r, 2);
        assert_eq!(d.example_word(), Some(vec![0, 1]));
        assert_eq!(dfa(&Regex::Empty, 1).example_word(), None);
        assert_eq!(dfa(&Regex::Epsilon, 1).example_word(), Some(vec![]));
    }

    #[test]
    fn minimization_preserves_language() {
        // (0|1)*1(0|1) — requires at least 4 states minimized.
        let any = Regex::symbol(0).or(Regex::symbol(1));
        let r = any.clone().star().then(Regex::symbol(1)).then(any);
        let d = dfa(&r, 2);
        let m = d.minimize();
        assert!(m.n_states() <= d.n_states());
        for len in 0..6 {
            for bits in 0..(1u32 << len) {
                let word: Vec<Sym> = (0..len).map(|i| (bits >> i) & 1).collect();
                assert_eq!(d.accepts(&word), m.accepts(&word), "{word:?}");
            }
        }
    }

    #[test]
    fn minimization_collapses_redundant_states() {
        // 0·0 | 0·0 built redundantly still minimizes small.
        let r = Regex::Union(
            std::sync::Arc::new(Regex::symbol(0).then(Regex::symbol(0))),
            std::sync::Arc::new(Regex::symbol(0).then(Regex::symbol(0))),
        );
        let m = dfa(&r, 1).minimize();
        // States: len-0, len-1, len-2 (accept), dead. = 4.
        assert_eq!(m.n_states(), 4);
    }

    #[test]
    fn minimization_strips_unreachable_states() {
        // Hand-assembled DFA for the language {0} over alphabet {0} with a
        // deliberately unreachable redundant state (state 3 duplicates the
        // accepting state 1). Moore refinement over all four states keeps a
        // class for the unreachable duplicate; the minimal DFA has exactly
        // three states (start, accept, dead).
        let d = Dfa::from_parts(1, vec![1, 2, 2, 2], 0, vec![false, true, false, true]);
        assert!(d.accepts(&[0]));
        assert!(!d.accepts(&[]) && !d.accepts(&[0, 0]));
        let m = d.minimize();
        assert_eq!(m.n_states(), 3, "unreachable states must not survive minimization");
        assert!(m.accepts(&[0]));
        assert!(!m.accepts(&[]) && !m.accepts(&[0, 0]));
    }

    #[test]
    fn budgeted_construction_reports_exhaustion() {
        use blazer_ir::budget::{Budget, Resource};
        // An already-dead deadline trips the very first budget poll.
        let any = Regex::symbol(0).or(Regex::symbol(1));
        let r = any.clone().star().then(Regex::symbol(1)).then(any.clone()).then(any);
        let _guard = Budget::unlimited().with_deadline(std::time::Duration::ZERO).install();
        let err = Dfa::try_from_regex(&r, 2).unwrap_err();
        assert_eq!(err.resource, Resource::WallClock);
        // The infallible path ignores the budget entirely.
        assert!(Dfa::from_regex(&r, 2).accepts(&[1, 0, 0]));
    }
}
