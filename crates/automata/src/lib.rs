//! # blazer-automata
//!
//! Finite automata and regular expressions over small integer alphabets.
//!
//! The original Blazer used the `dk.brics.automaton` Java library "to check
//! language inclusion and construct intersection, union, and complementation
//! automata" over trails — regular expressions whose alphabet is the set of
//! CFG edges (Sec. 5). This crate is the from-scratch Rust substitute:
//!
//! * [`Regex`] — regular expressions over symbols `0..alphabet_size`;
//! * [`Nfa`] — Thompson construction from regexes;
//! * [`Dfa`] — subset construction, completion, complementation, and
//!   Moore minimization;
//! * [`ops`] — product constructions, emptiness, inclusion, equivalence;
//! * [`antichain`] — on-the-fly decision procedures over *lazy* automata
//!   with antichain pruning (the default engine behind the [`ops`] yes/no
//!   questions; set `BLAZER_AUTOMATA=classic` for the eager product engine);
//! * [`kleene`] — conversion of a labeled graph into a regular expression by
//!   state elimination (used to build the *most general trail* of a CFG).
//!
//! ```
//! use blazer_automata::{Regex, Dfa};
//!
//! // (0·1)* over the alphabet {0, 1}.
//! let r = Regex::symbol(0).then(Regex::symbol(1)).star();
//! let d = Dfa::from_regex(&r, 2);
//! assert!(d.accepts(&[]));
//! assert!(d.accepts(&[0, 1, 0, 1]));
//! assert!(!d.accepts(&[0, 0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antichain;
pub mod dfa;
pub mod kleene;
pub mod nfa;
pub mod ops;
pub mod regex;

pub use antichain::AntichainStats;
pub use dfa::Dfa;
pub use kleene::graph_to_regex;
pub use nfa::Nfa;
pub use regex::Regex;

/// A symbol of the (dense, interned) alphabet.
pub type Sym = u32;
