//! Nondeterministic finite automata with ε-transitions.

use crate::regex::Regex;
use crate::Sym;
use std::collections::BTreeSet;

/// An NFA over the alphabet `0..alphabet_size` with ε-transitions.
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet_size: u32,
    /// `trans[q]` = labeled edges out of state `q`.
    trans: Vec<Vec<(Sym, usize)>>,
    /// `eps[q]` = ε-successors of `q`.
    eps: Vec<Vec<usize>>,
    start: usize,
    accepting: BTreeSet<usize>,
}

impl Nfa {
    /// An NFA with `n_states` unconnected states accepting nothing.
    pub fn new(alphabet_size: u32, n_states: usize, start: usize) -> Self {
        Nfa {
            alphabet_size,
            trans: vec![Vec::new(); n_states],
            eps: vec![Vec::new(); n_states],
            start,
            accepting: BTreeSet::new(),
        }
    }

    /// Builds an NFA from a regex via Thompson's construction.
    pub fn from_regex(r: &Regex, alphabet_size: u32) -> Self {
        let mut nfa = Nfa::new(alphabet_size, 0, 0);
        let (s, f) = nfa.thompson(r);
        nfa.start = s;
        nfa.accepting.insert(f);
        nfa
    }

    /// Thompson fragment for `r`, returning `(start, accept)`.
    fn thompson(&mut self, r: &Regex) -> (usize, usize) {
        match r {
            Regex::Empty => {
                let s = self.add_state();
                let f = self.add_state();
                (s, f)
            }
            Regex::Epsilon => {
                let s = self.add_state();
                let f = self.add_state();
                self.eps[s].push(f);
                (s, f)
            }
            Regex::Sym(sym) => {
                let s = self.add_state();
                let f = self.add_state();
                self.trans[s].push((*sym, f));
                (s, f)
            }
            Regex::Concat(a, b) => {
                let (sa, fa) = self.thompson(a);
                let (sb, fb) = self.thompson(b);
                self.eps[fa].push(sb);
                (sa, fb)
            }
            Regex::Union(a, b) => {
                let s = self.add_state();
                let f = self.add_state();
                let (sa, fa) = self.thompson(a);
                let (sb, fb) = self.thompson(b);
                self.eps[s].push(sa);
                self.eps[s].push(sb);
                self.eps[fa].push(f);
                self.eps[fb].push(f);
                (s, f)
            }
            Regex::Star(a) => {
                let s = self.add_state();
                let f = self.add_state();
                let (sa, fa) = self.thompson(a);
                self.eps[s].push(sa);
                self.eps[s].push(f);
                self.eps[fa].push(sa);
                self.eps[fa].push(f);
                (s, f)
            }
        }
    }

    /// Builds an NFA directly from a labeled graph: one automaton state per
    /// graph node, transition `from --sym--> to` per edge. Used for CFG
    /// automata, whose final state is the exit node (Sec. 4.1).
    pub fn from_graph(
        alphabet_size: u32,
        n_nodes: usize,
        edges: &[(usize, Sym, usize)],
        start: usize,
        accepting: &[usize],
    ) -> Self {
        let mut nfa = Nfa::new(alphabet_size, n_nodes, start);
        for &(from, sym, to) in edges {
            nfa.trans[from].push((sym, to));
        }
        nfa.accepting.extend(accepting.iter().copied());
        nfa
    }

    fn add_state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    /// Adds a labeled transition.
    pub fn add_transition(&mut self, from: usize, sym: Sym, to: usize) {
        assert!(sym < self.alphabet_size, "symbol out of alphabet");
        self.trans[from].push((sym, to));
    }

    /// States from which some accepting state is reachable (via labeled or
    /// ε-transitions). A subset state of an on-demand determinization is
    /// *live* — can still complete to an accepted word — iff it contains a
    /// coaccessible state.
    pub fn coaccessible(&self) -> Vec<bool> {
        let n = self.n_states();
        let mut rev = vec![Vec::new(); n];
        for q in 0..n {
            for &(_, t) in &self.trans[q] {
                rev[t].push(q);
            }
            for &t in &self.eps[q] {
                rev[t].push(q);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = self.accepting.iter().copied().collect();
        for &q in &stack {
            live[q] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q] {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// Marks a state as accepting.
    pub fn set_accepting(&mut self, q: usize) {
        self.accepting.insert(q);
    }

    /// The alphabet size.
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// The number of states.
    pub fn n_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The accepting states.
    pub fn accepting(&self) -> &BTreeSet<usize> {
        &self.accepting
    }

    /// ε-closure of a set of states.
    pub fn eps_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = states.clone();
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(q) = stack.pop() {
            for &t in &self.eps[q] {
                if out.insert(t) {
                    stack.push(t);
                }
            }
        }
        out
    }

    /// The set reached from `states` on `sym` (before ε-closure).
    pub fn step(&self, states: &BTreeSet<usize>, sym: Sym) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &q in states {
            for &(s, t) in &self.trans[q] {
                if s == sym {
                    out.insert(t);
                }
            }
        }
        out
    }

    /// Whether the NFA accepts `word`.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut cur = self.eps_closure(&BTreeSet::from([self.start]));
        for &sym in word {
            cur = self.eps_closure(&self.step(&cur, sym));
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|q| self.accepting.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thompson_basic() {
        let r = Regex::symbol(0).then(Regex::symbol(1));
        let n = Nfa::from_regex(&r, 2);
        assert!(n.accepts(&[0, 1]));
        assert!(!n.accepts(&[0]));
        assert!(!n.accepts(&[1, 0]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn thompson_star_and_union() {
        // (0|1)* 1
        let r = Regex::symbol(0).or(Regex::symbol(1)).star().then(Regex::symbol(1));
        let n = Nfa::from_regex(&r, 2);
        assert!(n.accepts(&[1]));
        assert!(n.accepts(&[0, 0, 1]));
        assert!(n.accepts(&[1, 1]));
        assert!(!n.accepts(&[0]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn empty_regex_accepts_nothing() {
        let n = Nfa::from_regex(&Regex::Empty, 1);
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[0]));
    }

    #[test]
    fn graph_automaton() {
        // 0 --a--> 1 --b--> 2 (accepting), plus loop 1 --c--> 1.
        let n = Nfa::from_graph(3, 3, &[(0, 0, 1), (1, 1, 2), (1, 2, 1)], 0, &[2]);
        assert!(n.accepts(&[0, 1]));
        assert!(n.accepts(&[0, 2, 2, 1]));
        assert!(!n.accepts(&[0]));
        assert!(!n.accepts(&[1]));
    }

    #[test]
    fn eps_closure_is_transitive() {
        let mut n = Nfa::new(1, 3, 0);
        n.eps[0].push(1);
        n.eps[1].push(2);
        let c = n.eps_closure(&BTreeSet::from([0]));
        assert_eq!(c, BTreeSet::from([0, 1, 2]));
    }
}
