//! Antichain-based emptiness, inclusion, and equivalence over *lazy*
//! automata.
//!
//! The classic decision procedures in [`crate::ops`] answer every yes/no
//! question by *materializing* a product DFA and testing it — paying a full
//! subset construction (and often a Moore minimization downstream) even when
//! the answer is decidable after visiting a handful of states. This module
//! is the on-the-fly alternative, following the antichain refinement-checking
//! algorithms of Laveaux, Groote, and Willemse (LMCS 2021, the algorithmic
//! basis of mCRL2's refinement checker): explore the macro-state space of a
//! *lazily determinized* automaton, and prune every macro-state that is
//! *dominated* by one already explored.
//!
//! # The lazy automaton abstraction
//!
//! [`LazyDfa`] is a deterministic, complete automaton whose states are
//! produced on demand. Implementations:
//!
//! * [`NfaView`] — subset construction on demand: states are ε-closed
//!   NFA state sets, ordered by `⊇`;
//! * [`DfaView`] — a materialized [`Dfa`] viewed lazily (states are plain
//!   indices, domination is equality);
//! * [`ComplementView`] — flips acceptance *and the domination order* of an
//!   inner view;
//! * [`ProductAndView`] — the pairwise intersection of two views.
//!
//! `L(A) ⊆ L(B)` is emptiness of `And(A, Complement(B))`; disjointness is
//! emptiness of `And(A, B)`. Neither ever builds a full product table.
//!
//! # Soundness of the pruning
//!
//! [`LazyDfa::dominates`]`(x, y)` must imply `L(x) ⊇ L(y)`, where `L(q)` is
//! the set of words accepted *from* `q`. The search maintains the invariant
//! that every discarded state is dominated by some state that stays alive
//! (domination — language containment — is transitive, so a chain of kills
//! always terminates in a live dominator). Any accepting path from a
//! discarded state therefore also exists from its live dominator, so
//! pruning never changes the emptiness answer; and because witnesses are
//! read off real `step` paths, a returned word is always genuinely accepted.
//! Termination: a kill requires *strict* domination (a dominated candidate
//! is never inserted in the first place), so no state is ever re-inserted,
//! and the state space is finite.
//!
//! # Counters
//!
//! The per-analysis counters (`macro_states_explored`, `antichain_prunes`,
//! `classic_fallbacks`) accumulate on a thread-local [`StatsCollector`],
//! installed by the driver exactly like `blazer_ir::budget` — worker threads
//! install a clone of the same `Arc` so one analysis gets one ledger.

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::Sym;
use blazer_ir::budget::{self, Exhausted};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic, complete automaton whose states are produced on demand.
///
/// Implementations must keep [`LazyDfa::dominates`] consistent with the
/// language order: `dominates(x, y)` must imply that every word accepted
/// from `y` is also accepted from `x`. Returning plain equality is always
/// sound (it degrades the antichain to ordinary visited-set deduplication).
pub trait LazyDfa {
    /// The on-demand state representation.
    type State: Clone + Ord;

    /// The alphabet size; symbols range over `0..alphabet_size`.
    fn alphabet_size(&self) -> u32;

    /// The initial state.
    fn start(&self) -> Self::State;

    /// The unique successor of `q` on `sym`.
    fn step(&self, q: &Self::State, sym: Sym) -> Self::State;

    /// Whether `q` is accepting.
    fn accepting(&self, q: &Self::State) -> bool;

    /// Whether `x` subsumes `y`: `L(x) ⊇ L(y)` for the forward languages.
    fn dominates(&self, x: &Self::State, y: &Self::State) -> bool;
}

/// Subset construction on demand: the deterministic view of an [`Nfa`]
/// whose states are ε-closed state sets, never materialized into a table.
#[derive(Debug, Clone, Copy)]
pub struct NfaView<'a> {
    nfa: &'a Nfa,
}

impl<'a> NfaView<'a> {
    /// Wraps `nfa`.
    pub fn new(nfa: &'a Nfa) -> Self {
        NfaView { nfa }
    }
}

impl LazyDfa for NfaView<'_> {
    type State = BTreeSet<usize>;

    fn alphabet_size(&self) -> u32 {
        self.nfa.alphabet_size()
    }

    fn start(&self) -> BTreeSet<usize> {
        self.nfa.eps_closure(&BTreeSet::from([self.nfa.start()]))
    }

    fn step(&self, q: &BTreeSet<usize>, sym: Sym) -> BTreeSet<usize> {
        self.nfa.eps_closure(&self.nfa.step(q, sym))
    }

    fn accepting(&self, q: &BTreeSet<usize>) -> bool {
        q.iter().any(|s| self.nfa.accepting().contains(s))
    }

    fn dominates(&self, x: &Self::State, y: &Self::State) -> bool {
        x.is_superset(y)
    }
}

/// A materialized [`Dfa`] viewed lazily. Domination is equality: a DFA
/// state's forward language is canonical only after minimization, which is
/// exactly what this engine avoids running.
#[derive(Debug, Clone, Copy)]
pub struct DfaView<'a> {
    dfa: &'a Dfa,
}

impl<'a> DfaView<'a> {
    /// Wraps `dfa`.
    pub fn new(dfa: &'a Dfa) -> Self {
        DfaView { dfa }
    }
}

impl LazyDfa for DfaView<'_> {
    type State = usize;

    fn alphabet_size(&self) -> u32 {
        self.dfa.alphabet_size()
    }

    fn start(&self) -> usize {
        self.dfa.start()
    }

    fn step(&self, q: &usize, sym: Sym) -> usize {
        self.dfa.next(*q, sym)
    }

    fn accepting(&self, q: &usize) -> bool {
        self.dfa.is_accepting(*q)
    }

    fn dominates(&self, x: &usize, y: &usize) -> bool {
        x == y
    }
}

/// The complement of a lazy automaton: acceptance is flipped, and so is the
/// domination order (`L(x) ⊆ L(y)` iff `Σ* \ L(x) ⊇ Σ* \ L(y)`).
#[derive(Debug, Clone, Copy)]
pub struct ComplementView<A> {
    inner: A,
}

impl<A: LazyDfa> ComplementView<A> {
    /// Wraps `inner`. Sound because every [`LazyDfa`] is deterministic and
    /// complete by contract.
    pub fn new(inner: A) -> Self {
        ComplementView { inner }
    }
}

impl<A: LazyDfa> LazyDfa for ComplementView<A> {
    type State = A::State;

    fn alphabet_size(&self) -> u32 {
        self.inner.alphabet_size()
    }

    fn start(&self) -> A::State {
        self.inner.start()
    }

    fn step(&self, q: &A::State, sym: Sym) -> A::State {
        self.inner.step(q, sym)
    }

    fn accepting(&self, q: &A::State) -> bool {
        !self.inner.accepting(q)
    }

    fn dominates(&self, x: &A::State, y: &A::State) -> bool {
        self.inner.dominates(y, x)
    }
}

/// The intersection of two lazy automata: pairwise steps, conjunctive
/// acceptance, pairwise domination.
#[derive(Debug, Clone, Copy)]
pub struct ProductAndView<A, B> {
    a: A,
    b: B,
}

impl<A: LazyDfa, B: LazyDfa> ProductAndView<A, B> {
    /// Combines `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(a.alphabet_size(), b.alphabet_size(), "alphabet mismatch in lazy product");
        ProductAndView { a, b }
    }
}

impl<A: LazyDfa, B: LazyDfa> LazyDfa for ProductAndView<A, B> {
    type State = (A::State, B::State);

    fn alphabet_size(&self) -> u32 {
        self.a.alphabet_size()
    }

    fn start(&self) -> Self::State {
        (self.a.start(), self.b.start())
    }

    fn step(&self, q: &Self::State, sym: Sym) -> Self::State {
        (self.a.step(&q.0, sym), self.b.step(&q.1, sym))
    }

    fn accepting(&self, q: &Self::State) -> bool {
        self.a.accepting(&q.0) && self.b.accepting(&q.1)
    }

    fn dominates(&self, x: &Self::State, y: &Self::State) -> bool {
        self.a.dominates(&x.0, &y.0) && self.b.dominates(&x.1, &y.1)
    }
}

/// A shortest-ish accepted word of `a`, or `None` when `L(a) = ∅`.
///
/// Breadth-first over the macro-state space with antichain pruning and
/// early exit on the first accepting state generated. The word is read off
/// the real search path, so it is always genuinely accepted; with pruning
/// it is not guaranteed to be *the* shortest. Cooperates with the installed
/// `blazer_ir::budget` (checked once per expanded macro-state).
pub fn find_accepted_word<A: LazyDfa>(a: &A) -> Result<Option<Vec<Sym>>, Exhausted> {
    search(a, true)
}

/// [`find_accepted_word`] without budget cooperation, for callers that must
/// stay infallible (legacy `ops` entry points, tests).
pub(crate) fn find_accepted_word_unbudgeted<A: LazyDfa>(a: &A) -> Option<Vec<Sym>> {
    search(a, false).expect("unbudgeted search cannot exhaust")
}

struct SearchNode<S> {
    state: S,
    /// Index of the parent node, or `usize::MAX` for the root.
    parent: usize,
    /// Symbol taken from the parent (meaningless for the root).
    sym: Sym,
    alive: bool,
}

fn search<A: LazyDfa>(a: &A, budgeted: bool) -> Result<Option<Vec<Sym>>, Exhausted> {
    let mut explored = 0u64;
    let mut prunes = 0u64;
    let out = search_inner(a, budgeted, &mut explored, &mut prunes);
    note_explored(explored);
    note_prunes(prunes);
    out
}

fn search_inner<A: LazyDfa>(
    a: &A,
    budgeted: bool,
    explored: &mut u64,
    prunes: &mut u64,
) -> Result<Option<Vec<Sym>>, Exhausted> {
    let alpha = a.alphabet_size();
    let start = a.start();
    *explored += 1;
    if a.accepting(&start) {
        return Ok(Some(Vec::new()));
    }
    let mut nodes = vec![SearchNode { state: start, parent: usize::MAX, sym: 0, alive: true }];
    let mut queue = VecDeque::from([0usize]);
    while let Some(i) = queue.pop_front() {
        if !nodes[i].alive {
            continue;
        }
        if budgeted {
            budget::check()?;
        }
        *explored += 1;
        for sym in 0..alpha {
            let next = a.step(&nodes[i].state, sym);
            if a.accepting(&next) {
                let mut word = vec![sym];
                let mut cur = i;
                while nodes[cur].parent != usize::MAX {
                    word.push(nodes[cur].sym);
                    cur = nodes[cur].parent;
                }
                word.reverse();
                return Ok(Some(word));
            }
            // Antichain insertion: skip a candidate dominated by any live
            // state; kill live states the candidate strictly dominates.
            if nodes.iter().any(|n| n.alive && a.dominates(&n.state, &next)) {
                *prunes += 1;
                continue;
            }
            for n in nodes.iter_mut() {
                if n.alive && a.dominates(&next, &n.state) {
                    n.alive = false;
                    *prunes += 1;
                }
            }
            nodes.push(SearchNode { state: next, parent: i, sym, alive: true });
            queue.push_back(nodes.len() - 1);
        }
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Decision procedures over NFAs (fully lazy: no DFA is ever materialized).
// ---------------------------------------------------------------------------

/// Whether `L(a) = ∅`, on the fly.
pub fn nfa_is_empty(a: &Nfa) -> Result<bool, Exhausted> {
    Ok(find_accepted_word(&NfaView::new(a))?.is_none())
}

/// A shortest-ish word of `L(a)`, if any.
pub fn nfa_example_word(a: &Nfa) -> Result<Option<Vec<Sym>>, Exhausted> {
    find_accepted_word(&NfaView::new(a))
}

/// Whether `L(a) ⊆ L(b)`, on the fly.
pub fn nfa_included(a: &Nfa, b: &Nfa) -> Result<bool, Exhausted> {
    Ok(nfa_counterexample(a, b)?.is_none())
}

/// A word in `L(a) \ L(b)`, if any (witness for non-inclusion).
pub fn nfa_counterexample(a: &Nfa, b: &Nfa) -> Result<Option<Vec<Sym>>, Exhausted> {
    let view = ProductAndView::new(NfaView::new(a), ComplementView::new(NfaView::new(b)));
    find_accepted_word(&view)
}

/// Whether `L(a) ∩ L(b) = ∅`, on the fly.
pub fn nfa_disjoint(a: &Nfa, b: &Nfa) -> Result<bool, Exhausted> {
    let view = ProductAndView::new(NfaView::new(a), NfaView::new(b));
    Ok(find_accepted_word(&view)?.is_none())
}

/// Whether `L(a) = L(b)`, on the fly (two inclusion checks).
pub fn nfa_equivalent(a: &Nfa, b: &Nfa) -> Result<bool, Exhausted> {
    Ok(nfa_included(a, b)? && nfa_included(b, a)?)
}

/// Whether `L(a) ∩ L(b) ∩ L(c) = ∅`, on the fly (the cover check of the
/// block-split refinement strategy).
pub fn nfa_intersect3_empty(a: &Nfa, b: &Nfa, c: &Nfa) -> Result<bool, Exhausted> {
    let view =
        ProductAndView::new(ProductAndView::new(NfaView::new(a), NfaView::new(b)), NfaView::new(c));
    Ok(find_accepted_word(&view)?.is_none())
}

// ---------------------------------------------------------------------------
// Decision procedures over materialized DFAs (no product is materialized).
// ---------------------------------------------------------------------------

/// Whether `L(a) ⊆ L(b)` without materializing the difference product.
pub fn dfa_included(a: &Dfa, b: &Dfa) -> Result<bool, Exhausted> {
    Ok(dfa_counterexample(a, b)?.is_none())
}

/// A word in `L(a) \ L(b)`, if any, without materializing the product.
pub fn dfa_counterexample(a: &Dfa, b: &Dfa) -> Result<Option<Vec<Sym>>, Exhausted> {
    let view = ProductAndView::new(DfaView::new(a), ComplementView::new(DfaView::new(b)));
    find_accepted_word(&view)
}

/// Whether `L(a) ∩ L(b) = ∅` without materializing the product.
pub fn dfa_disjoint(a: &Dfa, b: &Dfa) -> Result<bool, Exhausted> {
    let view = ProductAndView::new(DfaView::new(a), DfaView::new(b));
    Ok(find_accepted_word(&view)?.is_none())
}

/// Whether `L(a) = L(b)` without materializing either difference product.
pub fn dfa_equivalent(a: &Dfa, b: &Dfa) -> Result<bool, Exhausted> {
    Ok(dfa_included(a, b)? && dfa_included(b, a)?)
}

pub(crate) fn dfa_counterexample_unbudgeted(a: &Dfa, b: &Dfa) -> Option<Vec<Sym>> {
    let view = ProductAndView::new(DfaView::new(a), ComplementView::new(DfaView::new(b)));
    find_accepted_word_unbudgeted(&view)
}

pub(crate) fn dfa_disjoint_unbudgeted(a: &Dfa, b: &Dfa) -> bool {
    let view = ProductAndView::new(DfaView::new(a), DfaView::new(b));
    find_accepted_word_unbudgeted(&view).is_none()
}

// ---------------------------------------------------------------------------
// Engine selection and counters.
// ---------------------------------------------------------------------------

/// Whether `BLAZER_AUTOMATA=classic` selects the eager
/// materialize-and-minimize engine (read fresh on every call, so tests can
/// flip it without process restarts).
pub fn classic_mode() -> bool {
    std::env::var("BLAZER_AUTOMATA").is_ok_and(|v| v.trim() == "classic")
}

/// A snapshot of the antichain engine's work counters for one analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AntichainStats {
    /// Macro-states expanded by the lazy searches.
    pub macro_states_explored: u64,
    /// Candidate macro-states discarded (or live states killed) by
    /// ⊆-domination.
    pub antichain_prunes: u64,
    /// Decision-procedure calls routed to the classic eager engine
    /// (nonzero only under `BLAZER_AUTOMATA=classic`).
    pub classic_fallbacks: u64,
}

/// The shared, thread-safe counter ledger behind [`AntichainStats`].
/// Install one per analysis; worker threads install a clone of the same
/// [`Arc`] so counts aggregate globally (mirroring `blazer_ir::budget`).
#[derive(Debug, Default)]
pub struct StatsCollector {
    explored: AtomicU64,
    prunes: AtomicU64,
    fallbacks: AtomicU64,
}

impl StatsCollector {
    /// A fresh ledger behind an [`Arc`], ready to install.
    pub fn new() -> Arc<StatsCollector> {
        Arc::new(StatsCollector::default())
    }

    /// Activates this ledger on the current thread until the returned guard
    /// drops (restoring whatever was installed before — installs stack).
    pub fn install(self: &Arc<Self>) -> StatsGuard {
        let previous = ACTIVE_STATS.with(|a| a.borrow_mut().replace(Arc::clone(self)));
        StatsGuard { previous }
    }

    /// The counters accumulated so far.
    pub fn snapshot(&self) -> AntichainStats {
        AntichainStats {
            macro_states_explored: self.explored.load(Ordering::Relaxed),
            antichain_prunes: self.prunes.load(Ordering::Relaxed),
            classic_fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard returned by [`StatsCollector::install`].
#[derive(Debug)]
pub struct StatsGuard {
    previous: Option<Arc<StatsCollector>>,
}

impl Drop for StatsGuard {
    fn drop(&mut self) {
        ACTIVE_STATS.with(|a| *a.borrow_mut() = self.previous.take());
    }
}

thread_local! {
    static ACTIVE_STATS: RefCell<Option<Arc<StatsCollector>>> = const { RefCell::new(None) };
}

/// The ledger installed on the current thread, for handing to worker
/// threads (which `install` it themselves). `None` when none is installed.
pub fn stats_handle() -> Option<Arc<StatsCollector>> {
    ACTIVE_STATS.with(|a| a.borrow().clone())
}

/// Records one decision-procedure call routed to the classic engine.
pub fn note_classic_fallback() {
    with_stats(|s| {
        s.fallbacks.fetch_add(1, Ordering::Relaxed);
    });
}

fn note_explored(n: u64) {
    if n > 0 {
        with_stats(|s| {
            s.explored.fetch_add(n, Ordering::Relaxed);
        });
    }
}

fn note_prunes(n: u64) {
    if n > 0 {
        with_stats(|s| {
            s.prunes.fetch_add(n, Ordering::Relaxed);
        });
    }
}

fn with_stats(f: impl FnOnce(&StatsCollector)) {
    ACTIVE_STATS.with(|a| {
        if let Some(s) = a.borrow().as_deref() {
            f(s);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::regex::Regex;
    use blazer_ir::budget::{Budget, Resource};
    use std::time::Duration;

    fn nfa(r: &Regex, alpha: u32) -> Nfa {
        Nfa::from_regex(r, alpha)
    }

    fn dfa(r: &Regex, alpha: u32) -> Dfa {
        Dfa::from_regex(r, alpha)
    }

    fn starts_with_0() -> Regex {
        Regex::symbol(0).then(Regex::symbol(0).or(Regex::symbol(1)).star())
    }

    fn ends_with_1() -> Regex {
        Regex::symbol(0).or(Regex::symbol(1)).star().then(Regex::symbol(1))
    }

    #[test]
    fn lazy_emptiness_matches_eager() {
        for (r, empty) in [
            (Regex::Empty, true),
            (Regex::Epsilon, false),
            (starts_with_0(), false),
            (Regex::symbol(0).then(Regex::Empty), true),
        ] {
            assert_eq!(nfa_is_empty(&nfa(&r, 2)).unwrap(), empty, "{r}");
            assert_eq!(dfa(&r, 2).is_empty(), empty, "{r}");
        }
    }

    #[test]
    fn lazy_inclusion_and_witnesses() {
        let a = nfa(&Regex::symbol(0).then(Regex::symbol(1)), 2);
        let b = nfa(&starts_with_0(), 2);
        assert!(nfa_included(&a, &b).unwrap());
        assert!(!nfa_included(&b, &a).unwrap());
        let w = nfa_counterexample(&b, &a).unwrap().expect("not included");
        assert!(b.accepts(&w) && !a.accepts(&w), "{w:?}");
    }

    #[test]
    fn lazy_disjointness() {
        let a = nfa(&Regex::symbol(0), 2);
        let b = nfa(&Regex::symbol(1), 2);
        assert!(nfa_disjoint(&a, &b).unwrap());
        assert!(!nfa_disjoint(&a, &nfa(&starts_with_0(), 2)).unwrap());
    }

    #[test]
    fn lazy_equivalence_of_different_syntax() {
        // (0*)* ≡ 0*.
        let a = nfa(&Regex::symbol(0).star(), 1);
        let b = nfa(&Regex::symbol(0).star().star(), 1);
        assert!(nfa_equivalent(&a, &b).unwrap());
        assert!(!nfa_equivalent(&a, &nfa(&Regex::symbol(0), 1)).unwrap());
    }

    #[test]
    fn triple_intersection_emptiness() {
        let a = nfa(&starts_with_0(), 2);
        let b = nfa(&ends_with_1(), 2);
        let only_zeros = nfa(&Regex::symbol(0).star(), 2);
        assert!(nfa_intersect3_empty(&a, &b, &only_zeros).unwrap());
        assert!(!nfa_intersect3_empty(&a, &b, &nfa(&starts_with_0(), 2)).unwrap());
    }

    #[test]
    fn dfa_level_procedures_match_classic_products() {
        let a = dfa(&starts_with_0(), 2);
        let b = dfa(&ends_with_1(), 2);
        assert_eq!(dfa_included(&a, &b).unwrap(), ops::difference(&a, &b).is_empty());
        assert_eq!(dfa_disjoint(&a, &b).unwrap(), ops::intersection(&a, &b).is_empty());
        let w = dfa_counterexample(&a, &b).unwrap().expect("not included");
        assert!(a.accepts(&w) && !b.accepts(&w));
        assert!(dfa_equivalent(&a, &dfa(&starts_with_0(), 2)).unwrap());
    }

    /// The adversarial inclusion family `(0|1)*·1·(0|1)ⁿ ⊆ Σ*`: the eager
    /// engine determinizes the left side into 2ⁿ⁺¹ states before it can
    /// even ask the question; the ⊇-antichain collapses each BFS level to
    /// its maximal subset state and answers in O(n) macro-states.
    #[test]
    fn antichain_beats_eager_subset_construction() {
        const N: usize = 11;
        let any = Regex::symbol(0).or(Regex::symbol(1));
        let mut family = any.clone().star().then(Regex::symbol(1));
        for _ in 0..N {
            family = family.then(any.clone());
        }
        let sigma_star = any.star();
        let left = nfa(&family, 2);
        let right = nfa(&sigma_star, 2);
        let stats = StatsCollector::new();
        let _guard = stats.install();
        assert!(nfa_included(&left, &right).unwrap());
        let snap = stats.snapshot();
        // The eager engine pays the full exponential determinization.
        assert!(dfa(&family, 2).n_states() as u64 > 1 << N);
        // The antichain stays linear (with comfortable slack).
        assert!(
            snap.macro_states_explored < 16 * (N as u64 + 2),
            "explored {} macro-states",
            snap.macro_states_explored
        );
        assert!(snap.antichain_prunes > 0);
    }

    #[test]
    fn stats_ledger_installs_stack_and_aggregate_across_threads() {
        let outer = StatsCollector::new();
        let _outer_guard = outer.install();
        {
            let inner = StatsCollector::new();
            let _inner_guard = inner.install();
            note_classic_fallback();
            assert_eq!(inner.snapshot().classic_fallbacks, 1);
        }
        // Outer ledger restored; a worker thread lands on the same ledger.
        let handle = stats_handle().expect("ledger installed");
        std::thread::scope(|s| {
            s.spawn(move || {
                let _g = handle.install();
                note_classic_fallback();
            });
        });
        let snap = outer.snapshot();
        assert_eq!(snap.classic_fallbacks, 1);
        assert_eq!(snap.macro_states_explored, 0);
    }

    #[test]
    fn searches_cooperate_with_the_budget() {
        let _guard = Budget::unlimited().with_deadline(Duration::ZERO).install();
        let a = nfa(&starts_with_0(), 2);
        let err = nfa_included(&a, &nfa(&ends_with_1(), 2)).unwrap_err();
        assert_eq!(err.resource, Resource::WallClock);
        // The unbudgeted path stays infallible under the same dead budget.
        assert!(find_accepted_word_unbudgeted(&NfaView::new(&a)).is_some());
    }

    #[test]
    fn classic_mode_reads_the_environment_fresh() {
        // Process-global env var: restore immediately. Other automata tests
        // do not read it, so this is race-benign within this crate.
        std::env::set_var("BLAZER_AUTOMATA", "classic");
        assert!(classic_mode());
        std::env::remove_var("BLAZER_AUTOMATA");
        assert!(!classic_mode());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Builds a small random regex over {0, 1} from a stack-machine
        /// program (shrinks nicely and never parses).
        fn build(prog: &[(usize, usize)]) -> Regex {
            let mut stack: Vec<Regex> = Vec::new();
            for &(op, s) in prog {
                match op {
                    0 | 1 => stack.push(Regex::symbol(s as Sym)),
                    2 => {
                        if let (Some(b), Some(a)) = (stack.pop(), stack.pop()) {
                            stack.push(a.or(b));
                        }
                    }
                    3 => {
                        if let (Some(b), Some(a)) = (stack.pop(), stack.pop()) {
                            stack.push(a.then(b));
                        }
                    }
                    _ => {
                        if let Some(a) = stack.pop() {
                            stack.push(a.star());
                        }
                    }
                }
            }
            stack.into_iter().reduce(Regex::or).unwrap_or(Regex::Epsilon)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Antichain inclusion/disjointness/counterexamples agree with
            /// the classic difference-product implementation on random
            /// regex pairs, and every witness word is validated against
            /// both eager DFAs.
            #[test]
            fn antichain_agrees_with_classic_products(
                pa in proptest::collection::vec((0usize..5, 0usize..2), 1..12),
                pb in proptest::collection::vec((0usize..5, 0usize..2), 1..12),
            ) {
                let (ra, rb) = (build(&pa), build(&pb));
                let (da, db) = (dfa(&ra, 2), dfa(&rb, 2));
                let (na, nb) = (nfa(&ra, 2), nfa(&rb, 2));

                let classic_inc = ops::difference(&da, &db).is_empty();
                prop_assert_eq!(dfa_included(&da, &db).unwrap(), classic_inc);
                prop_assert_eq!(nfa_included(&na, &nb).unwrap(), classic_inc);

                let classic_dis = ops::intersection(&da, &db).is_empty();
                prop_assert_eq!(dfa_disjoint(&da, &db).unwrap(), classic_dis);
                prop_assert_eq!(nfa_disjoint(&na, &nb).unwrap(), classic_dis);

                match dfa_counterexample(&da, &db).unwrap() {
                    Some(w) => {
                        prop_assert!(!classic_inc);
                        prop_assert!(da.accepts(&w) && !db.accepts(&w));
                    }
                    None => prop_assert!(classic_inc),
                }
                match nfa_counterexample(&na, &nb).unwrap() {
                    Some(w) => {
                        prop_assert!(!classic_inc);
                        prop_assert!(na.accepts(&w) && !nb.accepts(&w));
                    }
                    None => prop_assert!(classic_inc),
                }

                prop_assert_eq!(
                    nfa_is_empty(&na).unwrap(),
                    da.is_empty()
                );
            }
        }
    }
}
