//! Regular expressions over integer symbols.

use crate::Sym;
use std::fmt;
use std::sync::Arc;

/// A regular expression over symbols `0..alphabet_size`.
///
/// Subterms are reference-counted so trail refinement in `blazer-core`
/// (which replaces one subterm while sharing the rest) stays cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single symbol.
    Sym(Sym),
    /// Concatenation.
    Concat(Arc<Regex>, Arc<Regex>),
    /// Union (`|`).
    Union(Arc<Regex>, Arc<Regex>),
    /// Kleene star.
    Star(Arc<Regex>),
}

impl Regex {
    /// A single-symbol regex.
    pub fn symbol(s: Sym) -> Regex {
        Regex::Sym(s)
    }

    /// Smart concatenation (simplifies ε and ∅ units).
    pub fn then(self, other: Regex) -> Regex {
        match (&self, &other) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, _) => other,
            (_, Regex::Epsilon) => self,
            _ => Regex::Concat(Arc::new(self), Arc::new(other)),
        }
    }

    /// Smart union (simplifies ∅ and idempotent cases).
    pub fn or(self, other: Regex) -> Regex {
        match (&self, &other) {
            (Regex::Empty, _) => other,
            (_, Regex::Empty) => self,
            _ if self == other => self,
            _ => Regex::Union(Arc::new(self), Arc::new(other)),
        }
    }

    /// Smart Kleene star (`∅* = ε* = ε`, `(r*)* = r*`).
    pub fn star(self) -> Regex {
        match &self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(_) => self,
            _ => Regex::Star(Arc::new(self)),
        }
    }

    /// `r+ = r · r*`.
    pub fn plus(self) -> Regex {
        let star = self.clone().star();
        self.then(star)
    }

    /// Whether ε is in the language (nullable).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Union(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Whether the language is definitely empty (syntactic check; exact for
    /// regexes built by the smart constructors).
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Sym(_) | Regex::Star(_) => false,
            Regex::Concat(a, b) => a.is_empty_language() || b.is_empty_language(),
            Regex::Union(a, b) => a.is_empty_language() && b.is_empty_language(),
        }
    }

    /// All symbols that occur in the expression (may over-approximate the
    /// symbols of the language when ∅ subterms are present).
    pub fn symbols(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Sym>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => out.push(*s),
            Regex::Concat(a, b) | Regex::Union(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Regex::Star(a) => a.collect_symbols(out),
        }
    }

    /// The number of AST nodes (for limiting refinement blow-up).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(a, b) | Regex::Union(a, b) => 1 + a.size() + b.size(),
            Regex::Star(a) => 1 + a.size(),
        }
    }

    /// Whether `word` is in the language (via simple NFA simulation — meant
    /// for tests; build a [`crate::Dfa`] for repeated queries).
    pub fn matches(&self, word: &[Sym]) -> bool {
        let max_sym = self.symbols().into_iter().max().map_or(0, |s| s + 1);
        let alpha = max_sym.max(word.iter().copied().max().map_or(0, |s| s + 1));
        crate::Nfa::from_regex(self, alpha).accepts(word)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(r: &Regex, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match r {
                Regex::Empty => f.write_str("∅"),
                Regex::Epsilon => f.write_str("ε"),
                Regex::Sym(s) => write!(f, "{s}"),
                Regex::Concat(a, b) => {
                    if prec > 1 {
                        f.write_str("(")?;
                    }
                    go(a, f, 1)?;
                    f.write_str("·")?;
                    go(b, f, 1)?;
                    if prec > 1 {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                Regex::Union(a, b) => {
                    if prec > 0 {
                        f.write_str("(")?;
                    }
                    go(a, f, 0)?;
                    f.write_str("|")?;
                    go(b, f, 0)?;
                    if prec > 0 {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                Regex::Star(a) => {
                    go(a, f, 2)?;
                    f.write_str("*")
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_simplify() {
        let a = Regex::symbol(0);
        assert_eq!(Regex::Empty.then(a.clone()), Regex::Empty);
        assert_eq!(Regex::Epsilon.then(a.clone()), a);
        assert_eq!(a.clone().then(Regex::Epsilon), a);
        assert_eq!(Regex::Empty.or(a.clone()), a);
        assert_eq!(a.clone().or(a.clone()), a);
        assert_eq!(Regex::Empty.star(), Regex::Epsilon);
        assert_eq!(Regex::Epsilon.star(), Regex::Epsilon);
        let s = a.clone().star();
        assert_eq!(s.clone().star(), s);
    }

    #[test]
    fn nullable() {
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::symbol(0).nullable());
        assert!(Regex::symbol(0).star().nullable());
        assert!(Regex::symbol(0).or(Regex::Epsilon).nullable());
        assert!(!Regex::symbol(0).then(Regex::symbol(1)).nullable());
        assert!(Regex::symbol(0).star().then(Regex::symbol(1).star()).nullable());
    }

    #[test]
    fn symbols_and_size() {
        let r = Regex::symbol(2).then(Regex::symbol(0).or(Regex::symbol(2))).star();
        assert_eq!(r.symbols(), vec![0, 2]);
        assert!(r.size() >= 5);
    }

    #[test]
    fn matching() {
        // (0|1)·2*
        let r = Regex::symbol(0).or(Regex::symbol(1)).then(Regex::symbol(2).star());
        assert!(r.matches(&[0]));
        assert!(r.matches(&[1, 2, 2, 2]));
        assert!(!r.matches(&[2]));
        assert!(!r.matches(&[]));
        assert!(!r.matches(&[0, 1]));
    }

    #[test]
    fn empty_language_detection() {
        assert!(Regex::Empty.is_empty_language());
        assert!(!Regex::Epsilon.is_empty_language());
        let manual = Regex::Concat(Arc::new(Regex::Sym(0)), Arc::new(Regex::Empty));
        assert!(manual.is_empty_language());
    }

    #[test]
    fn display() {
        let r = Regex::symbol(0).or(Regex::symbol(1)).then(Regex::symbol(2).star());
        assert_eq!(r.to_string(), "(0|1)·2*");
    }

    #[test]
    fn plus_requires_one() {
        let r = Regex::symbol(0).plus();
        assert!(!r.matches(&[]));
        assert!(r.matches(&[0]));
        assert!(r.matches(&[0, 0, 0]));
    }
}
