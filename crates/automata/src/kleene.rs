//! Graph → regular expression conversion by state elimination.
//!
//! The *most general trail* of a program is a regex whose language equals the
//! language of the CFG automaton (Sec. 4.1). This module performs the
//! classical generalized-NFA state elimination, with a low-degree-first
//! elimination order to keep the resulting expression small.

use crate::regex::Regex;
use crate::Sym;
use blazer_ir::budget::{self, Exhausted};
use std::collections::BTreeMap;

/// Converts a labeled graph into a [`Regex`] with the same language.
///
/// * `n_nodes` — number of graph nodes;
/// * `edges` — `(from, symbol, to)` triples;
/// * `start` — initial node;
/// * `accepting` — final nodes.
///
/// Unreachable structure is handled (contributes ∅ and vanishes through the
/// smart constructors).
pub fn graph_to_regex(
    n_nodes: usize,
    edges: &[(usize, Sym, usize)],
    start: usize,
    accepting: &[usize],
) -> Regex {
    graph_to_regex_impl(n_nodes, edges, start, accepting, false)
        .expect("unbudgeted elimination cannot exhaust")
}

/// [`graph_to_regex`] cooperating with the installed `blazer_ir::budget`
/// (polled once per eliminated node — elimination cost is dominated by the
/// arc products a single node elimination performs).
pub fn try_graph_to_regex(
    n_nodes: usize,
    edges: &[(usize, Sym, usize)],
    start: usize,
    accepting: &[usize],
) -> Result<Regex, Exhausted> {
    graph_to_regex_impl(n_nodes, edges, start, accepting, true)
}

fn graph_to_regex_impl(
    n_nodes: usize,
    edges: &[(usize, Sym, usize)],
    start: usize,
    accepting: &[usize],
    budgeted: bool,
) -> Result<Regex, Exhausted> {
    // GNFA with fresh super-start (n_nodes) and super-accept (n_nodes + 1).
    let s = n_nodes;
    let f = n_nodes + 1;
    let mut arcs: BTreeMap<(usize, usize), Regex> = BTreeMap::new();
    let add =
        |from: usize, to: usize, r: Regex, arcs: &mut BTreeMap<(usize, usize), Regex>| match arcs
            .remove(&(from, to))
        {
            Some(prev) => {
                arcs.insert((from, to), prev.or(r));
            }
            None => {
                arcs.insert((from, to), r);
            }
        };
    for &(from, sym, to) in edges {
        add(from, to, Regex::symbol(sym), &mut arcs);
    }
    add(s, start, Regex::Epsilon, &mut arcs);
    for &a in accepting {
        add(a, f, Regex::Epsilon, &mut arcs);
    }

    // Eliminate internal nodes, lowest fan-in×fan-out first.
    let mut remaining: Vec<usize> = (0..n_nodes).collect();
    while !remaining.is_empty() {
        if budgeted {
            budget::check()?;
        }
        let (pos, &node) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &q)| {
                let fan_in = arcs.keys().filter(|(_, t)| *t == q).count();
                let fan_out = arcs.keys().filter(|(u, _)| *u == q).count();
                fan_in * fan_out
            })
            .expect("non-empty");
        remaining.swap_remove(pos);
        eliminate(node, &mut arcs);
    }
    Ok(arcs.remove(&(s, f)).unwrap_or(Regex::Empty))
}

/// Converts a DFA back into a regular expression with the same language
/// (state elimination over the DFA's transition graph). Used to express
/// automata-computed trail refinements as trail expressions again.
pub fn dfa_to_regex(dfa: &crate::Dfa) -> Regex {
    let (n, edges, start, accepting) = dfa_as_graph(dfa);
    graph_to_regex(n, &edges, start, &accepting)
}

/// [`dfa_to_regex`] cooperating with the installed budget.
pub fn try_dfa_to_regex(dfa: &crate::Dfa) -> Result<Regex, Exhausted> {
    let (n, edges, start, accepting) = dfa_as_graph(dfa);
    try_graph_to_regex(n, &edges, start, &accepting)
}

/// A DFA flattened to elimination-graph form: state count, labeled edges,
/// start state, accepting states.
type EliminationGraph = (usize, Vec<(usize, Sym, usize)>, usize, Vec<usize>);

fn dfa_as_graph(dfa: &crate::Dfa) -> EliminationGraph {
    let mut edges = Vec::new();
    for q in 0..dfa.n_states() {
        for s in 0..dfa.alphabet_size() {
            edges.push((q, s, dfa.next(q, s)));
        }
    }
    let accepting: Vec<usize> = (0..dfa.n_states()).filter(|&q| dfa.is_accepting(q)).collect();
    (dfa.n_states(), edges, dfa.start(), accepting)
}

fn eliminate(q: usize, arcs: &mut BTreeMap<(usize, usize), Regex>) {
    let self_loop = arcs.remove(&(q, q));
    let loop_star = match self_loop {
        Some(r) => r.star(),
        None => Regex::Epsilon,
    };
    let incoming: Vec<(usize, Regex)> =
        arcs.iter().filter(|((_, t), _)| *t == q).map(|((u, _), r)| (*u, r.clone())).collect();
    let outgoing: Vec<(usize, Regex)> =
        arcs.iter().filter(|((u, _), _)| *u == q).map(|((_, t), r)| (*t, r.clone())).collect();
    arcs.retain(|(u, t), _| *u != q && *t != q);
    for (u, rin) in &incoming {
        for (t, rout) in &outgoing {
            let path = rin.clone().then(loop_star.clone()).then(rout.clone());
            match arcs.remove(&(*u, *t)) {
                Some(prev) => {
                    arcs.insert((*u, *t), prev.or(path));
                }
                None => {
                    arcs.insert((*u, *t), path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::nfa::Nfa;
    use crate::ops::equivalent;

    /// Checks L(graph) = L(regex) by automaton equivalence.
    fn check(n_nodes: usize, edges: &[(usize, Sym, usize)], start: usize, accepting: &[usize]) {
        let alpha = edges.iter().map(|&(_, s, _)| s + 1).max().unwrap_or(1);
        let r = graph_to_regex(n_nodes, edges, start, accepting);
        let from_graph = Dfa::from_nfa(&Nfa::from_graph(alpha, n_nodes, edges, start, accepting));
        let from_regex = Dfa::from_regex(&r, alpha);
        assert!(equivalent(&from_graph, &from_regex), "language mismatch for regex {r}");
    }

    #[test]
    fn straight_line() {
        check(3, &[(0, 0, 1), (1, 1, 2)], 0, &[2]);
    }

    #[test]
    fn diamond() {
        check(4, &[(0, 0, 1), (0, 1, 2), (1, 2, 3), (2, 3, 3)], 0, &[3]);
    }

    #[test]
    fn self_loop() {
        check(2, &[(0, 0, 0), (0, 1, 1)], 0, &[1]);
    }

    #[test]
    fn while_loop_shape() {
        // entry → head; head → body | exit; body → head.
        check(4, &[(0, 0, 1), (1, 1, 2), (2, 2, 1), (1, 3, 3)], 0, &[3]);
    }

    #[test]
    fn nested_loops() {
        // Two nested while loops.
        check(
            6,
            &[
                (0, 0, 1),
                (1, 1, 2), // outer taken
                (2, 2, 3), // inner head
                (3, 3, 2), // inner back edge
                (2, 4, 1), // inner exit → outer head
                (1, 5, 5), // outer exit
            ],
            0,
            &[5],
        );
    }

    #[test]
    fn unreachable_accept_gives_empty() {
        let r = graph_to_regex(3, &[(0, 0, 1)], 0, &[2]);
        assert!(Dfa::from_regex(&r, 1).is_empty());
    }

    #[test]
    fn multiple_accepting_states() {
        check(3, &[(0, 0, 1), (0, 1, 2)], 0, &[1, 2]);
    }

    #[test]
    fn start_is_accepting() {
        check(2, &[(0, 0, 1), (1, 1, 0)], 0, &[0]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Random small graphs round-trip through the regex conversion.
            #[test]
            fn random_graphs_round_trip(
                n in 2usize..6,
                edge_bits in proptest::collection::vec((0usize..6, 0usize..6), 0..10),
                accept in 0usize..6,
            ) {
                let edges: Vec<(usize, Sym, usize)> = edge_bits
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b))| a < n && b < n)
                    .map(|(i, &(a, b))| (a, i as Sym, b))
                    .collect();
                let accepting = [accept % n];
                check(n, &edges, 0, &accepting);
            }
        }
    }
}
