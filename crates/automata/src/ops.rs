//! Boolean operations and decision procedures on DFAs.
//!
//! The *constructions* (`intersection`/`union`/`difference`) materialize a
//! product DFA, with `try_` variants that cooperate with the installed
//! `blazer_ir::budget`. The *decision procedures*
//! (`included`/`equivalent`/`disjoint`/`counterexample`) answer on the fly
//! through [`crate::antichain`] without ever building the product — unless
//! `BLAZER_AUTOMATA=classic` routes them back to the eager engine for A/B
//! comparison (each such call is counted as a classic fallback).

use crate::antichain;
use crate::dfa::{Dfa, BUDGET_POLL_PERIOD};
use crate::Sym;
use blazer_ir::budget::{self, Exhausted};
use std::collections::BTreeMap;

/// How the product construction combines acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combine {
    And,
    Or,
    AndNot,
}

fn product(a: &Dfa, b: &Dfa, combine: Combine) -> Dfa {
    product_impl(a, b, combine, false).expect("unbudgeted product cannot exhaust")
}

fn try_product(a: &Dfa, b: &Dfa, combine: Combine) -> Result<Dfa, Exhausted> {
    product_impl(a, b, combine, true)
}

fn product_impl(a: &Dfa, b: &Dfa, combine: Combine, budgeted: bool) -> Result<Dfa, Exhausted> {
    assert_eq!(a.alphabet_size(), b.alphabet_size(), "alphabet mismatch in product");
    let alpha = a.alphabet_size();
    let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut trans: Vec<usize> = Vec::new();
    let start = (a.start(), b.start());
    index.insert(start, 0);
    pairs.push(start);
    let mut work = vec![0usize];
    let mut pops = 0usize;
    while let Some(q) = work.pop() {
        pops += 1;
        if budgeted && pops % BUDGET_POLL_PERIOD == 1 {
            budget::check()?;
        }
        let (qa, qb) = pairs[q];
        while trans.len() < (q + 1) * alpha as usize {
            trans.push(usize::MAX);
        }
        for sym in 0..alpha {
            let next = (a.next(qa, sym), b.next(qb, sym));
            let target = match index.get(&next) {
                Some(&t) => t,
                None => {
                    let t = pairs.len();
                    index.insert(next, t);
                    pairs.push(next);
                    work.push(t);
                    t
                }
            };
            trans[q * alpha as usize + sym as usize] = target;
        }
    }
    while trans.len() < pairs.len() * alpha as usize {
        trans.push(usize::MAX);
    }
    let accepting: Vec<bool> = pairs
        .iter()
        .map(|&(qa, qb)| match combine {
            Combine::And => a.is_accepting(qa) && b.is_accepting(qb),
            Combine::Or => a.is_accepting(qa) || b.is_accepting(qb),
            Combine::AndNot => a.is_accepting(qa) && !b.is_accepting(qb),
        })
        .collect();
    Ok(Dfa::from_parts(alpha, trans, 0, accepting))
}

impl Dfa {
    /// Assembles a DFA from raw parts (used by the product construction).
    ///
    /// # Panics
    ///
    /// Panics if the transition table shape does not match.
    pub fn from_parts(
        alphabet_size: u32,
        trans: Vec<usize>,
        start: usize,
        accepting: Vec<bool>,
    ) -> Dfa {
        assert_eq!(trans.len(), accepting.len() * alphabet_size as usize);
        assert!(start < accepting.len());
        assert!(trans.iter().all(|&t| t < accepting.len()));
        Dfa::from_raw_parts(alphabet_size, trans, start, accepting)
    }
}

/// `L(a) ∩ L(b)`.
pub fn intersection(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, Combine::And)
}

/// `L(a) ∪ L(b)`.
pub fn union(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, Combine::Or)
}

/// `L(a) \ L(b)`.
pub fn difference(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, Combine::AndNot)
}

/// [`intersection`] cooperating with the installed budget.
pub fn try_intersection(a: &Dfa, b: &Dfa) -> Result<Dfa, Exhausted> {
    try_product(a, b, Combine::And)
}

/// [`union`] cooperating with the installed budget.
pub fn try_union(a: &Dfa, b: &Dfa) -> Result<Dfa, Exhausted> {
    try_product(a, b, Combine::Or)
}

/// [`difference`] cooperating with the installed budget.
pub fn try_difference(a: &Dfa, b: &Dfa) -> Result<Dfa, Exhausted> {
    try_product(a, b, Combine::AndNot)
}

/// Whether `L(a) ⊆ L(b)`. On the fly via the antichain engine (classic
/// difference-and-test under `BLAZER_AUTOMATA=classic`).
pub fn included(a: &Dfa, b: &Dfa) -> bool {
    if antichain::classic_mode() {
        antichain::note_classic_fallback();
        difference(a, b).is_empty()
    } else {
        antichain::dfa_counterexample_unbudgeted(a, b).is_none()
    }
}

/// [`included`] cooperating with the installed budget.
pub fn try_included(a: &Dfa, b: &Dfa) -> Result<bool, Exhausted> {
    if antichain::classic_mode() {
        antichain::note_classic_fallback();
        Ok(try_difference(a, b)?.is_empty())
    } else {
        antichain::dfa_included(a, b)
    }
}

/// Whether `L(a) = L(b)`.
pub fn equivalent(a: &Dfa, b: &Dfa) -> bool {
    included(a, b) && included(b, a)
}

/// [`equivalent`] cooperating with the installed budget.
pub fn try_equivalent(a: &Dfa, b: &Dfa) -> Result<bool, Exhausted> {
    Ok(try_included(a, b)? && try_included(b, a)?)
}

/// Whether `L(a) ∩ L(b) = ∅`. On the fly via the antichain engine (classic
/// intersection-and-test under `BLAZER_AUTOMATA=classic`).
pub fn disjoint(a: &Dfa, b: &Dfa) -> bool {
    if antichain::classic_mode() {
        antichain::note_classic_fallback();
        intersection(a, b).is_empty()
    } else {
        antichain::dfa_disjoint_unbudgeted(a, b)
    }
}

/// [`disjoint`] cooperating with the installed budget.
pub fn try_disjoint(a: &Dfa, b: &Dfa) -> Result<bool, Exhausted> {
    if antichain::classic_mode() {
        antichain::note_classic_fallback();
        Ok(try_intersection(a, b)?.is_empty())
    } else {
        antichain::dfa_disjoint(a, b)
    }
}

/// A word in `L(a) \ L(b)`, if any (witness for non-inclusion). The
/// antichain engine early-exits on the first witness; the classic engine
/// returns the shortest one.
pub fn counterexample(a: &Dfa, b: &Dfa) -> Option<Vec<Sym>> {
    if antichain::classic_mode() {
        antichain::note_classic_fallback();
        difference(a, b).example_word()
    } else {
        antichain::dfa_counterexample_unbudgeted(a, b)
    }
}

/// [`counterexample`] cooperating with the installed budget.
pub fn try_counterexample(a: &Dfa, b: &Dfa) -> Result<Option<Vec<Sym>>, Exhausted> {
    if antichain::classic_mode() {
        antichain::note_classic_fallback();
        Ok(try_difference(a, b)?.example_word())
    } else {
        antichain::dfa_counterexample(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn dfa(r: &Regex) -> Dfa {
        Dfa::from_regex(r, 2)
    }

    fn starts_with_0() -> Regex {
        Regex::symbol(0).then(Regex::symbol(0).or(Regex::symbol(1)).star())
    }

    fn ends_with_1() -> Regex {
        Regex::symbol(0).or(Regex::symbol(1)).star().then(Regex::symbol(1))
    }

    #[test]
    fn intersection_checks_both() {
        let d = intersection(&dfa(&starts_with_0()), &dfa(&ends_with_1()));
        assert!(d.accepts(&[0, 1]));
        assert!(d.accepts(&[0, 0, 1]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1, 1]));
    }

    #[test]
    fn union_checks_either() {
        let d = union(&dfa(&starts_with_0()), &dfa(&ends_with_1()));
        assert!(d.accepts(&[0]));
        assert!(d.accepts(&[1, 1]));
        assert!(!d.accepts(&[1, 0]));
    }

    #[test]
    fn difference_and_counterexample() {
        let a = dfa(&starts_with_0());
        let b = dfa(&ends_with_1());
        let d = difference(&a, &b);
        assert!(d.accepts(&[0]));
        assert!(!d.accepts(&[0, 1]));
        let cex = counterexample(&a, &b).expect("not included");
        assert!(a.accepts(&cex) && !b.accepts(&cex));
    }

    #[test]
    fn inclusion() {
        // 0·1 ⊆ starts-with-0.
        let small = dfa(&Regex::symbol(0).then(Regex::symbol(1)));
        assert!(included(&small, &dfa(&starts_with_0())));
        assert!(!included(&dfa(&starts_with_0()), &small));
    }

    #[test]
    fn equivalence_of_different_syntax() {
        // (0*)* ≡ 0*.
        let a = dfa(&Regex::symbol(0).star());
        let b =
            dfa(&Regex::Star(std::sync::Arc::new(Regex::Star(std::sync::Arc::new(Regex::Sym(0))))));
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn union_covers_the_split_pieces() {
        // Splitting r = a|b into pieces and unioning them back is the
        // identity — the invariant REFINEPARTITION relies on.
        let a = Regex::symbol(0).then(Regex::symbol(1));
        let b = Regex::symbol(1).then(Regex::symbol(0));
        let whole = dfa(&a.clone().or(b.clone()));
        let back = union(&dfa(&a), &dfa(&b));
        assert!(equivalent(&whole, &back));
    }

    #[test]
    fn star_split_covers() {
        // r* = ε | r·r* — the loop-splitting invariant.
        let r = Regex::symbol(0).then(Regex::symbol(1));
        let star = dfa(&r.clone().star());
        let eps_side = dfa(&Regex::Epsilon);
        let unrolled = dfa(&r.clone().then(r.star()));
        assert!(equivalent(&star, &union(&eps_side, &unrolled)));
    }

    #[test]
    fn disjointness() {
        let a = dfa(&Regex::symbol(0));
        let b = dfa(&Regex::symbol(1));
        assert!(disjoint(&a, &b));
        assert!(!disjoint(&a, &dfa(&starts_with_0())));
    }
}
