//! Boolean operations and decision procedures on DFAs.

use crate::dfa::Dfa;
use crate::Sym;
use std::collections::BTreeMap;

/// How the product construction combines acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combine {
    And,
    Or,
    AndNot,
}

fn product(a: &Dfa, b: &Dfa, combine: Combine) -> Dfa {
    assert_eq!(a.alphabet_size(), b.alphabet_size(), "alphabet mismatch in product");
    let alpha = a.alphabet_size();
    let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut trans: Vec<usize> = Vec::new();
    let start = (a.start(), b.start());
    index.insert(start, 0);
    pairs.push(start);
    let mut work = vec![0usize];
    while let Some(q) = work.pop() {
        let (qa, qb) = pairs[q];
        while trans.len() < (q + 1) * alpha as usize {
            trans.push(usize::MAX);
        }
        for sym in 0..alpha {
            let next = (a.next(qa, sym), b.next(qb, sym));
            let target = match index.get(&next) {
                Some(&t) => t,
                None => {
                    let t = pairs.len();
                    index.insert(next, t);
                    pairs.push(next);
                    work.push(t);
                    t
                }
            };
            trans[q * alpha as usize + sym as usize] = target;
        }
    }
    while trans.len() < pairs.len() * alpha as usize {
        trans.push(usize::MAX);
    }
    let accepting: Vec<bool> = pairs
        .iter()
        .map(|&(qa, qb)| match combine {
            Combine::And => a.is_accepting(qa) && b.is_accepting(qb),
            Combine::Or => a.is_accepting(qa) || b.is_accepting(qb),
            Combine::AndNot => a.is_accepting(qa) && !b.is_accepting(qb),
        })
        .collect();
    Dfa::from_parts(alpha, trans, 0, accepting)
}

impl Dfa {
    /// Assembles a DFA from raw parts (used by the product construction).
    ///
    /// # Panics
    ///
    /// Panics if the transition table shape does not match.
    pub fn from_parts(
        alphabet_size: u32,
        trans: Vec<usize>,
        start: usize,
        accepting: Vec<bool>,
    ) -> Dfa {
        assert_eq!(trans.len(), accepting.len() * alphabet_size as usize);
        assert!(start < accepting.len());
        assert!(trans.iter().all(|&t| t < accepting.len()));
        DfaParts { alphabet_size, trans, start, accepting }.build()
    }
}

/// Private builder to keep `Dfa` fields encapsulated.
struct DfaParts {
    alphabet_size: u32,
    trans: Vec<usize>,
    start: usize,
    accepting: Vec<bool>,
}

impl DfaParts {
    fn build(self) -> Dfa {
        // Round-trip through an NFA to reuse the (private-field) DFA
        // constructor without exposing fields.
        let mut nfa = crate::Nfa::new(self.alphabet_size, self.accepting.len(), self.start);
        for q in 0..self.accepting.len() {
            for s in 0..self.alphabet_size {
                let t = self.trans[q * self.alphabet_size as usize + s as usize];
                nfa.add_transition(q, s, t);
            }
            if self.accepting[q] {
                nfa.set_accepting(q);
            }
        }
        Dfa::from_nfa(&nfa)
    }
}

/// `L(a) ∩ L(b)`.
pub fn intersection(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, Combine::And)
}

/// `L(a) ∪ L(b)`.
pub fn union(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, Combine::Or)
}

/// `L(a) \ L(b)`.
pub fn difference(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, Combine::AndNot)
}

/// Whether `L(a) ⊆ L(b)`.
pub fn included(a: &Dfa, b: &Dfa) -> bool {
    difference(a, b).is_empty()
}

/// Whether `L(a) = L(b)`.
pub fn equivalent(a: &Dfa, b: &Dfa) -> bool {
    included(a, b) && included(b, a)
}

/// Whether `L(a) ∩ L(b) = ∅`.
pub fn disjoint(a: &Dfa, b: &Dfa) -> bool {
    intersection(a, b).is_empty()
}

/// A word in `L(a) \ L(b)`, if any (witness for non-inclusion).
pub fn counterexample(a: &Dfa, b: &Dfa) -> Option<Vec<Sym>> {
    difference(a, b).example_word()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn dfa(r: &Regex) -> Dfa {
        Dfa::from_regex(r, 2)
    }

    fn starts_with_0() -> Regex {
        Regex::symbol(0).then(Regex::symbol(0).or(Regex::symbol(1)).star())
    }

    fn ends_with_1() -> Regex {
        Regex::symbol(0).or(Regex::symbol(1)).star().then(Regex::symbol(1))
    }

    #[test]
    fn intersection_checks_both() {
        let d = intersection(&dfa(&starts_with_0()), &dfa(&ends_with_1()));
        assert!(d.accepts(&[0, 1]));
        assert!(d.accepts(&[0, 0, 1]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1, 1]));
    }

    #[test]
    fn union_checks_either() {
        let d = union(&dfa(&starts_with_0()), &dfa(&ends_with_1()));
        assert!(d.accepts(&[0]));
        assert!(d.accepts(&[1, 1]));
        assert!(!d.accepts(&[1, 0]));
    }

    #[test]
    fn difference_and_counterexample() {
        let a = dfa(&starts_with_0());
        let b = dfa(&ends_with_1());
        let d = difference(&a, &b);
        assert!(d.accepts(&[0]));
        assert!(!d.accepts(&[0, 1]));
        let cex = counterexample(&a, &b).expect("not included");
        assert!(a.accepts(&cex) && !b.accepts(&cex));
    }

    #[test]
    fn inclusion() {
        // 0·1 ⊆ starts-with-0.
        let small = dfa(&Regex::symbol(0).then(Regex::symbol(1)));
        assert!(included(&small, &dfa(&starts_with_0())));
        assert!(!included(&dfa(&starts_with_0()), &small));
    }

    #[test]
    fn equivalence_of_different_syntax() {
        // (0*)* ≡ 0*.
        let a = dfa(&Regex::symbol(0).star());
        let b =
            dfa(&Regex::Star(std::sync::Arc::new(Regex::Star(std::sync::Arc::new(Regex::Sym(0))))));
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn union_covers_the_split_pieces() {
        // Splitting r = a|b into pieces and unioning them back is the
        // identity — the invariant REFINEPARTITION relies on.
        let a = Regex::symbol(0).then(Regex::symbol(1));
        let b = Regex::symbol(1).then(Regex::symbol(0));
        let whole = dfa(&a.clone().or(b.clone()));
        let back = union(&dfa(&a), &dfa(&b));
        assert!(equivalent(&whole, &back));
    }

    #[test]
    fn star_split_covers() {
        // r* = ε | r·r* — the loop-splitting invariant.
        let r = Regex::symbol(0).then(Regex::symbol(1));
        let star = dfa(&r.clone().star());
        let eps_side = dfa(&Regex::Epsilon);
        let unrolled = dfa(&r.clone().then(r.star()));
        assert!(equivalent(&star, &union(&eps_side, &unrolled)));
    }

    #[test]
    fn disjointness() {
        let a = dfa(&Regex::symbol(0));
        let b = dfa(&Regex::symbol(1));
        assert!(disjoint(&a, &b));
        assert!(!disjoint(&a, &dfa(&starts_with_0())));
    }
}
