//! Property tests for the boolean algebra of regular languages — the
//! operations trail refinement relies on (Sec. 5 uses them for inclusion,
//! intersection, union, and complementation).

use blazer_automata::{ops, Dfa, Regex};
use proptest::prelude::*;

const ALPHA: u32 = 3;

/// A random regex over a 3-symbol alphabet, depth-bounded.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![Just(Regex::Epsilon), (0..ALPHA).prop_map(Regex::symbol),];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Regex::star),
        ]
    })
}

fn dfa(r: &Regex) -> Dfa {
    Dfa::from_regex(r, ALPHA)
}

/// All words up to length 4 over the alphabet.
fn words() -> Vec<Vec<u32>> {
    let mut out = vec![vec![]];
    let mut frontier = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for w in &frontier {
            for s in 0..ALPHA {
                let mut w2 = w.clone();
                w2.push(s);
                out.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B.
    #[test]
    fn de_morgan(a in regex_strategy(), b in regex_strategy()) {
        let da = dfa(&a);
        let db = dfa(&b);
        let lhs = ops::union(&da, &db).complement();
        let rhs = ops::intersection(&da.complement(), &db.complement());
        prop_assert!(ops::equivalent(&lhs, &rhs));
    }

    /// Double complement is the identity.
    #[test]
    fn double_complement(a in regex_strategy()) {
        let da = dfa(&a);
        prop_assert!(ops::equivalent(&da, &da.complement().complement()));
    }

    /// Difference decomposes: A = (A \ B) ∪ (A ∩ B).
    #[test]
    fn difference_partition(a in regex_strategy(), b in regex_strategy()) {
        let da = dfa(&a);
        let db = dfa(&b);
        let rebuilt = ops::union(&ops::difference(&da, &db), &ops::intersection(&da, &db));
        prop_assert!(ops::equivalent(&da, &rebuilt));
    }

    /// Inclusion agrees with membership on sampled words, and minimization
    /// preserves the language.
    #[test]
    fn semantics_on_words(a in regex_strategy(), b in regex_strategy()) {
        let da = dfa(&a);
        let db = dfa(&b);
        let ma = da.minimize();
        let inter = ops::intersection(&da, &db);
        for w in words() {
            prop_assert_eq!(da.accepts(&w), ma.accepts(&w), "minimize changed {:?}", w);
            prop_assert_eq!(inter.accepts(&w), da.accepts(&w) && db.accepts(&w));
            prop_assert_eq!(da.complement().accepts(&w), !da.accepts(&w));
        }
        if ops::included(&da, &db) {
            for w in words() {
                if da.accepts(&w) {
                    prop_assert!(db.accepts(&w), "inclusion lied about {:?}", w);
                }
            }
        } else {
            // A counterexample word must exist and be correct.
            let cex = ops::counterexample(&da, &db).expect("non-inclusion has witness");
            prop_assert!(da.accepts(&cex) && !db.accepts(&cex));
        }
    }

    /// `graph_to_regex ∘ dfa` round-trips languages (trails survive the
    /// automata detour that block-based refinement takes).
    #[test]
    fn dfa_regex_round_trip(a in regex_strategy()) {
        let da = dfa(&a).minimize();
        let back = blazer_automata::kleene::dfa_to_regex(&da);
        let db = dfa(&back);
        prop_assert!(ops::equivalent(&da, &db), "round trip changed language of {}", a);
    }

    /// Emptiness test agrees with word sampling.
    #[test]
    fn emptiness(a in regex_strategy(), b in regex_strategy()) {
        let d = ops::difference(&dfa(&a), &dfa(&b));
        if d.is_empty() {
            for w in words() {
                prop_assert!(!d.accepts(&w));
            }
        } else {
            prop_assert!(d.example_word().is_some());
        }
    }
}
