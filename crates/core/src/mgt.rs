//! The most general trail of a CFG (Sec. 4.1).

use blazer_absint::EdgeAlphabet;
use blazer_automata::{graph_to_regex, Regex};
use blazer_ir::Cfg;

/// The most general trail `trmg` of a CFG: a regular expression over the
/// edge alphabet whose language equals the language of the CFG automaton
/// (entry to exit). Its language is a superset of the actual execution
/// traces, as the paper notes.
pub fn most_general_trail(cfg: &Cfg, alphabet: &EdgeAlphabet) -> Regex {
    let edges: Vec<(usize, blazer_automata::Sym, usize)> =
        cfg.edges().into_iter().map(|e| (e.from.index(), alphabet.sym(e), e.to.index())).collect();
    graph_to_regex(cfg.n_nodes(), &edges, cfg.entry().index(), &[cfg.exit().index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_automata::{ops, Dfa, Nfa};
    use blazer_lang::compile;

    /// L(trmg) must equal the CFG automaton's language.
    fn check(src: &str) {
        let p = compile(src).unwrap();
        let f = p.functions().next().unwrap();
        let cfg = Cfg::new(f);
        let alpha = EdgeAlphabet::new(&cfg);
        let trmg = most_general_trail(&cfg, &alpha);
        let edges: Vec<(usize, blazer_automata::Sym, usize)> =
            cfg.edges().into_iter().map(|e| (e.from.index(), alpha.sym(e), e.to.index())).collect();
        let graph_dfa = Dfa::from_nfa(&Nfa::from_graph(
            alpha.len() as u32,
            cfg.n_nodes(),
            &edges,
            cfg.entry().index(),
            &[cfg.exit().index()],
        ));
        let trail_dfa = Dfa::from_regex(&trmg, alpha.len() as u32);
        assert!(
            ops::equivalent(&graph_dfa, &trail_dfa),
            "most general trail must match CFG language: {trmg}"
        );
    }

    #[test]
    fn straightline() {
        check("fn f() { tick(1); }");
    }

    #[test]
    fn branching() {
        check("fn f(x: int) { if (x > 0) { tick(1); } else { tick(2); } }");
    }

    #[test]
    fn looping() {
        check("fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } }");
    }

    #[test]
    fn early_returns() {
        check(
            "fn f(n: int) -> int { \
                if (n < 0) { return 0; } \
                let i: int = 0; \
                while (i < n) { if (i == 7) { return 1; } i = i + 1; } \
                return 2; \
            }",
        );
    }

    #[test]
    fn paper_example_2_shape() {
        check(
            "fn bar(high: int #high, low: int) { \
                if (low > 0) { \
                    let i: int = 0; \
                    while (i < low) { i = i + 1; } \
                    while (i > 0) { i = i - 1; } \
                } else { \
                    if (high == 0) { tick(1); } else { tick(2); } \
                } \
            }",
        );
    }
}
