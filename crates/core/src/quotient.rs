//! The semantic quotient-partitioning framework of Sec. 3, executable on
//! finite trace sets.
//!
//! These definitions mirror the paper one-to-one so the soundness theorem
//! (Theorem 3.1) can be *checked empirically*: for small programs we
//! enumerate traces, build a partition, verify the premises, and confirm
//! the conclusion. The production analysis in [`crate::driver`] is one
//! instance (ψ = equal low inputs, P = "running time close to a fixed
//! high-independent function").

/// A trace partition: a family of (possibly overlapping) components, each a
/// set of indices into a trace universe. The paper's `T = {T₁, …, Tₙ}`.
pub type Partition = Vec<Vec<usize>>;

/// Whether the partition covers every trace: `⟦C⟧ ⊆ ⋃ᵢ Tᵢ`.
pub fn covers(n_traces: usize, partition: &Partition) -> bool {
    (0..n_traces).all(|t| partition.iter().any(|comp| comp.contains(&t)))
}

/// Whether `partition` is a ψ-quotient partition (Sec. 3.2, k = 2): every
/// pair of traces satisfying ψ shares some component.
pub fn is_psi_quotient<T>(
    traces: &[T],
    partition: &Partition,
    psi: impl Fn(&T, &T) -> bool,
) -> bool {
    for i in 0..traces.len() {
        for j in 0..traces.len() {
            if psi(&traces[i], &traces[j]) {
                let together = partition.iter().any(|comp| comp.contains(&i) && comp.contains(&j));
                if !together {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether a 2-safety property Φ is ψ-quotient partitionable (Sec. 3.2):
/// `∀π₁π₂. ψ(π₁,π₂) ∨ Φ(π₁,π₂)` on this finite universe.
pub fn is_psi_partitionable<T>(
    traces: &[T],
    psi: impl Fn(&T, &T) -> bool,
    phi: impl Fn(&T, &T) -> bool,
) -> bool {
    for a in traces {
        for b in traces {
            if !psi(a, b) && !phi(a, b) {
                return false;
            }
        }
    }
    true
}

/// Whether the trace property `P` is relational-by-property-sharing for Φ
/// (Sec. 3.3): `P(π₁) ∧ P(π₂) ⇒ Φ(π₁, π₂)` on this finite universe.
pub fn rbps<T>(traces: &[T], p: impl Fn(&T) -> bool, phi: impl Fn(&T, &T) -> bool) -> bool {
    for a in traces {
        for b in traces {
            if p(a) && p(b) && !phi(a, b) {
                return false;
            }
        }
    }
    true
}

/// The premises of Theorem 3.1 for one concrete instantiation: a per-
/// component trace property `props[i]` for component `i`.
///
/// Returns `Ok(())` when all premises hold — in which case the theorem
/// *guarantees* `∀π₁π₂. Φ(π₁,π₂)` — or a description of the failing
/// premise.
///
/// # Errors
///
/// Reports which premise (coverage, quotient, partitionability, RBPS, or a
/// per-component property) fails.
pub fn theorem_3_1_premises<T>(
    traces: &[T],
    partition: &Partition,
    psi: impl Fn(&T, &T) -> bool + Copy,
    phi: impl Fn(&T, &T) -> bool + Copy,
    props: &[&dyn Fn(&T) -> bool],
) -> Result<(), String> {
    if props.len() != partition.len() {
        return Err("one property per component required".into());
    }
    if !covers(traces.len(), partition) {
        return Err("partition does not cover the trace set".into());
    }
    if !is_psi_quotient(traces, partition, psi) {
        return Err("partition is not ψ-quotient".into());
    }
    if !is_psi_partitionable(traces, psi, phi) {
        return Err("property is not ψ-quotient partitionable".into());
    }
    for (i, comp) in partition.iter().enumerate() {
        if !rbps(traces, props[i], phi) {
            return Err(format!("P{i} is not relational-by-property-sharing"));
        }
        for &t in comp {
            if !props[i](&traces[t]) {
                return Err(format!("trace {t} violates P{i}"));
            }
        }
    }
    Ok(())
}

/// The conclusion of Theorem 3.1: the 2-safety property holds on all pairs.
pub fn two_safety_holds<T>(traces: &[T], phi: impl Fn(&T, &T) -> bool) -> bool {
    traces.iter().all(|a| traces.iter().all(|b| phi(a, b)))
}

// ---------------------------------------------------------------------------
// General k (Sec. 3.4): the framework is "developed generally for k-safety
// properties where k can be larger than 2". These generic-k versions take
// predicates over trace slices.
// ---------------------------------------------------------------------------

/// Whether `partition` is a ψ-quotient partition for a k-ary ψ: every
/// k-tuple satisfying ψ shares a component. (Tuples are drawn with
/// repetition, as in the paper's `∀π₁…πk ∈ ⟦C⟧ᵏ`.)
pub fn is_psi_quotient_k<T>(
    traces: &[T],
    partition: &Partition,
    k: usize,
    psi: impl Fn(&[&T]) -> bool,
) -> bool {
    for_all_tuples(traces.len(), k, &mut |idx| {
        let tuple: Vec<&T> = idx.iter().map(|&i| &traces[i]).collect();
        if psi(&tuple) {
            partition.iter().any(|comp| idx.iter().all(|i| comp.contains(i)))
        } else {
            true
        }
    })
}

/// Whether a k-safety property Φ is ψ-quotient partitionable:
/// `∀π̄. ψ(π̄) ∨ Φ(π̄)`.
pub fn is_psi_partitionable_k<T>(
    traces: &[T],
    k: usize,
    psi: impl Fn(&[&T]) -> bool,
    phi: impl Fn(&[&T]) -> bool,
) -> bool {
    for_all_tuples(traces.len(), k, &mut |idx| {
        let tuple: Vec<&T> = idx.iter().map(|&i| &traces[i]).collect();
        psi(&tuple) || phi(&tuple)
    })
}

/// k-ary relational-by-property-sharing: `⋀ᵢ P(πᵢ) ⇒ Φ(π̄)`.
pub fn rbps_k<T>(
    traces: &[T],
    k: usize,
    p: impl Fn(&T) -> bool,
    phi: impl Fn(&[&T]) -> bool,
) -> bool {
    for_all_tuples(traces.len(), k, &mut |idx| {
        let tuple: Vec<&T> = idx.iter().map(|&i| &traces[i]).collect();
        if tuple.iter().all(|t| p(t)) {
            phi(&tuple)
        } else {
            true
        }
    })
}

/// Whether the k-safety property holds on all k-tuples.
pub fn k_safety_holds<T>(traces: &[T], k: usize, phi: impl Fn(&[&T]) -> bool) -> bool {
    for_all_tuples(traces.len(), k, &mut |idx| {
        let tuple: Vec<&T> = idx.iter().map(|&i| &traces[i]).collect();
        phi(&tuple)
    })
}

/// Enumerates all length-`k` index tuples over `0..n` (with repetition),
/// invoking `check`; returns false at the first violation.
fn for_all_tuples(n: usize, k: usize, check: &mut impl FnMut(&[usize]) -> bool) -> bool {
    let mut idx = vec![0usize; k];
    if n == 0 {
        return true;
    }
    loop {
        if !check(&idx) {
            return false;
        }
        // Odometer increment.
        let mut pos = k;
        loop {
            if pos == 0 {
                return true;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < n {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// The m-ary relational extension of RBPS (end of Sec. 3.3): a relation Θ
/// over m traces such that Θ holding on every m-subset of a k-tuple implies
/// Φ on the tuple. Checked here for m = 2 over k-tuples:
/// `⋀_{i<j} Θ(πᵢ, πⱼ) ⇒ Φ(π̄)`.
pub fn rbps_relational_2<T>(
    traces: &[T],
    k: usize,
    theta: impl Fn(&T, &T) -> bool,
    phi: impl Fn(&[&T]) -> bool,
) -> bool {
    for_all_tuples(traces.len(), k, &mut |idx| {
        let tuple: Vec<&T> = idx.iter().map(|&i| &traces[i]).collect();
        let all_pairs = (0..k).all(|i| (0..k).all(|j| i >= j || theta(tuple[i], tuple[j])));
        if all_pairs {
            phi(&tuple)
        } else {
            true
        }
    })
}

/// The channel-capacity property `ccf` for capacity q (Sec. 3.4): at most
/// `q` distinct running times per public input, a (q+1)-safety property.
/// `eps` is the attacker-indistinguishability constant for times.
pub fn channel_capacity_phi(q: usize, eps: u64) -> impl Fn(&[&(i64, i64, u64)]) -> bool {
    move |tuple: &[&(i64, i64, u64)]| {
        debug_assert_eq!(tuple.len(), q + 1);
        // If the tuple shares lows, some pair among the q+1 must be
        // indistinguishable (pigeonhole over at most q classes).
        let same_low = tuple.windows(2).all(|w| w[0].0 == w[1].0);
        if !same_low {
            return true;
        }
        for i in 0..tuple.len() {
            for j in i + 1..tuple.len() {
                if tuple[i].2.abs_diff(tuple[j].2) <= eps {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature trace: (low input, high input, running time).
    type Tr = (i64, i64, u64);

    fn psi_tcf(a: &Tr, b: &Tr) -> bool {
        a.0 == b.0
    }

    /// Timing-channel freedom with attacker constant 1.
    fn phi_tcf(a: &Tr, b: &Tr) -> bool {
        !psi_tcf(a, b) || a.2.abs_diff(b.2) <= 1
    }

    /// Example 2 from Sec. 2: low > 0 runs in 2·low, otherwise constant
    /// 1 or 2 depending on high.
    fn example2_traces() -> Vec<Tr> {
        let mut out = Vec::new();
        for low in -2..=3i64 {
            for high in 0..=1i64 {
                let time = if low > 0 { 2 * low as u64 } else { 1 + high as u64 };
                out.push((low, high, time));
            }
        }
        out
    }

    #[test]
    fn example2_partition_satisfies_theorem() {
        let traces = example2_traces();
        // T> = {low > 0}, T≤ = {low ≤ 0}.
        let t_pos: Vec<usize> = (0..traces.len()).filter(|&i| traces[i].0 > 0).collect();
        let t_neg: Vec<usize> = (0..traces.len()).filter(|&i| traces[i].0 <= 0).collect();
        let partition = vec![t_pos, t_neg];
        // P_lin: time = 2·low; P_const: time within 1 of 1.
        let p_lin = |t: &Tr| t.0 > 0 && t.2 == 2 * t.0 as u64;
        let p_const = |t: &Tr| t.0 <= 0 && t.2.abs_diff(1) <= 1;
        // Hmm: RBPS must hold for ALL pairs satisfying both P's, including
        // pairs with different lows — those satisfy Φ vacuously.
        theorem_3_1_premises(&traces, &partition, psi_tcf, phi_tcf, &[&p_lin, &p_const])
            .expect("premises hold");
        assert!(two_safety_holds(&traces, phi_tcf));
    }

    #[test]
    fn leaky_program_fails_somewhere() {
        // time = high: blatant channel.
        let traces: Vec<Tr> =
            (0..4).flat_map(|low| (0..4).map(move |high| (low, high, 10 * high as u64))).collect();
        // No partition on low data can save it: with the trivial partition
        // and the only candidate P (constant time), premises fail.
        let all: Vec<usize> = (0..traces.len()).collect();
        let partition = vec![all];
        let p_const = |t: &Tr| t.2 <= 1;
        let r = theorem_3_1_premises(&traces, &partition, psi_tcf, phi_tcf, &[&p_const]);
        assert!(r.is_err());
        assert!(!two_safety_holds(&traces, phi_tcf));
    }

    #[test]
    fn quotient_violations_detected() {
        let traces: Vec<Tr> = vec![(0, 0, 1), (0, 1, 1), (1, 0, 2)];
        // Splitting the two low=0 traces apart is NOT ψ-quotient.
        let bad = vec![vec![0], vec![1, 2]];
        assert!(!is_psi_quotient(&traces, &bad, psi_tcf));
        let good = vec![vec![0, 1], vec![2]];
        assert!(is_psi_quotient(&traces, &good, psi_tcf));
    }

    #[test]
    fn coverage_detected() {
        assert!(covers(3, &vec![vec![0, 1], vec![2]]));
        assert!(!covers(3, &vec![vec![0, 1]]));
    }

    #[test]
    fn tcf_is_psi_partitionable() {
        // Example 6: tcf is ψtcf-quotient partitionable by construction.
        let traces = example2_traces();
        assert!(is_psi_partitionable(&traces, psi_tcf, phi_tcf));
    }

    #[test]
    fn overlapping_components_allowed() {
        // "we do not enforce the Tᵢ's to be pairwise disjoint".
        let traces: Vec<Tr> = vec![(0, 0, 1), (0, 1, 1)];
        let overlapping = vec![vec![0, 1], vec![1]];
        assert!(covers(2, &overlapping));
        assert!(is_psi_quotient(&traces, &overlapping, psi_tcf));
    }

    #[test]
    fn determinism_is_quotient_partitionable() {
        // Sec. 3.4: det(C) with ψdet(π₁, π₂) = in(π₁) = in(π₂). Traces:
        // (input, _, output-as-time).
        let traces: Vec<Tr> = vec![(0, 0, 5), (0, 1, 5), (1, 0, 9), (1, 1, 9)];
        let psi = |a: &Tr, b: &Tr| a.0 == b.0;
        let phi = |a: &Tr, b: &Tr| a.0 != b.0 || a.2 == b.2;
        assert!(is_psi_partitionable(&traces, psi, phi));
        // Partition by input; P_g(π): out(π) = g(in(π)).
        let partition = vec![vec![0, 1], vec![2, 3]];
        assert!(is_psi_quotient(&traces, &partition, psi));
        let p0 = |t: &Tr| t.0 == 0 && t.2 == 5;
        let p1 = |t: &Tr| t.0 == 1 && t.2 == 9;
        theorem_3_1_premises(&traces, &partition, psi, phi, &[&p0, &p1])
            .expect("deterministic system verifies");
        assert!(two_safety_holds(&traces, phi));
    }

    #[test]
    fn channel_capacity_two_times_is_3_safety() {
        // A system with exactly two running times per low input (a one-bit
        // channel): ccf with q = 2 holds, plain tcf (q = 1) does not.
        let traces: Vec<Tr> = (0..3)
            .flat_map(|low| (0..4).map(move |high| (low, high, 10 + (high % 2) as u64 * 50)))
            .collect();
        let psi3 = |t: &[&Tr]| t.windows(2).all(|w| w[0].0 == w[1].0);
        let phi3 = channel_capacity_phi(2, 1);
        assert!(is_psi_partitionable_k(&traces, 3, psi3, &phi3));
        assert!(k_safety_holds(&traces, 3, &phi3), "q = 2 capacity holds");
        assert!(!two_safety_holds(&traces, phi_tcf), "q = 1 (tcf) fails");
        // Per-low partition is ψ-quotient for the ternary ψ as well.
        let mut partition: Partition = Vec::new();
        for low in 0..3 {
            partition.push((0..traces.len()).filter(|&i| traces[i].0 == low).collect());
        }
        assert!(is_psi_quotient_k(&traces, &partition, 3, psi3));
        // RBPS with P_{f1,f2}: time close to 10 or 60 (the two allowed
        // high-independent time functions of Example 7's generalization).
        let p = |t: &Tr| t.2.abs_diff(10) <= 1 || t.2.abs_diff(60) <= 1;
        assert!(rbps_k(&traces, 3, p, &phi3));
    }

    #[test]
    fn capacity_violation_detected() {
        // Three well-separated times per low: q = 2 capacity fails.
        let traces: Vec<Tr> = (0..3).map(|high| (0, high, 10 + high as u64 * 100)).collect();
        let phi3 = channel_capacity_phi(2, 1);
        assert!(!k_safety_holds(&traces, 3, &phi3));
    }

    #[test]
    fn relational_partition_properties() {
        // Θ(π₁, π₂): times within 1 of each other. If Θ holds pairwise on
        // a triple, any ccf-style Φ that only needs one close pair holds.
        let traces: Vec<Tr> = vec![(0, 0, 10), (0, 1, 10), (0, 2, 11)];
        let theta = |a: &Tr, b: &Tr| a.2.abs_diff(b.2) <= 1;
        let phi3 = channel_capacity_phi(2, 1);
        assert!(rbps_relational_2(&traces, 3, theta, &phi3));
        // A Θ that does not hold pairwise imposes nothing.
        let traces2: Vec<Tr> = vec![(0, 0, 10), (0, 1, 200), (0, 2, 900)];
        assert!(rbps_relational_2(&traces2, 3, theta, &phi3));
        // But if Θ is trivially true, the check reduces to Φ everywhere.
        assert!(!rbps_relational_2(&traces2, 3, |_, _| true, &phi3));
    }

    #[test]
    fn tuple_enumeration_covers_everything() {
        let mut seen = std::collections::BTreeSet::new();
        for_all_tuples(3, 2, &mut |idx| {
            seen.insert(idx.to_vec());
            true
        });
        assert_eq!(seen.len(), 9);
        // Early exit works.
        let mut count = 0;
        let all = for_all_tuples(3, 2, &mut |_| {
            count += 1;
            count < 4
        });
        assert!(!all);
        assert_eq!(count, 4);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Empirical Theorem 3.1: whenever the premises validate, the
            /// 2-safety conclusion holds — on random trace sets partitioned
            /// by low value with per-component "time equals f(low)"
            /// properties.
            #[test]
            fn theorem_holds_on_random_balanced_systems(
                lows in proptest::collection::vec(0i64..4, 1..24),
                base in 0u64..50,
            ) {
                // Balanced system: time = base + 3·low (high-independent).
                let traces: Vec<Tr> = lows
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| (l, i as i64, base + 3 * l as u64))
                    .collect();
                let mut partition: Partition = Vec::new();
                #[allow(clippy::type_complexity)]
                let mut props_owned: Vec<Box<dyn Fn(&Tr) -> bool>> = Vec::new();
                for lv in 0..4i64 {
                    let comp: Vec<usize> =
                        (0..traces.len()).filter(|&i| traces[i].0 == lv).collect();
                    if comp.is_empty() {
                        continue;
                    }
                    partition.push(comp);
                    let expected = base + 3 * lv as u64;
                    props_owned.push(Box::new(move |t: &Tr| {
                        t.0 == lv && t.2.abs_diff(expected) <= 1
                    }));
                }
                let props: Vec<&dyn Fn(&Tr) -> bool> =
                    props_owned.iter().map(|b| b.as_ref()).collect();
                theorem_3_1_premises(&traces, &partition, psi_tcf, phi_tcf, &props)
                    .expect("balanced systems satisfy the premises");
                prop_assert!(two_safety_holds(&traces, phi_tcf));
            }
        }
    }
}
