//! # blazer-core
//!
//! The paper's primary contribution: proving timing-channel freedom by
//! **decomposition** — quotient partitioning with trails — instead of
//! self-composition.
//!
//! The public entry point is [`Blazer`]:
//!
//! ```
//! use blazer_core::{Blazer, Config, Verdict};
//!
//! let program = blazer_lang::compile(
//!     "fn foo(high: int #high, low: int) { \
//!         if (high == 0) { \
//!             let i: int = 0; \
//!             while (i < low) { i = i + 1; } \
//!         } else { \
//!             let i: int = low; \
//!             while (i > 0) { i = i - 1; } \
//!         } \
//!     }",
//! )?;
//! let outcome = Blazer::new(Config::microbench()).analyze(&program, "foo")?;
//! assert!(matches!(outcome.verdict, Verdict::Safe));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Module map (paper section in parentheses):
//!
//! * [`quotient`] — the k-safety / ψ-quotient-partition framework (Sec. 3),
//!   executable on finite trace samples so Theorem 3.1 is testable;
//! * [`mgt`] — the most general trail of a CFG (Sec. 4.1);
//! * [`trail`] — low/high annotation of trail constructors (Sec. 4.2);
//! * [`refine`] — `RefinePartition`: splitting at annotated constructors
//!   (Sec. 4.3);
//! * [`tree`] — the tree of trails rendered in Fig. 1;
//! * [`driver`] — the overall algorithm of Fig. 2 (`CheckSafe`,
//!   `CheckAttack`, and the two refinement loops);
//! * [`attack`] — attack specifications and their concretization into
//!   witness input pairs via the interpreter (Sec. 2.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod driver;
pub mod mgt;
pub mod quotient;
pub mod refine;
pub mod trail;
pub mod tree;

pub use attack::AttackSpec;
pub use blazer_automata::AntichainStats;
pub use blazer_ir::budget::{Budget, BudgetHandle, BudgetReport, FaultSpec, Resource};
pub use driver::{
    concretize_outcome, AnalysisOutcome, Blazer, Config, CoreError, Degradation, DegradeReason,
    DomainKind, SeedStats, UnknownReason, Verdict,
};
pub use tree::{NodeStatus, SplitKind, TrailTree};
