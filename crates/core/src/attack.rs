//! Attack specifications and their concretization (Sec. 2.3).
//!
//! "Because we are working with a static analysis, the result of our tool is
//! not immediately two concrete traces. However, it provides a specification
//! for two traces that witness the attack. All that remains is to ensure
//! that these traces are feasible by finding justifying inputs." We
//! implement that last step with a randomized search over the concrete
//! interpreter.

use blazer_automata::{Dfa, Regex};
use blazer_bounds::CostExpr;
use blazer_interp::{Interp, SeededOracle, Value};
use blazer_ir::{Cfg, Program, SecurityLabel, Type};
use std::fmt;

/// A specification of a timing attack: two trails whose choice depends on
/// secret data and whose running-time bounds differ observably.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// Tree index of the first trail.
    pub node_a: usize,
    /// Tree index of the second trail.
    pub node_b: usize,
    /// The first trail.
    pub trail_a: Regex,
    /// The second trail.
    pub trail_b: Regex,
    /// `[lower, upper]` bounds of the first trail.
    pub bounds_a: (CostExpr, Option<CostExpr>),
    /// `[lower, upper]` bounds of the second trail.
    pub bounds_b: (CostExpr, Option<CostExpr>),
}

impl fmt::Display for AttackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "attack specification: secret-dependent choice between trails with observably different running times"
        )?;
        writeln!(f, "  trail A (tr{}): {}", self.node_a, self.trail_a)?;
        writeln!(f, "  trail B (tr{}): {}", self.node_b, self.trail_b)?;
        Ok(())
    }
}

/// Two concrete runs witnessing an attack: equal low inputs, different
/// running times.
#[derive(Debug, Clone)]
pub struct AttackWitness {
    /// Inputs of the first run.
    pub inputs_a: Vec<Value>,
    /// Inputs of the second run (equal on all low parameters).
    pub inputs_b: Vec<Value>,
    /// Measured cost of the first run.
    pub cost_a: u64,
    /// Measured cost of the second run.
    pub cost_b: u64,
}

impl AttackWitness {
    /// The observable timing difference.
    pub fn difference(&self) -> u64 {
        self.cost_a.abs_diff(self.cost_b)
    }
}

/// Minimal deterministic generator for input search (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }

    fn value(&mut self, ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(self.int_in(-4, 40)),
            Type::Bool => Value::Int(self.int_in(0, 1)),
            Type::Array => {
                let len = self.int_in(0, 10) as usize;
                Value::array((0..len).map(|_| self.int_in(0, 7)).collect())
            }
        }
    }
}

/// Searches for a concrete witness of a timing channel in `func`: two runs
/// agreeing on every low input whose costs differ by more than `epsilon`
/// when measured under `cost_model` — the *same* model the symbolic
/// analysis priced the trails with. (Measuring under a different model
/// would mis-price witnesses: a pair separated by cache misses is invisible
/// to a unit-cost stopwatch, and vice versa.)
///
/// When `spec` is given, the runs' traces are additionally required to lie
/// in the specification's two trails (in either order), so the witness
/// justifies that particular specification.
pub fn concretize(
    program: &Program,
    func: &str,
    spec: Option<&AttackSpec>,
    cost_model: &blazer_ir::cost::CostModel,
    epsilon: u64,
    attempts: u32,
    seed: u64,
) -> Option<AttackWitness> {
    let f = program.function(func)?;
    let cfg = Cfg::new(f);
    let alphabet = blazer_absint::EdgeAlphabet::new(&cfg);
    let dfas = spec.map(|s| {
        (
            Dfa::from_regex(&s.trail_a, alphabet.len() as u32),
            Dfa::from_regex(&s.trail_b, alphabet.len() as u32),
        )
    });
    let mut gen = Gen(seed);
    let interp = Interp::new(program).with_cost_model(cost_model.clone());
    for attempt in 0..attempts {
        // Shared low inputs; two independent high variants.
        let mut inputs_a = Vec::new();
        let mut inputs_b = Vec::new();
        for p in f.params() {
            let ty = f.var(p.var).ty;
            match p.label {
                SecurityLabel::Low => {
                    let v = gen.value(ty);
                    inputs_a.push(v.clone());
                    inputs_b.push(v);
                }
                SecurityLabel::High => {
                    inputs_a.push(gen.value(ty));
                    inputs_b.push(gen.value(ty));
                }
            }
        }
        // The extern oracle must also be identical across the two runs
        // (it models the low environment); high-labeled extern results are
        // the oracle's to vary, so give each run its own stream only for
        // the secret — here we keep one seed per attempt for both runs and
        // rely on high *parameters* to vary. A second pass with differing
        // oracle seeds covers high extern results.
        for oracle_mode in 0..2 {
            let (seed_a, seed_b) = if oracle_mode == 0 {
                (u64::from(attempt), u64::from(attempt))
            } else {
                (u64::from(attempt) * 2 + 1, u64::from(attempt) * 2 + 2)
            };
            let ta = interp.run(func, &inputs_a, &mut SeededOracle::new(seed_a));
            let tb = interp.run(func, &inputs_b, &mut SeededOracle::new(seed_b));
            let (Ok(ta), Ok(tb)) = (ta, tb) else { continue };
            if ta.cost.abs_diff(tb.cost) <= epsilon {
                continue;
            }
            if let Some((da, db)) = &dfas {
                let wa = alphabet.word_of(&ta.edges);
                let wb = alphabet.word_of(&tb.edges);
                let direct = da.accepts(&wa) && db.accepts(&wb);
                let swapped = da.accepts(&wb) && db.accepts(&wa);
                if !(direct || swapped) {
                    continue;
                }
            }
            return Some(AttackWitness { inputs_a, inputs_b, cost_a: ta.cost, cost_b: tb.cost });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_lang::compile;

    #[test]
    fn finds_witness_for_leaky_loop() {
        let src = "fn f(h: int #high, n: int) { \
            let i: int = 0; \
            while (i < h) { i = i + 1; } \
        }";
        let p = compile(src).unwrap();
        let unit = blazer_ir::cost::CostModel::unit();
        let w = concretize(&p, "f", None, &unit, 2, 200, 42).expect("leak is easy to hit");
        assert!(w.difference() > 2);
        // Low inputs agree.
        assert_eq!(w.inputs_a[1], w.inputs_b[1]);
    }

    #[test]
    fn no_witness_for_balanced_program() {
        // Example 1 from the paper: perfectly balanced.
        let src = "fn foo(high: int #high, low: int) { \
            if (high == 0) { \
                let i: int = 0; \
                while (i < low) { i = i + 1; } \
            } else { \
                let i: int = low; \
                while (i > 0) { i = i - 1; } \
            } \
        }";
        let p = compile(src).unwrap();
        let unit = blazer_ir::cost::CostModel::unit();
        assert!(concretize(&p, "foo", None, &unit, 0, 300, 7).is_none());
    }

    #[test]
    fn witness_costs_are_measured_under_the_configured_model() {
        // Regression for the cost-plumbing bug: `concretize` once built its
        // interpreter with `Interp::new` alone, whose stopwatch is the
        // hardcoded unit model, while the symbolic analysis priced trails
        // under the configured model. Under any non-unit model the witness
        // accounting silently disagreed with the bounds that claimed the
        // attack. Pin that the reported `cost_a`/`cost_b` are exactly what
        // the interpreter measures under the model passed in.
        let src = "fn f(h: int #high, n: int) { \
            let i: int = 0; \
            while (i < h) { i = i + 1; } \
        }";
        let p = compile(src).unwrap();
        let weighted = blazer_ir::cost::CostModel::weighted();
        let w = concretize(&p, "f", None, &weighted, 2, 200, 42).expect("leak is easy to hit");
        let interp = Interp::new(&p).with_cost_model(weighted);
        let ta = interp.run("f", &w.inputs_a, &mut SeededOracle::new(0)).unwrap();
        let tb = interp.run("f", &w.inputs_b, &mut SeededOracle::new(0)).unwrap();
        assert_eq!((ta.cost, tb.cost), (w.cost_a, w.cost_b));
        // And the weighted stopwatch really is a different observer: the
        // same runs priced by a unit interpreter give different readings
        // (branches cost 2 under the weighted table), so the old hardcoded
        // unit interpreter could not have produced the numbers above.
        let unit_interp = Interp::new(&p);
        let ua = unit_interp.run("f", &w.inputs_a, &mut SeededOracle::new(0)).unwrap();
        assert_ne!(ua.cost, w.cost_a);
    }

    #[test]
    fn witness_difference_and_accessors() {
        let w = AttackWitness {
            inputs_a: vec![Value::Int(1)],
            inputs_b: vec![Value::Int(2)],
            cost_a: 10,
            cost_b: 25,
        };
        assert_eq!(w.difference(), 15);
    }

    #[test]
    fn unknown_function_is_none() {
        let p = compile("fn f() { }").unwrap();
        let unit = blazer_ir::cost::CostModel::unit();
        assert!(concretize(&p, "nope", None, &unit, 0, 10, 0).is_none());
    }
}
