//! The tree of trails (Fig. 1).

use blazer_automata::Regex;
use blazer_bounds::{BoundResult, CostExpr};
use blazer_taint::Taint;
use std::fmt;

/// How a node was produced from its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Split on attacker-controlled data (the `taint` arcs of Fig. 1).
    Taint,
    /// Split on secret data (the `sec` arcs of Fig. 1).
    Secret,
}

impl SplitKind {
    /// From the taint of the split constructor.
    pub fn of_taint(t: Taint) -> SplitKind {
        if t.is_low_only() {
            SplitKind::Taint
        } else {
            SplitKind::Secret
        }
    }
}

impl fmt::Display for SplitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitKind::Taint => f.write_str("taint"),
            SplitKind::Secret => f.write_str("sec"),
        }
    }
}

/// The analysis status of one trail-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Bounds not computed yet.
    Pending,
    /// The trail's language contains no complete execution.
    Empty,
    /// The bounds are narrow under the observer: timing-channel free.
    Narrow,
    /// Bounds are wide; the node was (or must be) refined.
    Wide,
    /// Participates in a reported attack specification.
    Attack,
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeStatus::Pending => f.write_str("pending"),
            NodeStatus::Empty => f.write_str("infeasible"),
            NodeStatus::Narrow => f.write_str("safe"),
            NodeStatus::Wide => f.write_str("wide"),
            NodeStatus::Attack => f.write_str("ATTACK"),
        }
    }
}

/// One node of the trail tree.
#[derive(Debug, Clone)]
pub struct TrailNode {
    /// The trail expression.
    pub trail: Regex,
    /// Parent index, `None` for the most general trail.
    pub parent: Option<usize>,
    /// Children indices.
    pub children: Vec<usize>,
    /// The kind of split that produced this node.
    pub split_kind: Option<SplitKind>,
    /// Computed bounds, if any.
    pub bounds: Option<BoundResult>,
    /// Status.
    pub status: NodeStatus,
}

/// The tree of trails produced by the driver, as visualized in Fig. 1.
#[derive(Debug, Clone, Default)]
pub struct TrailTree {
    nodes: Vec<TrailNode>,
}

impl TrailTree {
    /// A tree with just the most general trail.
    pub fn new(trmg: Regex) -> Self {
        TrailTree {
            nodes: vec![TrailNode {
                trail: trmg,
                parent: None,
                children: Vec::new(),
                split_kind: None,
                bounds: None,
                status: NodeStatus::Pending,
            }],
        }
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        0
    }

    /// Node access.
    pub fn node(&self, i: usize) -> &TrailNode {
        &self.nodes[i]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, i: usize) -> &mut TrailNode {
        &mut self.nodes[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never: the root always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a child trail under `parent`.
    pub fn add_child(&mut self, parent: usize, trail: Regex, kind: SplitKind) -> usize {
        let id = self.nodes.len();
        self.nodes.push(TrailNode {
            trail,
            parent: Some(parent),
            children: Vec::new(),
            split_kind: Some(kind),
            bounds: None,
            status: NodeStatus::Pending,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Leaf node indices (the current partition).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].children.is_empty()).collect()
    }

    /// Renders the tree with a bound formatter (which receives lower and
    /// upper bounds and produces the `[lo, hi]` balloon text of Fig. 1).
    pub fn render(&self, fmt_bounds: &dyn Fn(&CostExpr, Option<&CostExpr>) -> String) -> String {
        let mut out = String::new();
        self.render_node(0, 0, fmt_bounds, &mut out);
        out
    }

    fn render_node(
        &self,
        i: usize,
        depth: usize,
        fmt_bounds: &dyn Fn(&CostExpr, Option<&CostExpr>) -> String,
        out: &mut String,
    ) {
        let n = &self.nodes[i];
        let indent = "  ".repeat(depth);
        let arc = match n.split_kind {
            Some(k) => format!("--{k}--> "),
            None => String::new(),
        };
        let name = if i == 0 { "trmg (most general trail)".to_string() } else { format!("tr{i}") };
        let balloon = match &n.bounds {
            Some(b) => match (&b.lower, &b.upper) {
                (Some(lo), hi) => format!(" {}", fmt_bounds(lo, hi.as_ref())),
                (None, _) => " [no complete executions]".to_string(),
            },
            None => String::new(),
        };
        out.push_str(&format!("{indent}{arc}{name} [{}]{balloon}\n", n.status));
        for &c in &n.children {
            self.render_node(c, depth + 1, fmt_bounds, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = TrailTree::new(Regex::symbol(0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.leaves(), vec![0]);
        let a = t.add_child(0, Regex::symbol(1), SplitKind::Taint);
        let b = t.add_child(0, Regex::symbol(2), SplitKind::Secret);
        assert_eq!(t.leaves(), vec![a, b]);
        assert_eq!(t.node(a).parent, Some(0));
        assert_eq!(t.node(0).children, vec![a, b]);
        t.node_mut(a).status = NodeStatus::Narrow;
        assert_eq!(t.node(a).status, NodeStatus::Narrow);
    }

    #[test]
    fn split_kind_mapping() {
        assert_eq!(SplitKind::of_taint(Taint::LOW), SplitKind::Taint);
        assert_eq!(SplitKind::of_taint(Taint::HIGH), SplitKind::Secret);
        assert_eq!(SplitKind::of_taint(Taint::BOTH), SplitKind::Secret);
    }

    #[test]
    fn render_shows_structure() {
        let mut t = TrailTree::new(Regex::symbol(0));
        let a = t.add_child(0, Regex::symbol(1), SplitKind::Taint);
        t.add_child(0, Regex::symbol(2), SplitKind::Secret);
        t.node_mut(a).status = NodeStatus::Narrow;
        let s = t.render(&|_, _| String::new());
        assert!(s.contains("trmg"));
        assert!(s.contains("--taint--> tr1 [safe]"));
        assert!(s.contains("--sec--> tr2 [pending]"));
    }
}
