//! `RefinePartition` (Sec. 4.3): splitting trails at annotated constructors.

use crate::trail::{annotate, replace, subterm, BranchSyms, Path};
use blazer_automata::Regex;
use blazer_taint::Taint;

/// The refinement mode of Fig. 2's two loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineMode {
    /// Split only at constructors that depend on low data *only* —
    /// "partitioning is only permitted on low data" when proving safety.
    Safe,
    /// Split at secret-dependent constructors to synthesize an attack.
    Vulnerable,
}

/// The result of splitting one trail.
#[derive(Debug, Clone)]
pub struct Split {
    /// The sub-trails produced (two for both union and star splits).
    pub parts: Vec<Regex>,
    /// The taint of the constructor that was split.
    pub taint: Taint,
    /// Where in the parent the split happened.
    pub path: Path,
    /// Whether a star was unrolled (drives the driver's unrolling cap).
    pub is_star: bool,
}

/// Finds the preferred split point of `trail` under `mode` and performs it.
/// Returns `None` when no constructor with a suitable annotation exists.
///
/// Union constructors split into their two sides; star constructors split
/// into the zero-iteration case and the at-least-once unrolling
/// (`tr* = ε | tr·tr*`).
///
/// **Coverage.** In [`RefineMode::Safe`] the parts must cover the parent's
/// language (a ψ-quotient partition requirement), so only constructors *not
/// nested under a star* are eligible: splitting a union inside a loop body
/// would drop all mixed-iteration traces. Unrolling the star first exposes
/// the first iteration's copy of such a union at a coverable position —
/// this is the paper's "more complicated forms of loop unrolling"
/// (Sec. 7). Star splits themselves always cover. In
/// [`RefineMode::Vulnerable`] coverage is not required (the paper's tr3/tr4
/// are not a partition either), so any annotated constructor is eligible.
///
/// `allow_star` lets the driver cap repeated unrolling of the same loop.
pub fn refine_partition(
    trail: &Regex,
    branches: &[BranchSyms],
    mode: RefineMode,
    allow_star: bool,
) -> Option<Split> {
    let ann = annotate(trail, branches);
    let eligible = |t: Taint| match mode {
        RefineMode::Safe => t.is_low_only(),
        RefineMode::Vulnerable => t.is_high(),
    };
    // Candidate preference: unions before stars (splitting a union
    // separates the two behaviors directly, while unrolling a star rarely
    // changes bound shapes), then outermost-leftmost.
    let (path, taint) = ann
        .iter()
        .filter(|(_, &t)| eligible(t))
        .filter(|(p, _)| {
            if mode == RefineMode::Safe && path_under_star(trail, p) {
                return false;
            }
            allow_star || !matches!(subterm(trail, p), Regex::Star(_))
        })
        .min_by_key(|(p, _)| {
            let is_star = matches!(subterm(trail, p), Regex::Star(_));
            (is_star, p.len(), (*p).clone())
        })
        .map(|(p, &t)| (p.clone(), t))?;
    let (parts, is_star) = match subterm(trail, &path) {
        Regex::Union(a, b) => (
            vec![replace(trail, &path, (**a).clone()), replace(trail, &path, (**b).clone())],
            false,
        ),
        Regex::Star(a) => {
            let once = (**a).clone().then((**a).clone().star());
            (vec![replace(trail, &path, Regex::Epsilon), replace(trail, &path, once)], true)
        }
        other => unreachable!("annotations only mark unions and stars, got {other}"),
    };
    Some(Split { parts, taint, path, is_star })
}

/// Block-based refinement, the second pluggable `RefinePartition` strategy
/// (Sec. 4.3 explicitly allows "a collection of pluggable strategies").
///
/// Given a branch block with edges `e₁`/`e₂`, split the trail with automata
/// operations instead of at a constructor:
///
/// * **Safe mode** (requires a low-only branch): parts are "never uses e₂"
///   and "never uses e₁". The parts cover the parent iff no trace uses
///   *both* edges, which is checked and required (loop guards are therefore
///   excluded automatically). ψ-quotientness holds because two traces with
///   equal lows that reach the branch take the same (low-determined) edge,
///   and traces that never reach it belong to both parts.
/// * **Vulnerable mode**: parts are "uses e₁ somewhere" and "never uses
///   e₁" — exactly the paper's tr3 ("can take early exits") / tr4
///   ("cannot") shape from Fig. 1. No coverage requirement.
///
/// Returns `None` when the split does not apply (uses-both non-empty in
/// safe mode, or a part is empty / oversized), and also when the installed
/// `blazer_ir::budget` exhausts mid-split — refinement then simply makes no
/// progress on this trail, which the driver reports as a degradation.
///
/// With `classic: false` (the default engine) all feasibility questions —
/// coverage, part non-emptiness, progress — are decided *lazily* through
/// [`blazer_automata::antichain`] without materializing any product DFA;
/// only the parts of a split that survives every check are materialized
/// (they must be converted back to trail regexes anyway). `classic: true`
/// keeps the original eager product pipeline (`BLAZER_AUTOMATA=classic`).
pub fn block_split(
    trail: &Regex,
    branch: &BranchSyms,
    alphabet_size: u32,
    mode: RefineMode,
    max_part_size: usize,
    classic: bool,
) -> Option<Split> {
    use blazer_automata::{antichain, kleene, ops, Dfa, Nfa};
    let eligible = match mode {
        RefineMode::Safe => branch.taint.is_low_only(),
        RefineMode::Vulnerable => branch.taint.is_high(),
    };
    if !eligible {
        return None;
    }
    let any =
        (0..alphabet_size).map(Regex::symbol).reduce(Regex::or).unwrap_or(Regex::Empty).star();
    let contains =
        |sym: blazer_automata::Sym| any.clone().then(Regex::symbol(sym)).then(any.clone());
    let with_e1 = contains(branch.then_sym);
    let with_e2 = contains(branch.else_sym);

    let parts_dfa = if classic {
        antichain::note_classic_fallback();
        let tr = Dfa::try_from_regex(trail, alphabet_size).ok()?;
        let d1 = Dfa::try_from_regex(&with_e1, alphabet_size).ok()?;
        let d2 = Dfa::try_from_regex(&with_e2, alphabet_size).ok()?;
        let parts_dfa = match mode {
            RefineMode::Safe => {
                // Coverage requires that no trace uses both edges.
                let both =
                    ops::try_intersection(&tr, &ops::try_intersection(&d1, &d2).ok()?).ok()?;
                if !both.is_empty() {
                    return None;
                }
                vec![ops::try_difference(&tr, &d2).ok()?, ops::try_difference(&tr, &d1).ok()?]
            }
            RefineMode::Vulnerable => {
                vec![ops::try_intersection(&tr, &d1).ok()?, ops::try_difference(&tr, &d1).ok()?]
            }
        };
        if parts_dfa.iter().any(Dfa::is_empty) {
            return None; // a degenerate split refines nothing
        }
        // No progress when a part equals the parent.
        for d in &parts_dfa {
            if ops::try_difference(d, &tr).ok()?.is_empty()
                && ops::try_difference(&tr, d).ok()?.is_empty()
            {
                return None;
            }
        }
        parts_dfa
    } else {
        // Lazy feasibility: every yes/no question collapses to an antichain
        // emptiness check over NFA views, so infeasible splits are rejected
        // without ever determinizing or building a product. The algebra:
        //   tr \ X = ∅   ⟺  tr ⊆ X        (part emptiness)
        //   tr \ X = tr  ⟺  tr ∩ X = ∅    (no progress)
        //   tr ∩ X = ∅   ⟺  disjoint      (part emptiness, ∩-part)
        //   tr ∩ X = tr  ⟺  tr ⊆ X        (no progress, ∩-part)
        let tr_nfa = Nfa::from_regex(trail, alphabet_size);
        let e1_nfa = Nfa::from_regex(&with_e1, alphabet_size);
        let e2_nfa = Nfa::from_regex(&with_e2, alphabet_size);
        match mode {
            RefineMode::Safe => {
                // Coverage requires that no trace uses both edges.
                if !antichain::nfa_intersect3_empty(&tr_nfa, &e1_nfa, &e2_nfa).ok()? {
                    return None;
                }
                for x in [&e2_nfa, &e1_nfa] {
                    if antichain::nfa_included(&tr_nfa, x).ok()? {
                        return None; // part tr \ x is empty
                    }
                    if antichain::nfa_disjoint(&tr_nfa, x).ok()? {
                        return None; // part tr \ x equals the parent
                    }
                }
            }
            RefineMode::Vulnerable => {
                if antichain::nfa_disjoint(&tr_nfa, &e1_nfa).ok()? {
                    return None; // "uses e₁" part is empty ("never" = parent)
                }
                if antichain::nfa_included(&tr_nfa, &e1_nfa).ok()? {
                    return None; // "never uses e₁" part is empty ("uses" = parent)
                }
            }
        }
        // The split is feasible: materialize only the surviving parts.
        let tr = Dfa::try_from_regex(trail, alphabet_size).ok()?;
        let d1 = Dfa::try_from_regex(&with_e1, alphabet_size).ok()?;
        match mode {
            RefineMode::Safe => {
                let d2 = Dfa::try_from_regex(&with_e2, alphabet_size).ok()?;
                vec![ops::try_difference(&tr, &d2).ok()?, ops::try_difference(&tr, &d1).ok()?]
            }
            RefineMode::Vulnerable => {
                vec![ops::try_intersection(&tr, &d1).ok()?, ops::try_difference(&tr, &d1).ok()?]
            }
        }
    };
    let parts: Vec<Regex> = parts_dfa
        .iter()
        .map(|d| kleene::try_dfa_to_regex(&d.minimize()))
        .collect::<Result<_, _>>()
        .ok()?;
    if parts.iter().any(|p| p.size() > max_part_size) {
        return None;
    }
    Some(Split { parts, taint: branch.taint, path: Vec::new(), is_star: false })
}

/// Whether the node at `path` lies (strictly) below some star constructor.
fn path_under_star(trail: &Regex, path: &[usize]) -> bool {
    let mut cur = trail;
    for &step in path {
        if matches!(cur, Regex::Star(_)) {
            return true;
        }
        cur = match (cur, step) {
            (Regex::Concat(a, _), 0) | (Regex::Union(a, _), 0) | (Regex::Star(a), 0) => a,
            (Regex::Concat(_, b), 1) | (Regex::Union(_, b), 1) => b,
            _ => unreachable!("path addresses a subterm"),
        };
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazer_automata::{ops, Dfa};

    fn sym(s: u32) -> Regex {
        Regex::symbol(s)
    }

    /// The union of the parts must cover the parent's language (the
    /// ψ-quotient partition requirement of Sec. 4.3).
    fn assert_covers(parent: &Regex, parts: &[Regex], alphabet: u32) {
        let parent_dfa = Dfa::from_regex(parent, alphabet);
        let mut union = Dfa::from_regex(&Regex::Empty, alphabet);
        for p in parts {
            union = ops::union(&union, &Dfa::from_regex(p, alphabet));
        }
        assert!(ops::equivalent(&parent_dfa, &union), "parts must cover the parent");
    }

    #[test]
    fn safe_mode_splits_low_union() {
        let r = sym(0).then(sym(2)).or(sym(1).then(sym(3)));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        let split = refine_partition(&r, &[b], RefineMode::Safe, true).expect("low split");
        assert_eq!(split.parts.len(), 2);
        assert_eq!(split.taint, Taint::LOW);
        assert_covers(&r, &split.parts, 4);
    }

    #[test]
    fn safe_mode_refuses_high_and_mixed() {
        let r = sym(0).or(sym(1));
        for taint in [Taint::HIGH, Taint::BOTH] {
            let b = BranchSyms { then_sym: 0, else_sym: 1, taint };
            assert!(refine_partition(&r, &[b], RefineMode::Safe, true).is_none());
        }
    }

    #[test]
    fn vulnerable_mode_splits_high() {
        let r = sym(0).or(sym(1));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::HIGH };
        let split = refine_partition(&r, &[b], RefineMode::Vulnerable, true).expect("high split");
        assert_eq!(split.parts, vec![sym(0), sym(1)]);
        assert_covers(&r, &split.parts, 2);
    }

    #[test]
    fn star_split_unrolls() {
        // 0·(1·2)*·3, loop guard edges {1, 3}.
        let r = sym(0).then(sym(1).then(sym(2)).star()).then(sym(3));
        let b = BranchSyms { then_sym: 1, else_sym: 3, taint: Taint::LOW };
        let split = refine_partition(&r, &[b], RefineMode::Safe, true).expect("star split");
        assert_eq!(split.parts.len(), 2);
        assert_covers(&r, &split.parts, 4);
        // Zero-iteration part accepts 0·3; at-least-once accepts 0·1·2·3.
        let d0 = Dfa::from_regex(&split.parts[0], 4);
        let d1 = Dfa::from_regex(&split.parts[1], 4);
        assert!(d0.accepts(&[0, 3]));
        assert!(!d0.accepts(&[0, 1, 2, 3]));
        assert!(d1.accepts(&[0, 1, 2, 3]));
        assert!(!d1.accepts(&[0, 3]));
    }

    #[test]
    fn outermost_split_preferred() {
        // Outer union splits block A (low), inner splits block B (low):
        // the outer one is chosen.
        let inner = sym(2).or(sym(3));
        let r = sym(0).then(inner).or(sym(1).then(sym(4)));
        let a = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        let b = BranchSyms { then_sym: 2, else_sym: 3, taint: Taint::LOW };
        let split = refine_partition(&r, &[a, b], RefineMode::Safe, true).unwrap();
        assert_eq!(split.path, Vec::<usize>::new());
        assert_covers(&r, &split.parts, 5);
    }

    #[test]
    fn no_annotations_means_no_split() {
        let r = sym(0).then(sym(1));
        assert!(refine_partition(&r, &[], RefineMode::Safe, true).is_none());
        assert!(refine_partition(&r, &[], RefineMode::Vulnerable, true).is_none());
    }

    #[test]
    fn block_split_safe_mode_partitions_once_executed_branch() {
        // 0·(1·2 | 3·4): branch edges {1, 3} are used at most once per
        // trace, so the safe block split applies and covers. Both the lazy
        // antichain engine and the classic product engine must agree.
        let r = sym(0).then(sym(1).then(sym(2)).or(sym(3).then(sym(4))));
        let b = BranchSyms { then_sym: 1, else_sym: 3, taint: Taint::LOW };
        for classic in [false, true] {
            let split = block_split(&r, &b, 5, RefineMode::Safe, 10_000, classic).expect("applies");
            assert_eq!(split.parts.len(), 2);
            assert_covers(&r, &split.parts, 5);
            let d0 = Dfa::from_regex(&split.parts[0], 5);
            let d1 = Dfa::from_regex(&split.parts[1], 5);
            assert!(d0.accepts(&[0, 1, 2]) && !d0.accepts(&[0, 3, 4]));
            assert!(d1.accepts(&[0, 3, 4]) && !d1.accepts(&[0, 1, 2]));
        }
    }

    #[test]
    fn block_split_safe_mode_rejects_loop_guards() {
        // (1·2)*·3: traces can use both edge 1 (stay) and edge 3 (exit),
        // so a covering block split is impossible.
        let r = sym(1).then(sym(2)).star().then(sym(3));
        let b = BranchSyms { then_sym: 1, else_sym: 3, taint: Taint::LOW };
        for classic in [false, true] {
            assert!(block_split(&r, &b, 4, RefineMode::Safe, 10_000, classic).is_none());
        }
    }

    #[test]
    fn block_split_vulnerable_mode_is_uses_vs_never() {
        // The Fig. 1 tr3/tr4 shape: "can take the early exit" vs "cannot".
        let r = sym(0).or(sym(1)).star().then(sym(2));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::HIGH };
        for classic in [false, true] {
            let split =
                block_split(&r, &b, 3, RefineMode::Vulnerable, 10_000, classic).expect("applies");
            let uses = Dfa::from_regex(&split.parts[0], 3);
            let never = Dfa::from_regex(&split.parts[1], 3);
            assert!(uses.accepts(&[0, 2]) && uses.accepts(&[1, 0, 2]));
            assert!(!uses.accepts(&[1, 1, 2]));
            assert!(never.accepts(&[2]) && never.accepts(&[1, 1, 2]));
            assert!(!never.accepts(&[0, 2]));
        }
    }

    #[test]
    fn block_split_requires_matching_taint() {
        let r = sym(0).or(sym(1));
        let high = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::HIGH };
        let low = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        let both = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::BOTH };
        for classic in [false, true] {
            assert!(block_split(&r, &high, 2, RefineMode::Safe, 10_000, classic).is_none());
            assert!(block_split(&r, &both, 2, RefineMode::Safe, 10_000, classic).is_none());
            assert!(block_split(&r, &low, 2, RefineMode::Vulnerable, 10_000, classic).is_none());
            assert!(block_split(&r, &both, 2, RefineMode::Vulnerable, 10_000, classic).is_some());
        }
    }

    #[test]
    fn block_split_refuses_no_progress() {
        // The trail never uses either edge of the branch: both candidate
        // parts equal the parent (or are empty) — no split.
        let r = sym(2).then(sym(2));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        for classic in [false, true] {
            assert!(block_split(&r, &b, 3, RefineMode::Safe, 10_000, classic).is_none());
        }
    }

    #[test]
    fn block_split_engines_produce_equivalent_parts() {
        // The lazy and classic engines must produce language-identical
        // parts in the same order (feasibility algebra + shared
        // materialization path).
        let cases = [
            (sym(0).then(sym(1).then(sym(2)).or(sym(3).then(sym(4)))), 1u32, 3u32, 5u32),
            (sym(0).or(sym(1)).star().then(sym(2)), 0, 1, 3),
            (sym(0).then(sym(1)).or(sym(2)), 0, 2, 3),
        ];
        for (r, e1, e2, alpha) in cases {
            for (mode, taint) in
                [(RefineMode::Safe, Taint::LOW), (RefineMode::Vulnerable, Taint::HIGH)]
            {
                let b = BranchSyms { then_sym: e1, else_sym: e2, taint };
                let lazy = block_split(&r, &b, alpha, mode, 10_000, false);
                let classic = block_split(&r, &b, alpha, mode, 10_000, true);
                match (&lazy, &classic) {
                    (None, None) => {}
                    (Some(l), Some(c)) => {
                        assert_eq!(l.parts.len(), c.parts.len());
                        for (lp, cp) in l.parts.iter().zip(&c.parts) {
                            let ld = Dfa::from_regex(lp, alpha);
                            let cd = Dfa::from_regex(cp, alpha);
                            assert!(ops::equivalent(&ld, &cd), "parts diverge for {r}");
                        }
                    }
                    _ => panic!("engines disagree on applicability for {r} in {mode:?}"),
                }
            }
        }
    }

    #[test]
    fn vulnerable_mode_accepts_mixed_taint() {
        let r = sym(0).or(sym(1));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::BOTH };
        let split = refine_partition(&r, &[b], RefineMode::Vulnerable, true).expect("mixed split");
        assert_eq!(split.taint, Taint::BOTH);
    }
}
