//! Trail annotation (Sec. 4.2): marking union and star constructors as
//! low- and/or high-dependent.

use blazer_automata::{Regex, Sym};
use blazer_taint::Taint;
use std::collections::{BTreeMap, BTreeSet};

/// A path from the root of a regex to a subterm: child indices (0 = left /
/// inner, 1 = right).
pub type Path = Vec<usize>;

/// A tainted branching block's two outgoing edge symbols plus the taint of
/// its condition — the input to [`annotate`].
#[derive(Debug, Clone, Copy)]
pub struct BranchSyms {
    /// Symbol of the then-edge.
    pub then_sym: Sym,
    /// Symbol of the else-edge.
    pub else_sym: Sym,
    /// Taint of the branch condition.
    pub taint: Taint,
}

/// Computes the annotation map of a trail: for each union/star constructor
/// (identified by its [`Path`]), the join of the taints of the branch
/// blocks it is *outermost* for.
///
/// Per Sec. 4.2: a `|` is dependent w.r.t. branch block `b` if it is the
/// outermost union such that one of `b`'s edges appears on one side but not
/// the other; a `*` if one of `b`'s edges appears inside and the other does
/// not.
pub fn annotate(trail: &Regex, branches: &[BranchSyms]) -> BTreeMap<Path, Taint> {
    let mut out: BTreeMap<Path, Taint> = BTreeMap::new();
    for b in branches {
        if b.taint.is_none() {
            continue;
        }
        let mut path = Vec::new();
        mark(trail, b, &mut path, &mut out);
    }
    out
}

/// Recursive walk implementing the outermost-marking rule for one branch
/// block. Returns after marking (no descent below a mark for this block).
fn mark(r: &Regex, b: &BranchSyms, path: &mut Path, out: &mut BTreeMap<Path, Taint>) {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => {}
        Regex::Concat(x, y) => {
            path.push(0);
            mark(x, b, path, out);
            path.pop();
            path.push(1);
            mark(y, b, path, out);
            path.pop();
        }
        Regex::Union(x, y) => {
            let splits = side_splits(x, b) || side_splits(y, b);
            if splits {
                let t = out.entry(path.clone()).or_default();
                *t = *t | b.taint;
                return; // outermost for this block
            }
            path.push(0);
            mark(x, b, path, out);
            path.pop();
            path.push(1);
            mark(y, b, path, out);
            path.pop();
        }
        Regex::Star(x) => {
            if side_splits(x, b) {
                let t = out.entry(path.clone()).or_default();
                *t = *t | b.taint;
                return;
            }
            path.push(0);
            mark(x, b, path, out);
            path.pop();
        }
    }
}

/// Whether a subterm contains exactly one of the block's two edges.
fn side_splits(r: &Regex, b: &BranchSyms) -> bool {
    let syms: BTreeSet<Sym> = r.symbols().into_iter().collect();
    syms.contains(&b.then_sym) != syms.contains(&b.else_sym)
}

/// The subterm of `r` at `path`.
///
/// # Panics
///
/// Panics if the path does not address a subterm.
pub fn subterm<'r>(r: &'r Regex, path: &[usize]) -> &'r Regex {
    match (r, path) {
        (r, []) => r,
        (Regex::Concat(a, _), [0, rest @ ..]) | (Regex::Union(a, _), [0, rest @ ..]) => {
            subterm(a, rest)
        }
        (Regex::Concat(_, b), [1, rest @ ..]) | (Regex::Union(_, b), [1, rest @ ..]) => {
            subterm(b, rest)
        }
        (Regex::Star(a), [0, rest @ ..]) => subterm(a, rest),
        _ => panic!("path {path:?} does not address a subterm"),
    }
}

/// Replaces the subterm of `r` at `path` with `replacement`.
///
/// # Panics
///
/// Panics if the path does not address a subterm.
pub fn replace(r: &Regex, path: &[usize], replacement: Regex) -> Regex {
    match (r, path) {
        (_, []) => replacement,
        (Regex::Concat(a, b), [0, rest @ ..]) => replace(a, rest, replacement).then((**b).clone()),
        (Regex::Concat(a, b), [1, rest @ ..]) => (**a).clone().then(replace(b, rest, replacement)),
        (Regex::Union(a, b), [0, rest @ ..]) => replace(a, rest, replacement).or((**b).clone()),
        (Regex::Union(a, b), [1, rest @ ..]) => (**a).clone().or(replace(b, rest, replacement)),
        (Regex::Star(a), [0, rest @ ..]) => replace(a, rest, replacement).star(),
        _ => panic!("path {path:?} does not address a subterm"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: Sym) -> Regex {
        Regex::symbol(s)
    }

    #[test]
    fn union_annotated_when_it_splits_the_branch() {
        // (0·2) | (1·3) with branch edges {0, 1}: the union splits them.
        let r = sym(0).then(sym(2)).or(sym(1).then(sym(3)));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        let ann = annotate(&r, &[b]);
        assert_eq!(ann.get(&vec![]).copied(), Some(Taint::LOW));
    }

    #[test]
    fn union_not_annotated_when_both_edges_on_both_sides() {
        // ((0|1)·2) | ((0|1)·3): the outer union contains both edges on
        // both sides; the inner unions split them.
        let both = sym(0).or(sym(1));
        let r = both.clone().then(sym(2)).or(both.then(sym(3)));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::HIGH };
        let ann = annotate(&r, &[b]);
        assert!(!ann.contains_key(&vec![]));
        // Inner unions at paths [0,0] and [1,0] are marked.
        assert_eq!(ann.get(&vec![0, 0]).copied(), Some(Taint::HIGH));
        assert_eq!(ann.get(&vec![1, 0]).copied(), Some(Taint::HIGH));
    }

    #[test]
    fn star_annotated_when_loop_edge_inside() {
        // 0 · (1·2)* · 3 with branch edges {1, 3} (stay vs exit): the star
        // contains 1 but not 3.
        let r = sym(0).then(sym(1).then(sym(2)).star()).then(sym(3));
        let b = BranchSyms { then_sym: 1, else_sym: 3, taint: Taint::LOW };
        let ann = annotate(&r, &[b]);
        // The star is the left child of the outer concat's right side:
        // ((0 · (1·2)*) · 3) — star at path [0, 1].
        let star_path = vec![0, 1];
        assert!(matches!(subterm(&r, &star_path), Regex::Star(_)), "tree shape: {r}");
        assert_eq!(ann.get(&star_path).copied(), Some(Taint::LOW));
    }

    #[test]
    fn outermost_rule_stops_descent() {
        // (0 | (1 | 0·1)): outer union splits {0,1}? left side has 0 not 1
        // → annotated; nothing below gets marked for the same block.
        let r = sym(0).or(sym(1).or(sym(0).then(sym(1))));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        let ann = annotate(&r, &[b]);
        assert_eq!(ann.len(), 1);
        assert!(ann.contains_key(&vec![]));
    }

    #[test]
    fn taints_join_across_blocks() {
        // One union splits two different branch blocks with different
        // taints: annotation joins to l,h.
        let r = sym(0).then(sym(2)).or(sym(1).then(sym(3)));
        let b1 = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::LOW };
        let b2 = BranchSyms { then_sym: 2, else_sym: 3, taint: Taint::HIGH };
        let ann = annotate(&r, &[b1, b2]);
        assert_eq!(ann.get(&vec![]).copied(), Some(Taint::BOTH));
    }

    #[test]
    fn untainted_branches_are_ignored() {
        let r = sym(0).or(sym(1));
        let b = BranchSyms { then_sym: 0, else_sym: 1, taint: Taint::NONE };
        assert!(annotate(&r, &[b]).is_empty());
    }

    #[test]
    fn subterm_and_replace_roundtrip() {
        let r = sym(0).then(sym(1).or(sym(2)));
        let path = vec![1];
        assert_eq!(*subterm(&r, &path), sym(1).or(sym(2)));
        let replaced = replace(&r, &path, sym(9));
        assert_eq!(replaced, sym(0).then(sym(9)));
        // Identity replace.
        let same = replace(&r, &path, sym(1).or(sym(2)));
        assert_eq!(same, r);
    }
}
